#!/usr/bin/env bash
# One-shot offline verification gate: formatting, lints, build, tests,
# and the machine-checked paper-claims audit. Every step runs with
# --offline; the workspace has zero external dependencies, so nothing
# here ever touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# Plain `cargo build` would build only the umbrella package; the
# workspace flag pulls in ic-cli (the `ic-prio` binary) and friends.
cargo build --offline --workspace --release

echo "==> cargo test"
cargo test --offline --workspace --quiet

echo "==> ic-prio audit --claims"
./target/release/ic-prio audit --claims

echo "==> ic-prio sim | audit --schedule (trace round trip)"
# End-to-end through the trace pipeline: simulate a freshly written dag,
# record the execution trace, and replay-audit it. The audit must exit 0
# (warnings such as IC0404 are advisory; any IC04xx error fails here).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cat > "$tmpdir/tasks.dag" <<'DAG'
build_a -> test_a
build_b -> test_b
test_a -> package
test_b -> package
DAG
./target/release/ic-prio sim "$tmpdir/tasks.dag" --clients 3 --seed 11 \
    --trace "$tmpdir/run.jsonl" > /dev/null
./target/release/ic-prio audit --schedule "$tmpdir/run.jsonl" --json \
    | grep -q '"ok": true'

echo "verify: all green"
