#!/usr/bin/env bash
# One-shot offline verification gate: formatting, lints, build, tests,
# and the machine-checked paper-claims audit. Every step runs with
# --offline; the workspace has zero external dependencies, so nothing
# here ever touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# Plain `cargo build` would build only the umbrella package; the
# workspace flag pulls in ic-cli (the `ic-prio` binary) and friends.
cargo build --offline --workspace --release

echo "==> cargo test"
cargo test --offline --workspace --quiet

echo "==> ic-prio audit --claims"
./target/release/ic-prio audit --claims

echo "verify: all green"
