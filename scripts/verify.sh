#!/usr/bin/env bash
# One-shot offline verification gate: formatting, lints, build, tests,
# and the machine-checked paper-claims audit. Every step runs with
# --offline; the workspace has zero external dependencies, so nothing
# here ever touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# Plain `cargo build` would build only the umbrella package; the
# workspace flag pulls in ic-cli (the `ic-prio` binary) and friends.
cargo build --offline --workspace --release

echo "==> cargo test"
cargo test --offline --workspace --quiet

echo "==> ic-lint (no unwrap/expect/panic/narrowing in protocol code)"
./target/release/ic-lint

echo "==> ic-prio check (model-check the lease protocol)"
# Exhaustive interleaving exploration of the pure LeaseMachine: two
# workers over a 6-node mesh, every IC05xx invariant checked at every
# reachable state, bounded depth so CI stays fast. Run once plain and
# once with the speculative-steal path enabled.
./target/release/ic-prio check --family mesh:3 --workers 2 --depth 48 --json \
    | grep -q '"clean": true'
./target/release/ic-prio check --family mesh:3 --workers 2 --depth 48 --steal --json \
    | grep -q '"clean": true'

echo "==> bench smoke (eligibility + check groups, machine-readable report)"
# A tiny-budget run of the eligibility and model-checker benches proves
# the bench binaries, the merged JSON report (IC_BENCH_APPEND), and the
# validator stay wired together. bench-check exits nonzero on malformed
# JSON or a missing bench group; the numbers themselves are not gated
# (5 ms budgets are noise).
mkdir -p target/verify
# Absolute path: cargo runs bench binaries from the package directory.
IC_BENCH_MS=5 IC_BENCH_JSON="$PWD/target/verify/BENCH.json" \
    cargo bench --offline -p ic-bench --bench eligibility > /dev/null
IC_BENCH_MS=5 IC_BENCH_JSON="$PWD/target/verify/BENCH.json" IC_BENCH_APPEND=1 \
    cargo bench --offline -p ic-bench --bench check > /dev/null
# Reactor scale smoke: one 1000-worker loopback fleet (healthy + flaky
# + severing mix) through the event-driven server, recording
# allocations/sec, p99 assign latency, and drain time. `timeout`
# bounds a reactor hang; the numbers are informational, but the run
# itself asserts full completion and fault recovery.
IC_NET_FLEETS=1000 IC_BENCH_JSON="$PWD/target/verify/BENCH.json" IC_BENCH_APPEND=1 \
    timeout 120 cargo bench --offline -p ic-bench --bench net > /dev/null
./target/release/bench-check target/verify/BENCH.json \
    envelope envelope-naive exec-state check net

echo "==> ic-prio audit --claims"
./target/release/ic-prio audit --claims

echo "==> ic-prio sim | audit --schedule (trace round trip)"
# End-to-end through the trace pipeline: simulate a freshly written dag,
# record the execution trace, and replay-audit it. The audit must exit 0
# (warnings such as IC0404 are advisory; any IC04xx error fails here).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cat > "$tmpdir/tasks.dag" <<'DAG'
build_a -> test_a
build_b -> test_b
test_a -> package
test_b -> package
DAG
./target/release/ic-prio sim "$tmpdir/tasks.dag" --clients 3 --seed 11 \
    --trace "$tmpdir/run.jsonl" > /dev/null
./target/release/ic-prio audit --schedule "$tmpdir/run.jsonl" --json \
    | grep -q '"ok": true'

echo "==> ic-prio serve | work | audit --schedule (live localhost round trip)"
# The real thing: a TCP server on an ephemeral localhost port, three
# workers (one of them dying mid-run to force a lease reallocation),
# and a replay-audit of the streamed trace. `timeout` bounds every
# long-running step so a protocol hang fails fast instead of wedging CI.
timeout 60 ./target/release/ic-prio serve --family mesh:8 --policy optimal \
    --listen 127.0.0.1:0 --expect 3 --lease-ms 300 \
    --trace "$tmpdir/serve.jsonl" --port-file "$tmpdir/port" --json \
    > "$tmpdir/serve.json" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmpdir/port" ] && break
    sleep 0.1
done
[ -s "$tmpdir/port" ] || { echo "server never wrote its port file"; exit 1; }
addr="$(tr -d '[:space:]' < "$tmpdir/port")"
timeout 60 ./target/release/ic-prio work --connect "$addr" --id drone-1 \
    --mean-ms 2 > /dev/null &
timeout 60 ./target/release/ic-prio work --connect "$addr" --id drone-2 \
    --mean-ms 2 --speed 2 > /dev/null &
timeout 60 ./target/release/ic-prio work --connect "$addr" --id deserter \
    --mean-ms 2 --die-after 2 > /dev/null
wait "$serve_pid"
grep -q '"completions": 36' "$tmpdir/serve.json"
./target/release/ic-prio audit --schedule "$tmpdir/serve.jsonl" --json \
    | grep -q '"ok": true'

echo "==> ic-prio serve | work --sever-after | audit --schedule (reconnect round trip)"
# Resumable leases over real processes: the lone worker severs its TCP
# socket mid-lease (the process stays up) and reconnects with its
# resume token. The server must count one resume and zero
# reallocations, and the trace — resume event included — must replay
# clean. Generous lease so only a real resume can explain the clean run.
timeout 60 ./target/release/ic-prio serve --family outtree:2:3 --policy optimal \
    --listen 127.0.0.1:0 --expect 1 --lease-ms 5000 \
    --trace "$tmpdir/resume.jsonl" --port-file "$tmpdir/rport" --json \
    > "$tmpdir/resume.json" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmpdir/rport" ] && break
    sleep 0.1
done
[ -s "$tmpdir/rport" ] || { echo "server never wrote its port file"; exit 1; }
addr="$(tr -d '[:space:]' < "$tmpdir/rport")"
timeout 60 ./target/release/ic-prio work --connect "$addr" --id comeback \
    --mean-ms 2 --sever-after 2 --json > "$tmpdir/work.json"
wait "$serve_pid"
grep -q '"completions": 15' "$tmpdir/resume.json"
grep -q '"resumes": 1' "$tmpdir/resume.json"
grep -q '"failures": 0' "$tmpdir/resume.json"
grep -q '"resumes": 1' "$tmpdir/work.json"
./target/release/ic-prio audit --schedule "$tmpdir/resume.jsonl" --json \
    | grep -q '"ok": true'
# Keep the audited traces where CI can pick them up as artifacts.
cp "$tmpdir/serve.jsonl" target/verify/serve-trace.jsonl
cp "$tmpdir/resume.jsonl" target/verify/resume-trace.jsonl

echo "verify: all green"
