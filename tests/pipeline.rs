//! End-to-end pipeline tests: families → schedules → simulator and
//! families → schedules → parallel executor → verified results.

use std::sync::atomic::{AtomicUsize, Ordering};

use ic_scheduling::apps::integration::{integrate_adaptive, Rule};
use ic_scheduling::apps::matmul::{multiply_via_dag, Matrix};
use ic_scheduling::apps::scan::scan_parallel;
use ic_scheduling::families::butterfly::{butterfly, butterfly_schedule};
use ic_scheduling::families::diamond::diamond_from_out_tree;
use ic_scheduling::families::dlt::dlt_prefix;
use ic_scheduling::families::mesh::{out_mesh, out_mesh_schedule};
use ic_scheduling::families::trees::complete_out_tree;
use ic_scheduling::sched::heuristics::{schedule_with, Policy};
use ic_scheduling::sched::quality::area_under;
use ic_scheduling::sim::{simulate, ClientProfile, SimConfig};

fn cfg(clients: usize, seed: u64) -> SimConfig {
    SimConfig {
        clients: ClientProfile {
            num_clients: clients,
            mean_service: 1.0,
            jitter: 0.5,
            straggler_prob: 0.1,
            straggler_factor: 5.0,
            failure_prob: 0.0,
            comm_cost_per_arc: 0.0,
            speed_factors: None,
        },
        seed,
        task_weights: None,
    }
}

/// The IC-optimal schedule's *eligibility area* dominates heuristics on
/// every workload family (the deterministic counterpart of the
/// simulation comparison).
#[test]
fn ic_optimal_area_dominates_heuristics_on_families() {
    let workloads: Vec<(
        &str,
        ic_scheduling::dag::Dag,
        ic_scheduling::sched::Schedule,
    )> = vec![
        {
            let m = out_mesh(8);
            let s = out_mesh_schedule(&m);
            ("mesh8", m, s)
        },
        {
            let b = butterfly(3);
            let s = butterfly_schedule(3);
            ("butterfly3", b, s)
        },
        {
            let d = diamond_from_out_tree(&complete_out_tree(2, 3)).unwrap();
            let s = d.ic_schedule().unwrap();
            ("diamond", d.dag, s)
        },
        {
            let l = dlt_prefix(8);
            let s = l.ic_schedule().unwrap();
            ("dlt8", l.dag, s)
        },
    ];
    for (name, dag, ic) in workloads {
        let opt_area = area_under(&ic.profile(&dag));
        for p in Policy::all(3) {
            let area = area_under(&schedule_with(&dag, &p).profile(&dag));
            assert!(
                opt_area >= area,
                "{name}: {} area {area} exceeds IC-optimal {opt_area}",
                p.name()
            );
        }
    }
}

/// Simulations complete every task for every (family × policy × seed)
/// combination, and the recorded trace is internally consistent.
#[test]
fn simulator_completes_across_families_and_policies() {
    let l = dlt_prefix(8);
    let ic = l.ic_schedule().unwrap();
    for clients in [1usize, 3, 8] {
        for seed in [1u64, 2] {
            let r = simulate(&l.dag, &ic, &cfg(clients, seed));
            assert_eq!(r.completions, l.dag.num_nodes());
            assert_eq!(r.allocations, l.dag.num_nodes());
            assert!(r.makespan > 0.0);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            assert_eq!(r.eligible_trace.last().unwrap().1, 0);
        }
    }
    let m = out_mesh(6);
    for p in Policy::all(9) {
        let s = schedule_with(&m, &p);
        let r = simulate(&m, &s, &cfg(4, 11));
        assert_eq!(r.completions, m.num_nodes(), "{}", p.name());
    }
}

/// More clients never hurt the makespan (weakly) on a wide workload.
#[test]
fn more_clients_weakly_improve_makespan() {
    let b = butterfly(4);
    let s = butterfly_schedule(4);
    let mk = |clients: usize| {
        // Average a few seeds to smooth stochastic effects.
        (0..6u64)
            .map(|seed| simulate(&b, &s, &cfg(clients, seed)).makespan)
            .sum::<f64>()
            / 6.0
    };
    let (m1, m4, m16) = (mk(1), mk(4), mk(16));
    assert!(m4 < m1, "4 clients should beat 1 ({m4:.2} vs {m1:.2})");
    assert!(m16 <= m4 * 1.05, "16 clients should not lose to 4");
}

/// The executor pipeline computes real results under contention, with
/// schedule-priority selection (smoke across workers).
#[test]
fn executor_pipeline_produces_correct_values() {
    // Scan 1..=100 on several worker counts.
    let xs: Vec<u64> = (1..=100).collect();
    let want: Vec<u64> = xs
        .iter()
        .scan(0u64, |acc, &x| {
            *acc += x;
            Some(*acc)
        })
        .collect();
    for workers in [1usize, 2, 8] {
        let got = scan_parallel(&xs, |a, b| a + b, workers);
        assert_eq!(got, want, "workers = {workers}");
    }
    // Dag-driven matrix multiply in parallel.
    let a = Matrix::from_fn(16, |i, j| (i as f64 - j as f64) * 0.25);
    let b = Matrix::from_fn(16, |i, j| ((i * j) as f64 * 0.01).cos());
    let want = a.multiply_naive(&b);
    let got = multiply_via_dag(&a, &b, 4);
    for i in 0..16 {
        for j in 0..16 {
            assert!((want.get(i, j) - got.get(i, j)).abs() < 1e-10);
        }
    }
}

/// Quadrature through the diamond pipeline converges as the tolerance
/// tightens — and the dag grows accordingly.
#[test]
fn quadrature_converges_with_tolerance() {
    let exact = 2.0; // ∫₀^π sin.
    let mut last_err = f64::INFINITY;
    let mut last_nodes = 0usize;
    for tol in [1e-2, 1e-4, 1e-6] {
        let q = integrate_adaptive(
            f64::sin,
            0.0,
            std::f64::consts::PI,
            tol,
            30,
            Rule::Trapezoid,
        )
        .unwrap();
        let err = (q.value - exact).abs();
        assert!(
            err <= last_err * 1.5,
            "error should shrink: {err} after {last_err}"
        );
        assert!(q.diamond.dag.num_nodes() >= last_nodes);
        last_err = err;
        last_nodes = q.diamond.dag.num_nodes();
    }
    assert!(last_err < 1e-5);
    assert!(last_nodes > 50, "tight tolerance must refine the dag");
}

/// The executor honors priorities: with one worker the execution order
/// *is* the schedule, across families.
#[test]
fn single_worker_follows_family_schedules() {
    let m = out_mesh(5);
    let s = out_mesh_schedule(&m);
    let counter = AtomicUsize::new(0);
    let positions: Vec<AtomicUsize> = (0..m.num_nodes()).map(|_| AtomicUsize::new(0)).collect();
    ic_scheduling::exec::execute(&m, &s, 1, |v| {
        let t = counter.fetch_add(1, Ordering::Relaxed);
        positions[v.index()].store(t, Ordering::Relaxed);
    });
    for (i, &v) in s.order().iter().enumerate() {
        assert_eq!(positions[v.index()].load(Ordering::Relaxed), i);
    }
}
