//! Property-style tests over the core data structures and invariants,
//! spanning the workspace crates. Cases come from the deterministic
//! generators in `ic_dag::testgen` (the offline build carries no
//! proptest); each test sweeps a fixed seed batch, so failures
//! reproduce exactly.

use ic_scheduling::apps::numeric::Complex;
use ic_scheduling::apps::poly::{convolve_fft, convolve_naive};
use ic_scheduling::apps::scan::{scan_sequential, scan_via_dag};
use ic_scheduling::apps::sorting::bitonic_sort_via_dag;
use ic_scheduling::dag::rng::XorShift64;
use ic_scheduling::dag::testgen::{random_dags, random_i64s, random_permutation};
use ic_scheduling::dag::traversal::is_topological;
use ic_scheduling::dag::{dual, quotient};
use ic_scheduling::sched::duality::{dual_schedule, packets};
use ic_scheduling::sched::heuristics::{schedule_with, Policy};
use ic_scheduling::sched::optimal::{find_ic_optimal, is_ic_optimal, optimal_envelope};
use ic_scheduling::sched::quality::dominates;
use ic_scheduling::sched::Schedule;

/// Duality is an involution and swaps source/sink counts.
#[test]
fn dual_involution() {
    for dag in random_dags(0x11, 64, 12, 40) {
        let d = dual(&dag);
        assert_eq!(dual(&d), dag.clone());
        assert_eq!(d.num_sources(), dag.num_sinks());
        assert_eq!(d.num_sinks(), dag.num_sources());
        assert_eq!(d.num_arcs(), dag.num_arcs());
    }
}

/// Every heuristic yields a valid, complete execution order, and its
/// profile starts at the source count and ends at zero.
#[test]
fn heuristics_yield_valid_schedules() {
    let mut rng = XorShift64::new(0x22);
    for dag in random_dags(0x33, 64, 14, 35) {
        let seed = rng.next_u64();
        for p in Policy::all(seed) {
            let s = schedule_with(&dag, &p);
            assert!(is_topological(&dag, s.order()), "{}", p.name());
            let prof = s.profile(&dag);
            assert_eq!(prof[0], dag.num_sources());
            assert_eq!(*prof.last().unwrap(), 0usize);
        }
    }
}

/// The optimal envelope pointwise dominates any schedule's profile.
#[test]
fn profiles_bound_the_envelope() {
    for dag in random_dags(0x44, 64, 12, 40) {
        let env = optimal_envelope(&dag).unwrap();
        let s = Schedule::in_id_order(&dag);
        let prof = s.profile(&dag);
        assert!(dominates(&env, &prof), "envelope must dominate any profile");
    }
}

/// If an IC-optimal schedule exists, it attains the envelope and
/// dominates every heuristic's profile pointwise.
#[test]
fn ic_optimal_dominates_everything() {
    let mut rng = XorShift64::new(0x55);
    for dag in random_dags(0x66, 64, 10, 40) {
        let seed = rng.next_u64();
        if let Some(opt) = find_ic_optimal(&dag).unwrap() {
            assert!(is_ic_optimal(&dag, &opt).unwrap());
            let po = opt.profile(&dag);
            for p in Policy::all(seed) {
                let hp = schedule_with(&dag, &p).profile(&dag);
                assert!(dominates(&po, &hp), "{} not dominated", p.name());
            }
        }
    }
}

/// Theorem 2.2 as a property: dual schedules of IC-optimal schedules
/// are IC-optimal on the dual.
#[test]
fn dual_schedules_preserve_optimality() {
    for dag in random_dags(0x77, 64, 9, 45) {
        if let Some(opt) = find_ic_optimal(&dag).unwrap() {
            let ds = dual_schedule(&dag, &opt).unwrap();
            let dd = dual(&dag);
            assert!(is_ic_optimal(&dd, &ds).unwrap());
        }
    }
}

/// Packets partition the nonsources, for any schedule.
#[test]
fn packets_partition_nonsources() {
    for dag in random_dags(0x88, 64, 14, 35) {
        let s = Schedule::in_id_order(&dag);
        let pk = packets(&dag, &s).unwrap();
        let mut all: Vec<_> = pk.into_iter().flatten().collect();
        all.sort();
        let nonsources: Vec<_> = dag.nonsources().collect();
        assert_eq!(all, nonsources);
    }
}

/// Quotients by a levelwise clustering are always acyclic and
/// preserve reachability granularity sums.
#[test]
fn level_quotients_are_valid() {
    let mut rng = XorShift64::new(0x99);
    for dag in random_dags(0xAA, 64, 14, 35) {
        let k = 1 + rng.gen_range(3);
        let levels = ic_scheduling::dag::traversal::levels(&dag);
        let max = levels.iter().copied().max().unwrap_or(0);
        let assignment: Vec<u32> = levels.iter().map(|&l| (l.min(max) / k) as u32).collect();
        // Renumber to be contiguous.
        let mut seen: Vec<u32> = assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        let contiguous: Vec<u32> = assignment
            .iter()
            .map(|a| seen.binary_search(a).unwrap() as u32)
            .collect();
        let q = quotient(&dag, &contiguous).unwrap();
        let total: usize = q.members.iter().map(Vec::len).sum();
        assert_eq!(total, dag.num_nodes());
    }
}

/// The dag-driven scan equals the sequential fold for arbitrary
/// inputs under an associative op (saturating add).
#[test]
fn scan_matches_fold() {
    let mut rng = XorShift64::new(0xBB);
    for seed in 0..64u64 {
        let len = 1 + rng.gen_range(39);
        let xs = random_i64s(seed, len, -1000, 1000);
        let got = scan_via_dag(&xs, |a, b| a.saturating_add(*b));
        let want = scan_sequential(&xs, |a, b| a.saturating_add(*b));
        assert_eq!(got, want);
    }
}

/// The dag-driven bitonic sorter sorts arbitrary keys.
#[test]
fn bitonic_sorts() {
    let mut rng = XorShift64::new(0xCC);
    for _ in 0..64 {
        let len = 1 + rng.gen_range(5);
        let mut xs: Vec<i32> = (0..len)
            .map(|_| rng.gen_i64(i32::MIN as i64, i32::MAX as i64) as i32)
            .collect();
        // Pad to the next power of two with copies of the max.
        let n = xs.len().next_power_of_two().max(2);
        let pad = *xs.iter().max().unwrap();
        while xs.len() < n {
            xs.push(pad);
        }
        let got = bitonic_sort_via_dag(&xs);
        let mut want = xs.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

/// FFT convolution matches naive convolution on arbitrary small
/// integer polynomials.
#[test]
fn convolution_matches() {
    let mut rng = XorShift64::new(0xDD);
    for _ in 0..64 {
        let la = 1 + rng.gen_range(19);
        let lb = 1 + rng.gen_range(19);
        let af: Vec<f64> = (0..la).map(|_| rng.gen_i64(-8, 8) as f64).collect();
        let bf: Vec<f64> = (0..lb).map(|_| rng.gen_i64(-8, 8) as f64).collect();
        let fast = convolve_fft(&af, &bf);
        let slow = convolve_naive(&af, &bf);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
    }
}

/// Complex exponentiation by squaring agrees with iterated product.
#[test]
fn complex_pow_consistent() {
    let mut rng = XorShift64::new(0xEE);
    for _ in 0..128 {
        let re = rng.gen_f64() * 3.0 - 1.5;
        let im = rng.gen_f64() * 3.0 - 1.5;
        let k = rng.gen_range(12);
        let z = Complex::new(re, im);
        let fast = z.powu(k);
        let mut slow = Complex::ONE;
        for _ in 0..k {
            slow = slow * z;
        }
        assert!((fast - slow).abs() < 1e-6 * (1.0 + slow.abs()));
    }
}

/// Batched scheduling: greedy batches always validate, cover every
/// node, and respect the width; rounds are bracketed by
/// ceil(n / width) and n.
#[test]
fn greedy_batches_are_valid() {
    use ic_scheduling::sched::batched::{greedy_batches, BatchSchedule};
    let mut rng = XorShift64::new(0xFF);
    for dag in random_dags(0x101, 64, 14, 35) {
        let width = 1 + rng.gen_range(4);
        let n = dag.num_nodes();
        let prio: Vec<usize> = (0..n).collect();
        let b = greedy_batches(&dag, width, &prio);
        assert!(BatchSchedule::new(&dag, b.batches().to_vec(), width).is_ok());
        let total: usize = b.batches().iter().map(Vec::len).sum();
        assert_eq!(total, n);
        assert!(b.num_rounds() >= n.div_ceil(width));
        assert!(b.num_rounds() <= n);
    }
}

/// Exhaustive minimum rounds never exceed greedy's, and optimal
/// batch schedules attain them.
#[test]
fn optimal_batches_attain_min_rounds() {
    use ic_scheduling::sched::batched::{greedy_batches, min_rounds, optimal_batches};
    let mut rng = XorShift64::new(0x112);
    for dag in random_dags(0x123, 48, 10, 40) {
        let width = 1 + rng.gen_range(3);
        let prio: Vec<usize> = (0..dag.num_nodes()).collect();
        let min = min_rounds(&dag, width).unwrap();
        let opt = optimal_batches(&dag, width).unwrap();
        let greedy = greedy_batches(&dag, width, &prio);
        assert_eq!(opt.num_rounds(), min);
        assert!(greedy.num_rounds() >= min);
    }
}

/// A dag is isomorphic to any relabeling of itself.
#[test]
fn isomorphism_respects_relabeling() {
    use ic_scheduling::dag::iso::are_isomorphic;
    use ic_scheduling::dag::DagBuilder;
    for (i, dag) in random_dags(0x134, 64, 10, 40).into_iter().enumerate() {
        let n = dag.num_nodes();
        let perm = random_permutation(0x145 + i as u64, n);
        let mut b = DagBuilder::new();
        b.add_nodes(n);
        for (u, v) in dag.arcs() {
            b.add_arc(
                ic_scheduling::dag::NodeId::new(perm[u.index()]),
                ic_scheduling::dag::NodeId::new(perm[v.index()]),
            )
            .unwrap();
        }
        let relabeled = b.build().unwrap();
        assert!(are_isomorphic(&dag, &relabeled));
    }
}

/// The carry-lookahead adder agrees with native addition.
#[test]
fn lookahead_adder_is_addition() {
    let mut rng = XorShift64::new(0x156);
    for _ in 0..256 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_eq!(
            ic_scheduling::apps::adder::add_u64(a, b),
            u128::from(a) + u128::from(b)
        );
    }
    // Carry-heavy edge cases that a uniform sweep is unlikely to hit.
    for (a, b) in [
        (u64::MAX, u64::MAX),
        (u64::MAX, 1),
        (0, 0),
        (u64::MAX / 2 + 1, u64::MAX / 2 + 1),
    ] {
        assert_eq!(
            ic_scheduling::apps::adder::add_u64(a, b),
            u128::from(a) + u128::from(b)
        );
    }
}

/// The odd-even merge network sorts arbitrary keys (padded to a
/// power of two).
#[test]
fn odd_even_network_sorts() {
    use ic_scheduling::apps::sorting::odd_even_sort_via_dag;
    let mut rng = XorShift64::new(0x167);
    for _ in 0..64 {
        let len = 1 + rng.gen_range(5);
        let mut xs: Vec<i32> = (0..len)
            .map(|_| rng.gen_i64(i32::MIN as i64, i32::MAX as i64) as i32)
            .collect();
        let n = xs.len().next_power_of_two().max(2);
        let pad = *xs.iter().max().unwrap();
        while xs.len() < n {
            xs.push(pad);
        }
        let got = odd_even_sort_via_dag(&xs);
        let mut want = xs.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

/// Differential test for the eligibility-engine overhaul: the envelope
/// bounds computed through the incremental + layer-parallel sweep must
/// equal those recomputed through the retained naive reference walk,
/// for both the unrestricted and the nonsinks-only lattice.
#[test]
fn envelope_bounds_match_the_naive_reference() {
    use ic_scheduling::dag::ideals::IdealEnumerator;
    use ic_scheduling::sched::optimal::{envelope_bounds, nonsink_envelope_bounds};
    for dag in random_dags(0x178, 48, 14, 35) {
        let n = dag.num_nodes();
        let en = IdealEnumerator::new(&dag).unwrap();

        let mut lo = vec![usize::MAX; n + 1];
        let mut hi = vec![0usize; n + 1];
        en.for_each_reference(|_, size, elig| {
            let e = elig.count_ones() as usize;
            lo[size as usize] = lo[size as usize].min(e);
            hi[size as usize] = hi[size as usize].max(e);
        });
        assert_eq!(envelope_bounds(&dag).unwrap(), (lo, hi));

        // Nonsinks-only: filter the reference walk to states made of
        // nonsinks; a state's size then counts executed nonsinks.
        let mask = dag
            .node_ids()
            .filter(|&v| !dag.children(v).is_empty())
            .fold(0u64, |m, v| m | (1u64 << v.index()));
        let n1 = mask.count_ones() as usize;
        let mut lo1 = vec![usize::MAX; n1 + 1];
        let mut hi1 = vec![0usize; n1 + 1];
        en.for_each_reference(|s, size, elig| {
            if s & !mask == 0 {
                let e = elig.count_ones() as usize;
                lo1[size as usize] = lo1[size as usize].min(e);
                hi1[size as usize] = hi1[size as usize].max(e);
            }
        });
        assert_eq!(nonsink_envelope_bounds(&dag).unwrap(), (lo1, hi1));
    }
}

/// Property test for the dense eligible pool: mid-run, under arbitrary
/// interleavings of claim / unclaim / execute, the pool plus the
/// claimed tasks always equals the filter-based ELIGIBLE definition
/// (unexecuted, all parents executed).
#[test]
fn exec_state_pool_matches_the_eligible_definition() {
    use ic_scheduling::sched::eligibility::ExecState;
    let mut rng = XorShift64::new(0x189);
    for dag in random_dags(0x19A, 32, 14, 35) {
        let mut st = ExecState::new(&dag);
        let mut claimed: Vec<ic_scheduling::dag::NodeId> = Vec::new();
        loop {
            // The filter-based definition, recomputed from scratch.
            let mut defined: Vec<ic_scheduling::dag::NodeId> = dag
                .node_ids()
                .filter(|&v| {
                    !st.is_executed(v) && dag.parents(v).iter().all(|&p| st.is_executed(p))
                })
                .collect();
            defined.sort_unstable_by_key(|v| v.0);

            let mut tracked: Vec<ic_scheduling::dag::NodeId> = st.pool().to_vec();
            tracked.extend(claimed.iter().copied());
            tracked.sort_unstable_by_key(|v| v.0);
            assert_eq!(
                tracked, defined,
                "pool ∪ claimed diverged from the definition"
            );
            for &v in st.pool() {
                assert!(st.is_pooled(v) && st.is_eligible(v));
            }
            for &v in &claimed {
                assert!(!st.is_pooled(v) && st.is_eligible(v));
            }

            if defined.is_empty() {
                break;
            }
            match rng.gen_range(4) {
                // Claim a pooled task (if any).
                0 if st.pool_len() > 0 => {
                    let v = st.pool()[rng.gen_range(st.pool_len())];
                    st.claim(v).unwrap();
                    claimed.push(v);
                }
                // Return a claimed task to the pool.
                1 if !claimed.is_empty() => {
                    let v = claimed.swap_remove(rng.gen_range(claimed.len()));
                    st.unclaim(v).unwrap();
                }
                // Execute any ELIGIBLE task — pooled or claimed.
                _ => {
                    let v = defined[rng.gen_range(defined.len())];
                    claimed.retain(|&c| c != v);
                    st.execute_counting(v).unwrap();
                }
            }
        }
        assert_eq!(st.num_executed(), dag.num_nodes());
    }
}
