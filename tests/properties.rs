//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning the workspace crates.

use proptest::prelude::*;

use ic_scheduling::apps::numeric::Complex;
use ic_scheduling::apps::poly::{convolve_fft, convolve_naive};
use ic_scheduling::apps::scan::{scan_sequential, scan_via_dag};
use ic_scheduling::apps::sorting::bitonic_sort_via_dag;
use ic_scheduling::dag::builder::from_arcs;
use ic_scheduling::dag::traversal::is_topological;
use ic_scheduling::dag::{dual, quotient, Dag};
use ic_scheduling::sched::duality::{dual_schedule, packets};
use ic_scheduling::sched::heuristics::{schedule_with, Policy};
use ic_scheduling::sched::optimal::{find_ic_optimal, is_ic_optimal, optimal_envelope};
use ic_scheduling::sched::quality::dominates;
use ic_scheduling::sched::Schedule;

/// Strategy: a random dag with up to `max_n` nodes; arcs only forward
/// (node ids are a topological order by construction).
fn arb_dag(max_n: usize, density: u32) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let flags = proptest::collection::vec(0u32..100, pairs.len());
        flags.prop_map(move |fs| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&fs)
                .filter(|(_, &f)| f < density)
                .map(|(&p, _)| p)
                .collect();
            from_arcs(n, &arcs).expect("forward arcs cannot form cycles")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duality is an involution and swaps source/sink counts.
    #[test]
    fn dual_involution(dag in arb_dag(12, 40)) {
        let d = dual(&dag);
        prop_assert_eq!(dual(&d), dag.clone());
        prop_assert_eq!(d.num_sources(), dag.num_sinks());
        prop_assert_eq!(d.num_sinks(), dag.num_sources());
        prop_assert_eq!(d.num_arcs(), dag.num_arcs());
    }

    /// Every heuristic yields a valid, complete execution order, and its
    /// profile starts at the source count and ends at zero.
    #[test]
    fn heuristics_yield_valid_schedules(dag in arb_dag(14, 35), seed in any::<u64>()) {
        for p in Policy::all(seed) {
            let s = schedule_with(&dag, p);
            prop_assert!(is_topological(&dag, s.order()), "{}", p.name());
            let prof = s.profile(&dag);
            prop_assert_eq!(prof[0], dag.num_sources());
            prop_assert_eq!(*prof.last().unwrap(), 0usize);
        }
    }

    /// The profile's total decrease telescopes: sum of (E(t) - E(t+1) + enabled)
    /// is consistent — equivalently, every node is counted eligible at
    /// least once (it must be eligible to be executed).
    #[test]
    fn profiles_bound_the_envelope(dag in arb_dag(12, 40)) {
        let env = optimal_envelope(&dag).unwrap();
        let s = Schedule::in_id_order(&dag);
        let prof = s.profile(&dag);
        prop_assert!(dominates(&env, &prof), "envelope must dominate any profile");
    }

    /// If an IC-optimal schedule exists, it attains the envelope and
    /// dominates every heuristic's profile pointwise.
    #[test]
    fn ic_optimal_dominates_everything(dag in arb_dag(10, 40), seed in any::<u64>()) {
        if let Some(opt) = find_ic_optimal(&dag).unwrap() {
            prop_assert!(is_ic_optimal(&dag, &opt).unwrap());
            let po = opt.profile(&dag);
            for p in Policy::all(seed) {
                let hp = schedule_with(&dag, p).profile(&dag);
                prop_assert!(dominates(&po, &hp), "{} not dominated", p.name());
            }
        }
    }

    /// Theorem 2.2 as a property: dual schedules of IC-optimal schedules
    /// are IC-optimal on the dual.
    #[test]
    fn dual_schedules_preserve_optimality(dag in arb_dag(9, 45)) {
        if let Some(opt) = find_ic_optimal(&dag).unwrap() {
            let ds = dual_schedule(&dag, &opt).unwrap();
            let dd = dual(&dag);
            prop_assert!(is_ic_optimal(&dd, &ds).unwrap());
        }
    }

    /// Packets partition the nonsources, for any schedule.
    #[test]
    fn packets_partition_nonsources(dag in arb_dag(14, 35)) {
        let s = Schedule::in_id_order(&dag);
        let pk = packets(&dag, &s).unwrap();
        let mut all: Vec<_> = pk.into_iter().flatten().collect();
        all.sort();
        let nonsources: Vec<_> = dag.nonsources().collect();
        prop_assert_eq!(all, nonsources);
    }

    /// Quotients by a levelwise clustering are always acyclic and
    /// preserve reachability granularity sums.
    #[test]
    fn level_quotients_are_valid(dag in arb_dag(14, 35), k in 1usize..4) {
        let levels = ic_scheduling::dag::traversal::levels(&dag);
        let max = levels.iter().copied().max().unwrap_or(0);
        let assignment: Vec<u32> = levels.iter().map(|&l| (l.min(max) / k) as u32).collect();
        // Renumber to be contiguous.
        let mut seen: Vec<u32> = assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        let contiguous: Vec<u32> = assignment
            .iter()
            .map(|a| seen.binary_search(a).unwrap() as u32)
            .collect();
        let q = quotient(&dag, &contiguous).unwrap();
        let total: usize = q.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, dag.num_nodes());
    }

    /// The dag-driven scan equals the sequential fold for arbitrary
    /// inputs under an associative op (saturating add).
    #[test]
    fn scan_matches_fold(xs in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let got = scan_via_dag(&xs, |a, b| a.saturating_add(*b));
        let want = scan_sequential(&xs, |a, b| a.saturating_add(*b));
        prop_assert_eq!(got, want);
    }

    /// The dag-driven bitonic sorter sorts arbitrary keys.
    #[test]
    fn bitonic_sorts(mut xs in proptest::collection::vec(any::<i32>(), 1..6)) {
        // Pad to the next power of two with copies of the max.
        let n = xs.len().next_power_of_two().max(2);
        let pad = *xs.iter().max().unwrap();
        while xs.len() < n {
            xs.push(pad);
        }
        let got = bitonic_sort_via_dag(&xs);
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// FFT convolution matches naive convolution on arbitrary small
    /// integer polynomials.
    #[test]
    fn convolution_matches(
        a in proptest::collection::vec(-8i32..8, 1..20),
        b in proptest::collection::vec(-8i32..8, 1..20),
    ) {
        let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let bf: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let fast = convolve_fft(&af, &bf);
        let slow = convolve_naive(&af, &bf);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
    }

    /// Complex exponentiation by squaring agrees with iterated product.
    #[test]
    fn complex_pow_consistent(re in -1.5f64..1.5, im in -1.5f64..1.5, k in 0usize..12) {
        let z = Complex::new(re, im);
        let fast = z.powu(k);
        let mut slow = Complex::ONE;
        for _ in 0..k {
            slow = slow * z;
        }
        prop_assert!((fast - slow).abs() < 1e-6 * (1.0 + slow.abs()));
    }

    /// Batched scheduling: greedy batches always validate, cover every
    /// node, and respect the width; rounds are bracketed by
    /// ceil(n / width) and n.
    #[test]
    fn greedy_batches_are_valid(dag in arb_dag(14, 35), width in 1usize..5) {
        use ic_scheduling::sched::batched::{greedy_batches, BatchSchedule};
        let n = dag.num_nodes();
        let prio: Vec<usize> = (0..n).collect();
        let b = greedy_batches(&dag, width, &prio);
        prop_assert!(BatchSchedule::new(&dag, b.batches().to_vec(), width).is_ok());
        let total: usize = b.batches().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        prop_assert!(b.num_rounds() >= n.div_ceil(width));
        prop_assert!(b.num_rounds() <= n);
    }

    /// Exhaustive minimum rounds never exceed greedy's, and optimal
    /// batch schedules attain them.
    #[test]
    fn optimal_batches_attain_min_rounds(dag in arb_dag(10, 40), width in 1usize..4) {
        use ic_scheduling::sched::batched::{greedy_batches, min_rounds, optimal_batches};
        let prio: Vec<usize> = (0..dag.num_nodes()).collect();
        let min = min_rounds(&dag, width).unwrap();
        let opt = optimal_batches(&dag, width).unwrap();
        let greedy = greedy_batches(&dag, width, &prio);
        prop_assert_eq!(opt.num_rounds(), min);
        prop_assert!(greedy.num_rounds() >= min);
    }

    /// A dag is isomorphic to any relabeling of itself, and never to a
    /// dag with one arc removed (when connected sizes differ... keep it
    /// simple: arc counts differ).
    #[test]
    fn isomorphism_respects_relabeling(dag in arb_dag(10, 40), seed in any::<u64>()) {
        use ic_scheduling::dag::iso::are_isomorphic;
        use ic_scheduling::dag::DagBuilder;
        let n = dag.num_nodes();
        // A deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            perm.swap(i, (s as usize) % (i + 1));
        }
        let mut b = DagBuilder::new();
        b.add_nodes(n);
        for (u, v) in dag.arcs() {
            b.add_arc(
                ic_scheduling::dag::NodeId::new(perm[u.index()]),
                ic_scheduling::dag::NodeId::new(perm[v.index()]),
            ).unwrap();
        }
        let relabeled = b.build().unwrap();
        prop_assert!(are_isomorphic(&dag, &relabeled));
    }

    /// The carry-lookahead adder agrees with native addition.
    #[test]
    fn lookahead_adder_is_addition(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            ic_scheduling::apps::adder::add_u64(a, b),
            u128::from(a) + u128::from(b)
        );
    }

    /// The odd-even merge network sorts arbitrary keys (padded to a
    /// power of two).
    #[test]
    fn odd_even_network_sorts(mut xs in proptest::collection::vec(any::<i32>(), 1..6)) {
        use ic_scheduling::apps::sorting::odd_even_sort_via_dag;
        let n = xs.len().next_power_of_two().max(2);
        let pad = *xs.iter().max().unwrap();
        while xs.len() < n {
            xs.push(pad);
        }
        let got = odd_even_sort_via_dag(&xs);
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
