//! The auditor's negative suite: take *known-good* dags and schedules
//! from the paper families, break them in controlled ways, and assert
//! that `ic-audit` flags each mutation with its **specific** diagnostic
//! code — not merely "something failed". This pins the code table of
//! DESIGN.md: a pass that starts mis-classifying defects fails here
//! even if it still rejects them.

use ic_scheduling::audit::diag::{
    COMPLETION_BEFORE_ALLOCATION, CYCLE_DETECTED, DUPLICATE_ARC, ENVELOPE_DEPARTURE, ENVELOPE_GAP,
    NON_ELIGIBLE_ALLOCATION, NOT_A_TOPOLOGICAL_ORDER, POOL_SIZE_MISMATCH, PRIORITY_CHAIN_BROKEN,
    TRACE_TRUNCATED, UNREACHABLE_NODE,
};
use ic_scheduling::audit::graph::audit_edges;
use ic_scheduling::audit::order::{audit_envelope, audit_order};
use ic_scheduling::audit::Diagnostic;
use ic_scheduling::dag::{Dag, NodeId};
use ic_scheduling::families::{butterfly, dlt, matmul, mesh, prefix, primitives, sorting, trees};
use ic_scheduling::sched::Schedule;

/// Known-good (dag, IC-optimal schedule) instances, one per family —
/// the fixtures every mutation below starts from.
fn fixtures() -> Vec<(&'static str, Dag, Schedule)> {
    let m = mesh::out_mesh(4);
    let sm = mesh::out_mesh_schedule(&m);
    let im = mesh::in_mesh(4);
    let sim = mesh::in_mesh_schedule(&im).unwrap();
    let it = trees::complete_in_tree(2, 2);
    let sit = trees::in_tree_schedule(&it).unwrap();
    let l4 = dlt::dlt_prefix(4);
    let sl4 = l4.ic_schedule().unwrap();
    let (bit, bstages) = sorting::bitonic_network(4);
    let sbit = sorting::bitonic_schedule(4, &bstages);
    vec![
        ("primitives/w3", primitives::w_dag(3), {
            let g = primitives::w_dag(3);
            primitives::ic_schedule(&g)
        }),
        ("trees/in-tree", it, sit),
        ("mesh/out", m, sm),
        ("mesh/in", im, sim),
        (
            "butterfly",
            butterfly::butterfly(2),
            butterfly::butterfly_schedule(2),
        ),
        (
            "prefix",
            prefix::parallel_prefix(4),
            prefix::prefix_schedule(4),
        ),
        ("dlt", l4.dag, sl4),
        ("sorting/bitonic", bit, sbit),
        ("matmul", matmul::matmul_dag(), matmul::theorem_schedule()),
    ]
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Dropping the last step leaves a node unexecuted: IC0101, and only
/// IC0101.
#[test]
fn dropped_step_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        order.pop();
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert!(
            diags.iter().all(|d| d.code == NOT_A_TOPOLOGICAL_ORDER),
            "{name}: wrong codes {:?}",
            codes(&diags)
        );
    }
}

/// Replacing the last step with a repeat of the first executes one node
/// twice and another never: IC0101.
#[test]
fn duplicated_node_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        let n = order.len();
        order[n - 1] = order[0];
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert!(
            diags.iter().all(|d| d.code == NOT_A_TOPOLOGICAL_ORDER),
            "{name}: wrong codes {:?}",
            codes(&diags)
        );
    }
}

/// Moving the final step (always a sink here) to the front executes a
/// dependent before its dependency: IC0101.
#[test]
fn rotated_order_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        let last = order.pop().unwrap();
        order.insert(0, last);
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert_eq!(codes(&diags), vec![NOT_A_TOPOLOGICAL_ORDER], "{name}");
        assert!(
            diags[0].message.contains("before its dependency"),
            "{name}: {}",
            diags[0].message
        );
    }
}

/// For every order-sensitive family there is a swap of two steps that
/// stays a *valid* topological order but dents the eligibility profile:
/// the auditor must then report IC0102 (envelope gap), not IC0101.
#[test]
fn valid_but_suboptimal_swap_is_an_envelope_gap() {
    for (name, dag, sched) in fixtures() {
        if dag.num_nodes() > ic_scheduling::audit::order::EXHAUSTIVE_LIMIT {
            continue;
        }
        let base = sched.order().to_vec();
        let mut found_gap = false;
        'search: for i in 0..base.len() {
            for j in i + 1..base.len() {
                let mut order = base.clone();
                order.swap(i, j);
                if !audit_order(&dag, &order).is_empty() {
                    continue; // not a valid order; covered by IC0101 tests
                }
                let diags = audit_envelope(&dag, &order).expect("within exhaustive limit");
                if !diags.is_empty() {
                    assert_eq!(codes(&diags), vec![ENVELOPE_GAP], "{name}");
                    found_gap = true;
                    break 'search;
                }
            }
        }
        // Families whose *every* valid order is IC-optimal (e.g. pure
        // out-trees) legitimately have no such swap; all fixtures here
        // are order-sensitive.
        assert!(found_gap, "{name}: no valid suboptimal swap found");
    }
}

/// Graph-level mutations on real family edge lists: a duplicated arc is
/// IC0002, a back-arc is IC0001, an extra arc-free node is IC0003.
#[test]
fn graph_mutations_get_structural_codes() {
    for (name, dag, _) in fixtures() {
        let arcs: Vec<(usize, usize)> = dag.arcs().map(|(u, v)| (u.index(), v.index())).collect();
        assert!(audit_edges(dag.num_nodes(), &arcs).is_empty(), "{name}");

        let mut dup = arcs.clone();
        dup.push(arcs[0]);
        assert_eq!(
            codes(&audit_edges(dag.num_nodes(), &dup)),
            vec![DUPLICATE_ARC],
            "{name}"
        );

        let mut cyc = arcs.clone();
        cyc.push((arcs[0].1, arcs[0].0));
        let diags = audit_edges(dag.num_nodes(), &cyc);
        assert!(
            diags.iter().any(|d| d.code == CYCLE_DETECTED),
            "{name}: {:?}",
            codes(&diags)
        );

        assert_eq!(
            codes(&audit_edges(dag.num_nodes() + 1, &arcs)),
            vec![UNREACHABLE_NODE],
            "{name}"
        );
    }
}

/// Reversing a true ▷-chain breaks it: W₁ ▷ W₂ holds (small-over-large,
/// the mesh decomposition), W₂ ▷ W₁ does not — IC0201 with the failing
/// stage named.
#[test]
fn reversed_w_chain_is_broken() {
    let stage = |s: usize| {
        let g = primitives::w_dag(s);
        let sch = primitives::ic_schedule(&g);
        (g, sch)
    };
    let good = vec![stage(1), stage(2), stage(3)];
    assert!(ic_scheduling::audit::claims::audit_priority_chain(&good).is_empty());
    let bad = vec![stage(3), stage(2), stage(1)];
    let diags = ic_scheduling::audit::claims::audit_priority_chain(&bad);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == PRIORITY_CHAIN_BROKEN));
    assert!(diags[0].message.contains("stage 0"), "{}", diags[0].message);
}

/// Feeding a *suboptimal* schedule into the duality pass violates the
/// Theorem 2.2 contract: the reversed-packet schedule is no longer
/// IC-optimal on the dual — IC0301.
#[test]
fn suboptimal_schedule_breaks_duality() {
    // W₃'s IC-optimal schedules execute the sources consecutively
    // left-to-right; starting from the middle source is a valid order
    // whose packet-reversal is *not* IC-optimal on the dual M-dag.
    let g = primitives::w_dag(3);
    let ids: Vec<NodeId> = [1usize, 0, 2, 3, 4, 5, 6]
        .iter()
        .map(|&i| NodeId::new(i))
        .collect();
    let sub = Schedule::new(&g, ids).unwrap();
    let diags = ic_scheduling::audit::claims::audit_duality(&g, &sub);
    assert!(!diags.is_empty(), "expected IC0301");
    assert!(diags
        .iter()
        .all(|d| d.code == ic_scheduling::audit::diag::DUALITY_MISMATCH));

    // The consecutive-source schedule keeps the theorem intact.
    let good = primitives::ic_schedule(&g);
    assert!(ic_scheduling::audit::claims::audit_duality(&g, &good).is_empty());
}

// ---------------------------------------------------------------------
// Trace-replay mutations (IC0401–IC0405): record a known-good run per
// family fixture, break the trace in one controlled way, and pin the
// specific code the replay pass reports.

/// Record a clean single-client trace of `sched` replayed on `dag`.
fn traced(dag: &Dag, sched: &Schedule) -> ic_scheduling::sim::Trace {
    use ic_scheduling::sim::trace::MemorySink;
    let cfg = ic_scheduling::sim::SimConfig {
        clients: ic_scheduling::sim::ClientProfile {
            num_clients: 1,
            ..ic_scheduling::sim::ClientProfile::default()
        },
        ..ic_scheduling::sim::SimConfig::default()
    };
    let mut sink = MemorySink::new();
    ic_scheduling::sim::simulate_traced(dag, sched, &cfg, &mut sink);
    sink.into_trace().unwrap()
}

/// Retargeting an allocation at a task whose parent has not completed
/// is IC0401, on every family fixture.
#[test]
fn non_eligible_allocation_is_ic0401_across_families() {
    use ic_scheduling::sim::TraceEvent;
    for (name, dag, sched) in fixtures() {
        let mut trace = traced(&dag, &sched);
        // Point the first allocation at the last-scheduled task — a
        // sink (or at least a non-source) in every fixture.
        let victim = *sched.order().last().unwrap();
        let TraceEvent::Allocated { task, .. } = &mut trace.events[0] else {
            panic!("{name}: first event is an allocation");
        };
        *task = victim;
        let diags = ic_scheduling::audit::audit_trace(&trace);
        assert!(
            codes(&diags).contains(&NON_ELIGIBLE_ALLOCATION),
            "{name}: {diags:?}"
        );
    }
}

/// Deleting an allocation leaves its completion dangling: IC0402.
#[test]
fn dangling_completion_is_ic0402() {
    use ic_scheduling::sim::TraceEvent;
    for (name, dag, sched) in fixtures() {
        let mut trace = traced(&dag, &sched);
        let i = trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::Allocated { .. }))
            .unwrap();
        trace.events.remove(i);
        let diags = ic_scheduling::audit::audit_trace(&trace);
        assert!(
            codes(&diags).contains(&COMPLETION_BEFORE_ALLOCATION),
            "{name}: {diags:?}"
        );
    }
}

/// Inflating a recorded pool size is IC0403 — reported once, at the
/// first divergence.
#[test]
fn inflated_pool_is_ic0403() {
    use ic_scheduling::sim::TraceEvent;
    let (name, dag, sched) = fixtures().remove(2);
    let mut trace = traced(&dag, &sched);
    for ev in &mut trace.events {
        if let TraceEvent::Completed { pool, .. } = ev {
            *pool = pool.map(|p| p + 2);
        }
    }
    let diags = ic_scheduling::audit::audit_trace(&trace);
    let hits = codes(&diags)
        .iter()
        .filter(|&&c| c == POOL_SIZE_MISMATCH)
        .count();
    assert_eq!(hits, 1, "{name}: {diags:?}");
}

/// Cutting the trace before its last completion is IC0405.
#[test]
fn truncated_trace_is_ic0405() {
    use ic_scheduling::sim::TraceEvent;
    for (name, dag, sched) in fixtures() {
        let mut trace = traced(&dag, &sched);
        let last = trace
            .events
            .iter()
            .rposition(|e| matches!(e, TraceEvent::Completed { .. }))
            .unwrap();
        trace.events.truncate(last);
        let diags = ic_scheduling::audit::audit_trace(&trace);
        assert!(
            codes(&diags).contains(&TRACE_TRUNCATED),
            "{name}: {diags:?}"
        );
    }
}

/// A single-client run that leaves the optimal envelope is IC0404 — a
/// warning, including past the exhaustive limit where the envelope
/// comes from the symbolic family certificate.
#[test]
fn sub_envelope_replay_is_ic0404_even_symbolically() {
    use ic_scheduling::sched::heuristics::{schedule_with, Policy};
    // Small (exhaustive) case.
    let g = mesh::out_mesh(4);
    let lifo = schedule_with(&g, &Policy::Lifo);
    let diags = ic_scheduling::audit::audit_trace(&traced(&g, &lifo));
    assert!(codes(&diags).contains(&ENVELOPE_DEPARTURE), "{diags:?}");
    // Large (symbolic) case: 55 nodes.
    let g = mesh::out_mesh(10);
    let lifo = schedule_with(&g, &Policy::Lifo);
    let diags = ic_scheduling::audit::audit_trace(&traced(&g, &lifo));
    assert!(codes(&diags).contains(&ENVELOPE_DEPARTURE), "{diags:?}");
    assert!(diags
        .iter()
        .all(|d| d.severity == ic_scheduling::audit::Severity::Warning));
}

/// IC0003 stays a warning by default and fails the audit only under
/// `--deny orphans` escalation.
#[test]
fn deny_escalates_orphans_to_errors() {
    use ic_scheduling::audit::diag::deny;
    use ic_scheduling::audit::Severity;
    // Node 3 participates in no arc.
    let mut diags = audit_edges(4, &[(0, 1), (1, 2)]);
    assert_eq!(codes(&diags), vec![UNREACHABLE_NODE]);
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    assert_eq!(deny(&mut diags, UNREACHABLE_NODE), 1);
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}
