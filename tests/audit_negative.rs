//! The auditor's negative suite: take *known-good* dags and schedules
//! from the paper families, break them in controlled ways, and assert
//! that `ic-audit` flags each mutation with its **specific** diagnostic
//! code — not merely "something failed". This pins the code table of
//! DESIGN.md: a pass that starts mis-classifying defects fails here
//! even if it still rejects them.

use ic_scheduling::audit::diag::{
    CYCLE_DETECTED, DUPLICATE_ARC, ENVELOPE_GAP, NOT_A_TOPOLOGICAL_ORDER, PRIORITY_CHAIN_BROKEN,
    UNREACHABLE_NODE,
};
use ic_scheduling::audit::graph::audit_edges;
use ic_scheduling::audit::order::{audit_envelope, audit_order};
use ic_scheduling::audit::Diagnostic;
use ic_scheduling::dag::{Dag, NodeId};
use ic_scheduling::families::{butterfly, dlt, matmul, mesh, prefix, primitives, sorting, trees};
use ic_scheduling::sched::Schedule;

/// Known-good (dag, IC-optimal schedule) instances, one per family —
/// the fixtures every mutation below starts from.
fn fixtures() -> Vec<(&'static str, Dag, Schedule)> {
    let m = mesh::out_mesh(4);
    let sm = mesh::out_mesh_schedule(&m);
    let im = mesh::in_mesh(4);
    let sim = mesh::in_mesh_schedule(&im).unwrap();
    let it = trees::complete_in_tree(2, 2);
    let sit = trees::in_tree_schedule(&it).unwrap();
    let l4 = dlt::dlt_prefix(4);
    let sl4 = l4.ic_schedule().unwrap();
    let (bit, bstages) = sorting::bitonic_network(4);
    let sbit = sorting::bitonic_schedule(4, &bstages);
    vec![
        ("primitives/w3", primitives::w_dag(3), {
            let g = primitives::w_dag(3);
            primitives::ic_schedule(&g)
        }),
        ("trees/in-tree", it, sit),
        ("mesh/out", m, sm),
        ("mesh/in", im, sim),
        (
            "butterfly",
            butterfly::butterfly(2),
            butterfly::butterfly_schedule(2),
        ),
        (
            "prefix",
            prefix::parallel_prefix(4),
            prefix::prefix_schedule(4),
        ),
        ("dlt", l4.dag, sl4),
        ("sorting/bitonic", bit, sbit),
        ("matmul", matmul::matmul_dag(), matmul::theorem_schedule()),
    ]
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Dropping the last step leaves a node unexecuted: IC0101, and only
/// IC0101.
#[test]
fn dropped_step_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        order.pop();
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert!(
            diags.iter().all(|d| d.code == NOT_A_TOPOLOGICAL_ORDER),
            "{name}: wrong codes {:?}",
            codes(&diags)
        );
    }
}

/// Replacing the last step with a repeat of the first executes one node
/// twice and another never: IC0101.
#[test]
fn duplicated_node_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        let n = order.len();
        order[n - 1] = order[0];
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert!(
            diags.iter().all(|d| d.code == NOT_A_TOPOLOGICAL_ORDER),
            "{name}: wrong codes {:?}",
            codes(&diags)
        );
    }
}

/// Moving the final step (always a sink here) to the front executes a
/// dependent before its dependency: IC0101.
#[test]
fn rotated_order_is_not_a_topological_order() {
    for (name, dag, sched) in fixtures() {
        let mut order = sched.order().to_vec();
        let last = order.pop().unwrap();
        order.insert(0, last);
        let diags = audit_order(&dag, &order);
        assert!(!diags.is_empty(), "{name}: mutation not flagged");
        assert_eq!(codes(&diags), vec![NOT_A_TOPOLOGICAL_ORDER], "{name}");
        assert!(
            diags[0].message.contains("before its dependency"),
            "{name}: {}",
            diags[0].message
        );
    }
}

/// For every order-sensitive family there is a swap of two steps that
/// stays a *valid* topological order but dents the eligibility profile:
/// the auditor must then report IC0102 (envelope gap), not IC0101.
#[test]
fn valid_but_suboptimal_swap_is_an_envelope_gap() {
    for (name, dag, sched) in fixtures() {
        if dag.num_nodes() > ic_scheduling::audit::order::EXHAUSTIVE_LIMIT {
            continue;
        }
        let base = sched.order().to_vec();
        let mut found_gap = false;
        'search: for i in 0..base.len() {
            for j in i + 1..base.len() {
                let mut order = base.clone();
                order.swap(i, j);
                if !audit_order(&dag, &order).is_empty() {
                    continue; // not a valid order; covered by IC0101 tests
                }
                let diags = audit_envelope(&dag, &order).expect("within exhaustive limit");
                if !diags.is_empty() {
                    assert_eq!(codes(&diags), vec![ENVELOPE_GAP], "{name}");
                    found_gap = true;
                    break 'search;
                }
            }
        }
        // Families whose *every* valid order is IC-optimal (e.g. pure
        // out-trees) legitimately have no such swap; all fixtures here
        // are order-sensitive.
        assert!(found_gap, "{name}: no valid suboptimal swap found");
    }
}

/// Graph-level mutations on real family edge lists: a duplicated arc is
/// IC0002, a back-arc is IC0001, an extra arc-free node is IC0003.
#[test]
fn graph_mutations_get_structural_codes() {
    for (name, dag, _) in fixtures() {
        let arcs: Vec<(usize, usize)> = dag.arcs().map(|(u, v)| (u.index(), v.index())).collect();
        assert!(audit_edges(dag.num_nodes(), &arcs).is_empty(), "{name}");

        let mut dup = arcs.clone();
        dup.push(arcs[0]);
        assert_eq!(
            codes(&audit_edges(dag.num_nodes(), &dup)),
            vec![DUPLICATE_ARC],
            "{name}"
        );

        let mut cyc = arcs.clone();
        cyc.push((arcs[0].1, arcs[0].0));
        let diags = audit_edges(dag.num_nodes(), &cyc);
        assert!(
            diags.iter().any(|d| d.code == CYCLE_DETECTED),
            "{name}: {:?}",
            codes(&diags)
        );

        assert_eq!(
            codes(&audit_edges(dag.num_nodes() + 1, &arcs)),
            vec![UNREACHABLE_NODE],
            "{name}"
        );
    }
}

/// Reversing a true ▷-chain breaks it: W₁ ▷ W₂ holds (small-over-large,
/// the mesh decomposition), W₂ ▷ W₁ does not — IC0201 with the failing
/// stage named.
#[test]
fn reversed_w_chain_is_broken() {
    let stage = |s: usize| {
        let g = primitives::w_dag(s);
        let sch = primitives::ic_schedule(&g);
        (g, sch)
    };
    let good = vec![stage(1), stage(2), stage(3)];
    assert!(ic_scheduling::audit::claims::audit_priority_chain(&good).is_empty());
    let bad = vec![stage(3), stage(2), stage(1)];
    let diags = ic_scheduling::audit::claims::audit_priority_chain(&bad);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == PRIORITY_CHAIN_BROKEN));
    assert!(diags[0].message.contains("stage 0"), "{}", diags[0].message);
}

/// Feeding a *suboptimal* schedule into the duality pass violates the
/// Theorem 2.2 contract: the reversed-packet schedule is no longer
/// IC-optimal on the dual — IC0301.
#[test]
fn suboptimal_schedule_breaks_duality() {
    // W₃'s IC-optimal schedules execute the sources consecutively
    // left-to-right; starting from the middle source is a valid order
    // whose packet-reversal is *not* IC-optimal on the dual M-dag.
    let g = primitives::w_dag(3);
    let ids: Vec<NodeId> = [1usize, 0, 2, 3, 4, 5, 6]
        .iter()
        .map(|&i| NodeId::new(i))
        .collect();
    let sub = Schedule::new(&g, ids).unwrap();
    let diags = ic_scheduling::audit::claims::audit_duality(&g, &sub);
    assert!(!diags.is_empty(), "expected IC0301");
    assert!(diags
        .iter()
        .all(|d| d.code == ic_scheduling::audit::diag::DUALITY_MISMATCH));

    // The consecutive-source schedule keeps the theorem intact.
    let good = primitives::ic_schedule(&g);
    assert!(ic_scheduling::audit::claims::audit_duality(&g, &good).is_empty());
}
