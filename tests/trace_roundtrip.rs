//! Trace-pipeline property tests: for randomly generated dags, a
//! simulated run's trace must (1) round-trip through the JSONL format
//! byte-exactly at the event level, (2) reproduce the run's metrics
//! from the parsed trace alone (`SimResult::from_trace` is the single
//! source of truth), and (3) replay clean under the IC04xx audit. The
//! symbolic-certification path is exercised on a family dag past the
//! exhaustive envelope limit.

use ic_scheduling::audit::audit_trace;
use ic_scheduling::audit::Severity;
use ic_scheduling::dag::testgen::random_dags;
use ic_scheduling::dag::Dag;
use ic_scheduling::families::mesh;
use ic_scheduling::sched::heuristics::Policy;
use ic_scheduling::sched::AllocationPolicy;
use ic_scheduling::sim::trace::MemorySink;
use ic_scheduling::sim::{simulate_traced, ClientProfile, SimConfig, SimResult, Trace};

fn run(dag: &Dag, policy: &dyn AllocationPolicy, clients: usize, seed: u64) -> (SimResult, Trace) {
    let cfg = SimConfig {
        clients: ClientProfile {
            num_clients: clients,
            ..ClientProfile::default()
        },
        seed,
        ..SimConfig::default()
    };
    let mut sink = MemorySink::new();
    let r = simulate_traced(dag, policy, &cfg, &mut sink);
    (r, sink.into_trace().expect("header recorded"))
}

#[test]
fn jsonl_round_trips_exactly_on_random_dags() {
    for (i, dag) in random_dags(0xA11CE, 25, 14, 35).iter().enumerate() {
        let clients = 1 + i % 4;
        let (_, trace) = run(dag, &Policy::Fifo, clients, i as u64);
        let text = trace.to_jsonl();
        let parsed = Trace::from_jsonl(&text).expect("own output parses");
        assert_eq!(parsed.header, trace.header, "case {i}");
        assert_eq!(parsed.events, trace.events, "case {i}");
        // Serialization is deterministic: a second round is identical.
        assert_eq!(parsed.to_jsonl(), text, "case {i}");
    }
}

#[test]
fn metrics_survive_serialization_on_random_dags() {
    for (i, dag) in random_dags(0xBEA7, 20, 12, 40).iter().enumerate() {
        let policies: [&dyn AllocationPolicy; 3] = [
            &Policy::Fifo,
            &Policy::GreedyEligibility,
            &Policy::Random(i as u64),
        ];
        let p = policies[i % policies.len()];
        let (r, trace) = run(dag, p, 1 + i % 3, 1000 + i as u64);
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(SimResult::from_trace(&parsed), r, "case {i}");
    }
}

#[test]
fn random_runs_replay_clean_under_the_trace_audit() {
    for (i, dag) in random_dags(0x7ACE, 20, 12, 40).iter().enumerate() {
        let (_, trace) = run(dag, &Policy::GreedyEligibility, 1 + i % 4, i as u64);
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        let diags = audit_trace(&parsed);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "case {i}: {diags:?}"
        );
    }
}

#[test]
fn failures_reallocate_and_still_replay_clean() {
    let mut cfg = SimConfig {
        clients: ClientProfile {
            num_clients: 3,
            failure_prob: 0.25,
            ..ClientProfile::default()
        },
        ..SimConfig::default()
    };
    for (i, dag) in random_dags(0xFA17, 10, 10, 40).iter().enumerate() {
        cfg.seed = i as u64;
        let mut sink = MemorySink::new();
        simulate_traced(dag, &Policy::Fifo, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        let has_failure = trace
            .events
            .iter()
            .any(|e| matches!(e, ic_scheduling::sim::TraceEvent::Failed { .. }));
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        let diags = audit_trace(&parsed);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "case {i} (failures: {has_failure}): {diags:?}"
        );
    }
}

#[test]
fn symbolic_certification_covers_dags_past_the_exhaustive_limit() {
    // 55 nodes — the down-set lattice is out of reach, but the mesh is
    // recognized and its closed-form envelope applied.
    let g = mesh::out_mesh(10);
    let s = mesh::out_mesh_schedule(&g);
    let (_, optimal) = run(&g, &s, 1, 3);
    let parsed = Trace::from_jsonl(&optimal.to_jsonl()).unwrap();
    assert!(
        audit_trace(&parsed).is_empty(),
        "optimal run is fully clean"
    );

    let (_, lifo) = run(&g, &Policy::Lifo, 1, 3);
    let parsed = Trace::from_jsonl(&lifo.to_jsonl()).unwrap();
    let diags = audit_trace(&parsed);
    assert!(
        diags
            .iter()
            .any(|d| d.code == ic_scheduling::audit::diag::ENVELOPE_DEPARTURE),
        "LIFO departs from the symbolic envelope: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.severity == Severity::Warning),
        "envelope departure alone is advisory"
    );
}
