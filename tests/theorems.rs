//! Cross-crate theorem checks: the paper's formal claims, verified over
//! every dag family the workspace builds.

use ic_scheduling::dag::{dual, Dag};
use ic_scheduling::families::butterfly::{butterfly, butterfly_schedule};
use ic_scheduling::families::diamond::diamond_from_out_tree;
use ic_scheduling::families::dlt::{dlt_prefix, dlt_vee3};
use ic_scheduling::families::matmul::{matmul_dag, theorem_schedule};
use ic_scheduling::families::mesh::{in_mesh, in_mesh_schedule, out_mesh, out_mesh_schedule};
use ic_scheduling::families::prefix::{parallel_prefix, prefix_schedule};
use ic_scheduling::families::primitives::{
    butterfly_block, cycle_dag, ic_schedule, lambda, lambda_d, n_dag, vee, vee_d, w_dag,
};
use ic_scheduling::families::sorting::{bitonic_network, bitonic_schedule};
use ic_scheduling::families::trees::{complete_in_tree, complete_out_tree, in_tree_schedule};
use ic_scheduling::sched::duality::dual_schedule;
use ic_scheduling::sched::optimal::{is_ic_optimal, optimal_envelope};
use ic_scheduling::sched::priority::has_priority;
use ic_scheduling::sched::Schedule;

/// Every closed-form family schedule that is exhaustively checkable is
/// IC-optimal.
#[test]
fn family_schedules_attain_the_envelope() {
    let cases: Vec<(&str, Dag, Schedule)> = vec![
        ("V", vee(), ic_schedule(&vee())),
        ("V3", vee_d(3), ic_schedule(&vee_d(3))),
        ("Λ", lambda(), ic_schedule(&lambda())),
        ("Λ4", lambda_d(4), ic_schedule(&lambda_d(4))),
        ("B", butterfly_block(), ic_schedule(&butterfly_block())),
        ("N5", n_dag(5), ic_schedule(&n_dag(5))),
        ("W5", w_dag(5), ic_schedule(&w_dag(5))),
        ("C5", cycle_dag(5), ic_schedule(&cycle_dag(5))),
        ("mesh5", out_mesh(5), out_mesh_schedule(&out_mesh(5))),
        ("B2", butterfly(2), butterfly_schedule(2)),
        ("P4", parallel_prefix(4), prefix_schedule(4)),
        ("M", matmul_dag(), theorem_schedule()),
    ];
    for (name, dag, sched) in cases {
        assert!(
            is_ic_optimal(&dag, &sched).unwrap(),
            "{name}: closed-form schedule must attain the envelope"
        );
    }
}

/// Theorem 2.2 across families: dual schedules of IC-optimal schedules
/// are IC-optimal on the dual dag.
#[test]
fn theorem_2_2_across_families() {
    let cases: Vec<(&str, Dag, Schedule)> = vec![
        ("mesh4", out_mesh(4), out_mesh_schedule(&out_mesh(4))),
        ("B2", butterfly(2), butterfly_schedule(2)),
        ("P4", parallel_prefix(4), prefix_schedule(4)),
        ("W4", w_dag(4), ic_schedule(&w_dag(4))),
        ("C4", cycle_dag(4), ic_schedule(&cycle_dag(4))),
    ];
    for (name, dag, sched) in cases {
        assert!(is_ic_optimal(&dag, &sched).unwrap(), "{name} premise");
        let ds = dual_schedule(&dag, &sched).unwrap();
        let dd = dual(&dag);
        assert!(is_ic_optimal(&dd, &ds).unwrap(), "{name}: Theorem 2.2");
    }
}

/// Theorem 2.3 across families: `G1 ▷ G2 ⇔ dual(G2) ▷ dual(G1)`.
#[test]
fn theorem_2_3_across_families() {
    let dags = [
        vee(),
        lambda(),
        butterfly_block(),
        n_dag(3),
        w_dag(2),
        cycle_dag(3),
    ];
    let scheds: Vec<Schedule> = dags.iter().map(ic_schedule).collect();
    // IC-optimal schedules for the duals, found exhaustively.
    let duals: Vec<Dag> = dags.iter().map(dual).collect();
    let dual_scheds: Vec<Schedule> = duals
        .iter()
        .map(|d| {
            ic_scheduling::sched::optimal::find_ic_optimal(d)
                .unwrap()
                .unwrap()
        })
        .collect();
    for i in 0..dags.len() {
        for j in 0..dags.len() {
            let forward = has_priority(&dags[i], &scheds[i], &dags[j], &scheds[j]);
            let backward = has_priority(&duals[j], &dual_scheds[j], &duals[i], &dual_scheds[i]);
            assert_eq!(forward, backward, "Theorem 2.3 mismatch at pair ({i}, {j})");
        }
    }
}

/// The in-tree/out-tree duality pipeline (§3.1): complete in-trees of
/// several arities are IC-optimally scheduled via the dual-packet
/// construction.
#[test]
fn in_tree_schedules_via_duality() {
    for (arity, depth) in [(2usize, 2usize), (2, 3), (3, 2), (4, 1)] {
        let t = complete_in_tree(arity, depth);
        let s = in_tree_schedule(&t).unwrap();
        assert!(
            is_ic_optimal(&t, &s).unwrap(),
            "in-tree arity {arity} depth {depth}"
        );
    }
}

/// In- and out-meshes of equal size share their envelope *areas* by
/// duality (profiles reverse role); both attain their envelopes.
#[test]
fn mesh_duality_envelopes() {
    for levels in 2..=5usize {
        let om = out_mesh(levels);
        let im = in_mesh(levels);
        assert!(is_ic_optimal(&om, &out_mesh_schedule(&om)).unwrap());
        assert!(is_ic_optimal(&im, &in_mesh_schedule(&im).unwrap()).unwrap());
    }
}

/// Composite dags spanning multiple crates end-to-end: every composite
/// family's schedule is at minimum a valid execution order, and at
/// exhaustively-checkable sizes attains the envelope.
#[test]
fn composite_families_end_to_end() {
    // Diamond.
    let d = diamond_from_out_tree(&complete_out_tree(2, 2)).unwrap();
    assert!(is_ic_optimal(&d.dag, &d.ic_schedule().unwrap()).unwrap());
    // DLT both ways.
    let l4 = dlt_prefix(4);
    assert!(is_ic_optimal(&l4.dag, &l4.ic_schedule().unwrap()).unwrap());
    let lp4 = dlt_vee3(4);
    assert!(is_ic_optimal(&lp4.dag, &lp4.ic_schedule().unwrap()).unwrap());
    // Sorting network.
    let (net, stages) = bitonic_network(4);
    assert!(is_ic_optimal(&net, &bitonic_schedule(4, &stages)).unwrap());
    // Large instances: schedules remain valid even beyond exhaustive reach.
    let l64 = dlt_prefix(64);
    let s = l64.ic_schedule().unwrap();
    assert!(ic_scheduling::dag::traversal::is_topological(
        &l64.dag,
        s.order()
    ));
    let b6 = butterfly(6);
    assert!(ic_scheduling::dag::traversal::is_topological(
        &b6,
        butterfly_schedule(6).order()
    ));
}

/// The envelope itself is monotone in a weak sense: for every family,
/// `opt(t) > 0` until the last step (connected dags keep something
/// eligible).
#[test]
fn envelopes_stay_positive_on_connected_families() {
    let dags = vec![
        out_mesh(4),
        butterfly(2),
        parallel_prefix(4),
        matmul_dag(),
        diamond_from_out_tree(&complete_out_tree(2, 2)).unwrap().dag,
    ];
    for dag in dags {
        let env = optimal_envelope(&dag).unwrap();
        let n = dag.num_nodes();
        assert_eq!(env[n], 0);
        for (t, &e) in env.iter().enumerate().take(n) {
            assert!(e > 0, "envelope must stay positive at step {t}");
        }
    }
}
