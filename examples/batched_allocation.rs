//! The batched regimen of the paper's companion work [20]
//! (Malewicz–Rosenberg, Euro-Par 2005): instead of allocating tasks one
//! by one as they become ELIGIBLE, the server hands out *batches* each
//! round. Batched optimality is always achievable — at a computational
//! price. This example shows the round counts across batch widths and
//! the exact-vs-greedy gap.
//!
//! ```text
//! cargo run --example batched_allocation
//! ```

use ic_scheduling::dag::traversal::height;
use ic_scheduling::families::diamond::diamond_from_out_tree;
use ic_scheduling::families::mesh::out_mesh;
use ic_scheduling::families::prefix::parallel_prefix;
use ic_scheduling::families::trees::complete_out_tree;
use ic_scheduling::sched::batched::{greedy_batches, min_rounds, optimal_batches};

fn main() {
    let workloads: Vec<(&str, ic_scheduling::dag::Dag)> = vec![
        (
            "diamond(2,2)",
            diamond_from_out_tree(&complete_out_tree(2, 2)).unwrap().dag,
        ),
        ("mesh(6)", out_mesh(6)),
        ("prefix(4)", parallel_prefix(4)),
    ];
    for (name, dag) in workloads {
        println!(
            "-- {name}: {} tasks, height {} (the unbounded-width lower bound) --",
            dag.num_nodes(),
            height(&dag)
        );
        println!(
            "  {:<7} {:>11} {:>13} {:>14}",
            "width", "min rounds", "exact sched", "greedy sched"
        );
        let prio: Vec<usize> = (0..dag.num_nodes()).collect();
        for width in [1usize, 2, 3, 4, 8, dag.num_nodes()] {
            let min = min_rounds(&dag, width).expect("small dag");
            let exact = optimal_batches(&dag, width).expect("small dag");
            let greedy = greedy_batches(&dag, width, &prio);
            println!(
                "  {:<7} {:>11} {:>13} {:>14}",
                width,
                min,
                exact.num_rounds(),
                greedy.num_rounds()
            );
        }
        // Show one concrete optimal batch schedule.
        let b = optimal_batches(&dag, 3).expect("small dag");
        println!("  width-3 exact rounds ({}):", b.num_rounds());
        for (i, batch) in b.batches().iter().enumerate() {
            let names: Vec<String> = batch.iter().map(|v| v.to_string()).collect();
            println!("    round {i}: tasks [{}]", names.join(", "));
        }
        println!("  batched profile: {:?}\n", b.profile(&dag));
    }
    println!(
        "With unbounded width the minimum round count equals the dag's height\n\
         — batched 'optimality is always possible' [20], but the exact search\n\
         walks the whole down-set lattice (prohibitive beyond small dags);\n\
         greedy gets the same counts on these workloads."
    );
}
