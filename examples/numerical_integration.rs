//! §3.2 of the paper: adaptive-quadrature numerical integration as an
//! expansion-reduction computation.
//!
//! ```text
//! cargo run --example numerical_integration
//! ```

use ic_scheduling::apps::integration::{integrate_adaptive, Rule};
use ic_scheduling::dag::traversal::levels;

type Case = (&'static str, fn(f64) -> f64, f64, f64, f64);

fn main() {
    let cases: Vec<Case> = vec![
        ("∫₀^π sin x dx", f64::sin, 0.0, std::f64::consts::PI, 2.0),
        ("∫₀¹ √x dx", f64::sqrt, 0.0, 1.0, 2.0 / 3.0),
        ("∫₀¹ eˣ dx", f64::exp, 0.0, 1.0, std::f64::consts::E - 1.0),
    ];
    for (name, f, a, b, exact) in cases {
        println!("-- {name} (exact {exact:.9}) --");
        for rule in [Rule::Trapezoid, Rule::Simpson] {
            let q = integrate_adaptive(f, a, b, 1e-7, 28, rule).expect("valid interval");
            let depth = levels(&q.diamond.tree).into_iter().max().unwrap_or(0);
            println!(
                "  {rule:?}: value {:.9}  |err| {:.2e}  panels {}  tree {} nodes (depth {})  diamond {} nodes",
                q.value,
                (q.value - exact).abs(),
                q.panels,
                q.diamond.tree.num_nodes(),
                depth,
                q.diamond.dag.num_nodes(),
            );
        }
        println!();
    }
    println!(
        "The expansion out-tree splits intervals adaptively; its dual in-tree\n\
         accumulates panel areas. The composite diamond dag is scheduled\n\
         IC-optimally: all splitting first, then paired accumulation (§3)."
    );
}
