//! Quickstart: build a dag, find its IC-optimal schedule, and see why
//! IC-optimality matters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ic_scheduling::dag::DagBuilder;
use ic_scheduling::sched::heuristics::{schedule_with, Policy};
use ic_scheduling::sched::optimal::{find_ic_optimal, optimal_envelope};
use ic_scheduling::sched::quality::area_under;

fn main() {
    // A small divide-and-conquer computation: split twice, then merge.
    //
    //         r
    //        / \
    //       a   b        (expansion)
    //      / \ / \
    //     c  d e  f      (leaves; d and e shared with the reduction)
    //      \ / \ /
    //       g   h        (reduction)
    //        \ /
    //         s
    let mut b = DagBuilder::new();
    let r = b.add_node("r");
    let a1 = b.add_node("a");
    let b1 = b.add_node("b");
    let leaves: Vec<_> = ["c", "d", "e", "f"]
        .iter()
        .map(|l| b.add_node(*l))
        .collect();
    let g = b.add_node("g");
    let h = b.add_node("h");
    let s = b.add_node("s");
    b.add_arc(r, a1).unwrap();
    b.add_arc(r, b1).unwrap();
    b.add_arc(a1, leaves[0]).unwrap();
    b.add_arc(a1, leaves[1]).unwrap();
    b.add_arc(b1, leaves[2]).unwrap();
    b.add_arc(b1, leaves[3]).unwrap();
    b.add_arc(leaves[0], g).unwrap();
    b.add_arc(leaves[1], g).unwrap();
    b.add_arc(leaves[2], h).unwrap();
    b.add_arc(leaves[3], h).unwrap();
    b.add_arc(g, s).unwrap();
    b.add_arc(h, s).unwrap();
    let dag = b.build().expect("acyclic");

    println!(
        "computation-dag: {} tasks, {} dependencies\n",
        dag.num_nodes(),
        dag.num_arcs()
    );

    // The optimal envelope: the best possible number of ELIGIBLE tasks
    // after every execution step.
    let envelope = optimal_envelope(&dag).expect("small dag");
    println!("optimal envelope  E*(t) = {envelope:?}");

    // Synthesize an IC-optimal schedule (this dag admits one).
    let opt = find_ic_optimal(&dag)
        .expect("small dag")
        .expect("this dag admits an IC-optimal schedule");
    let names: Vec<&str> = opt.order().iter().map(|&v| dag.label(v)).collect();
    println!("IC-optimal order        = {names:?}");
    println!("its profile       E(t)  = {:?}\n", opt.profile(&dag));

    // Compare against the heuristics an IC server might use instead.
    println!("{:<12} {:>6}  profile", "policy", "area");
    println!(
        "{:<12} {:>6}  {:?}",
        "IC-OPTIMAL",
        area_under(&opt.profile(&dag)),
        opt.profile(&dag)
    );
    for p in Policy::all(1) {
        let s = schedule_with(&dag, &p);
        let prof = s.profile(&dag);
        println!("{:<12} {:>6}  {:?}", p.name(), area_under(&prof), prof);
    }
    println!(
        "\nA larger E(t) at every t means the server always has more tasks\n\
         ready to hand to remote clients — less gridlock, more parallelism."
    );
}
