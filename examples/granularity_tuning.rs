//! Multi-granularity in action (the paper's recurring theme): the same
//! wavefront computation executed at several task granularities on the
//! multicore executor. Coarse tasks amortize per-task overhead —
//! compute grows with the block area while scheduling (and, on a real
//! IC platform, communication) grows with its perimeter.
//!
//! ```text
//! cargo run --release --example granularity_tuning
//! ```

use std::collections::HashMap;
use std::time::Instant;

use ic_scheduling::dag::{quotient, stats::stats};
use ic_scheduling::families::butterfly::coarsen_butterfly;
use ic_scheduling::families::mesh::{mesh_coords, out_mesh};
use ic_scheduling::sched::Schedule;

/// A small compute kernel standing in for a task body.
fn spin(work: u32) -> u64 {
    let mut acc = 0u64;
    for i in 0..work {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc
}

fn main() {
    let levels = 40usize;
    let fine = out_mesh(levels);
    let per_cell = 2_000u32;
    let workers = 4usize;
    println!("wavefront workload: {}", stats(&fine));
    println!("running on {workers} workers, {per_cell} kernel iterations per fine cell\n");
    println!(
        "{:<8} {:>8} {:>14} {:>12}",
        "block b", "tasks", "per-task work", "wall time"
    );

    // Fine execution.
    let sched = Schedule::in_id_order(&fine);
    let t0 = Instant::now();
    ic_scheduling::exec::execute(&fine, &sched, workers, |_| {
        std::hint::black_box(spin(per_cell));
    });
    println!(
        "{:<8} {:>8} {:>14} {:>11.1?}",
        1,
        fine.num_nodes(),
        per_cell,
        t0.elapsed()
    );

    // Coarse executions: block quotients of side b.
    for b in [2usize, 4, 8] {
        let coords = mesh_coords(levels);
        let mut ids: HashMap<(usize, usize), u32> = HashMap::new();
        let mut blocks: Vec<(usize, usize)> = coords.iter().map(|&(r, c)| (r / b, c / b)).collect();
        let mut ordered = blocks.clone();
        ordered.sort_by_key(|&(r, c)| (r + c, r));
        ordered.dedup();
        for (i, blk) in ordered.iter().enumerate() {
            ids.insert(*blk, i as u32);
        }
        let assignment: Vec<u32> = blocks.drain(..).map(|blk| ids[&blk]).collect();
        let q = quotient(&fine, &assignment).expect("block clustering is acyclic");
        let sizes: Vec<u32> = q.members.iter().map(|m| m.len() as u32).collect();
        let sched = Schedule::in_id_order(&q.dag);
        let t0 = Instant::now();
        ic_scheduling::exec::execute(&q.dag, &sched, workers, |v| {
            std::hint::black_box(spin(per_cell * sizes[v.index()]));
        });
        println!(
            "{:<8} {:>8} {:>14} {:>11.1?}",
            b,
            q.dag.num_nodes(),
            format!("{}x cell", sizes.iter().max().unwrap()),
            t0.elapsed()
        );
    }

    // The butterfly version of the same knob: radix-2^b decomposition.
    println!("\nbutterfly granularity (B_8, radix-2^b bands):");
    for b in [1usize, 2, 4, 8] {
        let q = coarsen_butterfly(8, b);
        println!(
            "  b = {b}: {} coarse tasks, max granularity {}",
            q.dag.num_nodes(),
            (0..q.num_clusters())
                .map(|c| q.granularity(ic_scheduling::dag::NodeId::new(c)))
                .max()
                .unwrap()
        );
    }
    println!(
        "\nThe same dependency *structure* serves every granularity — the\n\
         theory's schedules survive the coarsening (§§3-7 of the paper)."
    );
}
