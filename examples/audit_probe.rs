//! A numerical cross-check probe: runs the applicative computations
//! (FFT, radix FFT, scan, carry-lookahead adder, DLT, quadrature) at
//! sizes beyond the unit tests and compares against reference
//! implementations.

use ic_apps::adder::add_lookahead;
use ic_apps::dlt::{dlt_direct, dlt_via_prefix, dlt_via_vee3};
use ic_apps::fft::{dft_naive, fft_via_butterfly, radix_r_fft};
use ic_apps::integration::{integrate_adaptive, Rule};
use ic_apps::numeric::{BoolMatrix, Complex};
use ic_apps::scan::{scan_sequential, scan_via_dag};

fn close(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
        .max(if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        })
}

fn main() {
    // FFT large sizes
    for n in [128usize, 256, 512] {
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let e = close(&fft_via_butterfly(&xs), &dft_naive(&xs));
        println!("fft n={n} maxerr={e:.3e}");
    }
    // radix FFT untested radices/depths
    for (r, n) in [
        (5usize, 25usize),
        (5, 125),
        (6, 36),
        (3, 81),
        (4, 256),
        (8, 64),
        (2, 128),
    ] {
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.23).cos(), (i as f64 * 0.51).sin()))
            .collect();
        let e = close(&radix_r_fft(r, &xs), &dft_naive(&xs));
        println!("radix r={r} n={n} maxerr={e:.3e}");
    }
    // scan odd sizes, noncommutative, large
    for n in [2usize, 6, 7, 9, 17, 33, 63, 64, 65, 100, 129] {
        let xs: Vec<String> = (0..n).map(|i| format!("{i},")).collect();
        let a = scan_via_dag(&xs, |x, y| format!("{x}{y}"));
        let b = scan_sequential(&xs, |x, y| format!("{x}{y}"));
        if a != b {
            println!("SCAN MISMATCH n={n}");
        } else {
            println!("scan n={n} ok");
        }
    }
    // adder odd widths exhaustive small
    for w in 1..=6usize {
        let bits = |x: u32| (0..w).map(|i| x >> i & 1 == 1).collect::<Vec<_>>();
        for a in 0..(1u32 << w) {
            for b in 0..(1u32 << w) {
                let s = add_lookahead(&bits(a), &bits(b));
                let v: u32 = s
                    .iter()
                    .enumerate()
                    .fold(0, |acc, (i, &bt)| acc | (u32::from(bt) << i));
                assert_eq!(v, a + b, "adder w={w} {a}+{b}");
            }
        }
    }
    println!("adder exhaustive ok");
    // dlt untested sizes
    for n in [2usize, 4, 32, 64] {
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.61).cos(), i as f64 * 0.25 - 1.0))
            .collect();
        let omega = Complex::cis(0.37);
        for k in [0usize, 1, n - 1, 2 * n + 3] {
            let d = dlt_direct(&xs, omega, k);
            let p = dlt_via_prefix(&xs, omega, k);
            let v = dlt_via_vee3(&xs, omega, k);
            let ep = (p - d).abs();
            let ev = (v - d).abs();
            if ep > 1e-6 * (1.0 + d.abs()) || ev > 1e-6 * (1.0 + d.abs()) {
                println!("DLT MISMATCH n={n} k={k} ep={ep:.3e} ev={ev:.3e}");
            }
        }
        println!("dlt n={n} ok");
    }
    // BoolMatrix: dense random n=130, compare logical_mul vs naive
    let n = 130;
    let mut s = 0x12345u64;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut a = BoolMatrix::zero(n);
    let mut b = BoolMatrix::zero(n);
    for i in 0..n {
        for j in 0..n {
            if rnd() % 3 == 0 {
                a.set(i, j, true);
            }
            if rnd() % 3 == 0 {
                b.set(i, j, true);
            }
        }
    }
    let c = a.logical_mul(&b);
    let mut bad = 0;
    for i in 0..n {
        for j in 0..n {
            let mut expect = false;
            for k in 0..n {
                if a.get(i, k) && b.get(k, j) {
                    expect = true;
                    break;
                }
            }
            if c.get(i, j) != expect {
                bad += 1;
            }
        }
    }
    println!("boolmatrix n=130 mismatches={bad}");
    // integration: error vs requested tol for a nasty integrand
    for tol in [1e-3, 1e-5, 1e-7] {
        let q = integrate_adaptive(
            |x: f64| (20.0 * x).sin() / (0.01 + x * x),
            0.0,
            1.0,
            tol,
            40,
            Rule::Simpson,
        )
        .unwrap();
        // reference by fine fixed Simpson
        let m = 2_000_000usize;
        let h = 1.0 / m as f64;
        let f = |x: f64| (20.0 * x).sin() / (0.01 + x * x);
        let mut acc = 0.0;
        for i in 0..m {
            let a0 = i as f64 * h;
            acc += (f(a0) + 4.0 * f(a0 + 0.5 * h) + f(a0 + h)) * h / 6.0;
        }
        println!(
            "integration tol={tol:.0e} err={:.3e} panels={}",
            (q.value - acc).abs(),
            q.panels
        );
    }
    println!("ALL PROBES DONE");
}
