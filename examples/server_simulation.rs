//! The IC server scenario of §2.2, simulated: heterogeneous remote
//! clients pull tasks from a server that allocates by a schedule's
//! priorities. IC-optimal allocation vs the heuristics.
//!
//! ```text
//! cargo run --example server_simulation
//! ```

use ic_scheduling::families::dlt::dlt_prefix;
use ic_scheduling::sched::heuristics::{schedule_with, Policy};
use ic_scheduling::sim::{simulate, ClientProfile, SimConfig};

fn main() {
    // Workload: the 16-input DLT dag (95 tasks).
    let l = dlt_prefix(16);
    let ic = l.ic_schedule().expect("schedulable");
    println!(
        "workload: DLT L_16 — {} tasks, {} dependencies; 6 clients, stragglers enabled\n",
        l.dag.num_nodes(),
        l.dag.num_arcs()
    );

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "policy", "gridlock", "mean pool", "makespan", "idle", "util"
    );
    let seeds: Vec<u64> = (0..10).collect();
    let run = |name: &str, sched: &ic_scheduling::sched::Schedule| {
        let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0);
        for &seed in &seeds {
            let cfg = SimConfig {
                clients: ClientProfile {
                    num_clients: 6,
                    mean_service: 1.0,
                    jitter: 0.6,
                    straggler_prob: 0.1,
                    straggler_factor: 8.0,
                    failure_prob: 0.0,
                    comm_cost_per_arc: 0.0,
                    speed_factors: None,
                },
                seed,
                task_weights: None,
            };
            let r = simulate(&l.dag, sched, &cfg);
            acc.0 += r.gridlock_events as f64;
            acc.1 += r.mean_pool();
            acc.2 += r.makespan;
            acc.3 += r.idle_time;
            acc.4 += r.utilization;
        }
        let k = seeds.len() as f64;
        println!(
            "{:<12} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>8.3}",
            name,
            acc.0 / k,
            acc.1 / k,
            acc.2 / k,
            acc.3 / k,
            acc.4 / k
        );
    };
    run("IC-OPTIMAL", &ic);
    for p in Policy::all(77) {
        let s = schedule_with(&l.dag, &p);
        run(p.name(), &s);
    }
    println!(
        "\nA deeper ELIGIBLE pool (mean pool) means fewer gridlocked requests\n\
         and better client utilization; LIFO-style depth-first allocation\n\
         starves the pool. Averages over {} seeds.",
        seeds.len()
    );
}
