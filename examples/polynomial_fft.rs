//! §5.2 of the paper: convolution (polynomial multiplication) through
//! the butterfly-network FFT, scheduled IC-optimally.
//!
//! ```text
//! cargo run --example polynomial_fft
//! ```

use ic_scheduling::apps::poly::{convolve_naive, poly_multiply};
use ic_scheduling::families::butterfly::{butterfly, butterfly_schedule};
use ic_scheduling::sched::optimal::is_ic_optimal;

fn show(p: &[f64]) -> String {
    let terms: Vec<String> = p
        .iter()
        .enumerate()
        .filter(|(_, c)| c.abs() > 1e-9)
        .map(|(i, c)| match i {
            0 => format!("{c:.0}"),
            1 => format!("{c:.0}x"),
            _ => format!("{c:.0}x^{i}"),
        })
        .collect();
    terms.join(" + ")
}

fn main() {
    // (1 + 2x + 3x²) · (4 + 5x) = 4 + 13x + 22x² + 15x³.
    let a = vec![1.0, 2.0, 3.0];
    let b = vec![4.0, 5.0];
    let product = poly_multiply(&a, &b);
    println!("({}) · ({}) = {}", show(&a), show(&b), show(&product));
    let check = convolve_naive(&a, &b);
    let err = product
        .iter()
        .zip(&check)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("naive-convolution cross-check: max err {err:.2e}\n");

    // The dependency structure behind the FFT: the butterfly network.
    for d in 2..=4usize {
        let dag = butterfly(d);
        let sched = butterfly_schedule(d);
        let note = if d <= 2 {
            format!(
                "IC-optimal (exhaustively verified): {}",
                is_ic_optimal(&dag, &sched).expect("checkable")
            )
        } else {
            "IC-optimal by §5.1 (pairs consecutive; B ▷ B composition)".to_string()
        };
        println!(
            "B_{d}: {} nodes, {} arcs — paired-source schedule: {}",
            dag.num_nodes(),
            dag.num_arcs(),
            note
        );
    }
    println!(
        "\nEach FFT butterfly applies y0 = x0 + ωx1, y1 = x0 − ωx1 (eq. 5.2);\n\
         the dag schedule executes each block's two inputs consecutively —\n\
         the §5.1 characterization of butterfly IC-optimality."
    );

    // A bigger random product as a stress check.
    let big_a: Vec<f64> = (0..257)
        .map(|i| ((i * 37 + 11) % 19) as f64 - 9.0)
        .collect();
    let big_b: Vec<f64> = (0..123)
        .map(|i| ((i * 53 + 7) % 23) as f64 - 11.0)
        .collect();
    let fast = poly_multiply(&big_a, &big_b);
    let slow = convolve_naive(&big_a, &big_b);
    let err = fast
        .iter()
        .zip(&slow)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\ndegree-256 × degree-122 product: {} coefficients, max err vs naive {err:.2e}",
        fast.len()
    );
}
