//! §4 of the paper: wavefront computations over out-meshes — Pascal's
//! triangle as the canonical mesh recurrence, executed sequentially in
//! the IC-optimal diagonal schedule and in parallel through the
//! executor, plus the Fig. 7 coarsening economics.
//!
//! ```text
//! cargo run --example wavefront_pascal
//! ```

use ic_scheduling::apps::wavefront::{pascal_triangle, wavefront_parallel};
use ic_scheduling::families::mesh::{cluster_stats, coarsen_mesh, out_mesh};

fn main() {
    // Pascal's triangle through the mesh dag.
    let levels = 8;
    let cells = pascal_triangle(levels);
    println!("Pascal's triangle via the {levels}-diagonal out-mesh:");
    let mut k = 0usize;
    for diag in 0..levels {
        let row: Vec<String> = (0..=diag)
            .map(|_| {
                let s = cells[k].2.to_string();
                k += 1;
                s
            })
            .collect();
        println!("  {}", row.join(" "));
    }

    // The same recurrence in parallel (4 workers), checked.
    let combine = |_r: usize, _c: usize, up: Option<&u64>, left: Option<&u64>| {
        up.copied().unwrap_or(0) + left.copied().unwrap_or(0)
    };
    let (par, _) = wavefront_parallel(levels, 1u64, combine, 4);
    assert_eq!(par.len(), cells.len());
    assert!(par.iter().zip(&cells).all(|(v, (_, _, w))| v == w));
    println!("\nparallel execution (4 workers) matches: true");

    // Fig. 7: coarsening economics — compute grows ~b², communication ~b.
    let levels = 16;
    let fine = out_mesh(levels);
    println!(
        "\ncoarsening the {levels}-diagonal mesh ({} tasks):",
        fine.num_nodes()
    );
    println!(
        "  {:<4} {:<14} {:<12} {:<12} {:<8}",
        "b", "coarse tasks", "max compute", "max comms", "ratio"
    );
    for b in [1usize, 2, 4, 8] {
        let q = coarsen_mesh(levels, b);
        let stats = cluster_stats(&fine, &q);
        let gmax = stats.iter().map(|&(g, _)| g).max().unwrap();
        let xmax = stats.iter().map(|&(_, x)| x).max().unwrap();
        println!(
            "  {:<4} {:<14} {:<12} {:<12} {:<8.2}",
            b,
            q.dag.num_nodes(),
            gmax,
            xmax,
            gmax as f64 / xmax.max(1) as f64
        );
    }
    println!(
        "\nCompute per coarse task grows quadratically with the block side;\n\
         communication only linearly — the trade that makes wavefronts\n\
         Internet-computing friendly (§4)."
    );
}
