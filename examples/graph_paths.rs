//! §6.2.2 of the paper (Fig. 16): computing the paths in a 9-node graph
//! via parallel-prefix matrix powers and an accumulation in-tree.
//!
//! ```text
//! cargo run --example graph_paths
//! ```

use ic_scheduling::apps::graphpaths::{all_path_lengths, nine_node_example};
use ic_scheduling::apps::numeric::BoolMatrix;
use ic_scheduling::families::paths::graph_paths_dag;

fn main() {
    // The paper's 9-node showcase (a 3×3 grid here).
    let (a, m) = nine_node_example();
    println!("9-node grid graph; adjacency:");
    for i in 0..9 {
        let row: String = (0..9)
            .map(|j| if a.get(i, j) { '1' } else { '.' })
            .collect();
        println!("  {row}");
    }
    println!("\npath-length vectors v(i,j) = <β⁽¹⁾..β⁽⁸⁾> for selected pairs:");
    for (i, j) in [(0usize, 1usize), (0, 4), (0, 8), (4, 4)] {
        let bits: String = (1..=8)
            .map(|k| if m.has_path(i, j, k) { '1' } else { '0' })
            .collect();
        println!("  v({i},{j}) = {bits}");
    }

    // The intertask structure of Fig. 16.
    let dag = graph_paths_dag(8);
    let sched = dag.ic_schedule().expect("schedulable");
    println!(
        "\nFig. 16 dag: {} matrix-granular tasks ({} prefix + in-tree), \
         schedule covers {} tasks",
        dag.dag.num_nodes(),
        dag.generator.num_nodes(),
        sched.len()
    );

    // A second instance: a directed ring with chords.
    let n = 12;
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, (i + 1) % n));
        entries.push((i, (i + 5) % n));
    }
    let ring = BoolMatrix::from_entries(n, &entries);
    let paths = all_path_lengths(&ring, 8);
    println!("\n12-node ring-with-chords: which lengths reach node 6 from node 0?");
    let reach: Vec<usize> = (1..=8).filter(|&k| paths.has_path(0, 6, k)).collect();
    println!("  lengths {reach:?}");
}
