//! # `ic-scheduling` — umbrella crate
//!
//! A complete, executable reproduction of *Applying IC-Scheduling Theory
//! to Familiar Classes of Computations* (Cordasco, Malewicz, Rosenberg;
//! IPDPS 2007). Re-exports the workspace crates:
//!
//! * [`dag`] — the computation-dag substrate (representation, duality,
//!   sums, the composition operation `⇑`, quotients, down-set
//!   enumeration, DOT rendering);
//! * [`sched`] — the theory core (eligibility semantics, IC-optimality,
//!   the priority relation `▷`, Theorems 2.1/2.2/2.3, heuristic
//!   baselines, quality metrics);
//! * [`families`] — every dag family of the paper's Figures 1–17 and
//!   Table 1, with closed-form IC-optimal schedules and coarsening;
//! * [`apps`] — the applicative computations executed over their dags
//!   (adaptive quadrature, bitonic sorting, FFT/convolution, parallel
//!   prefix, DLT, graph paths, block matrix multiplication, wavefront
//!   DP);
//! * [`sim`] — the discrete-event IC server/client simulator;
//! * [`exec`] — a multithreaded local executor driven by schedule
//!   priorities;
//! * [`audit`] — the static verifier: structured `ICxxxx` diagnostics
//!   over dags, schedules, and the machine-checked paper-claims
//!   registry (`ic-prio audit --claims`);
//! * [`check`] — the deterministic model checker: exhaustive
//!   interleaving exploration of the `ic-net` lease protocol with
//!   `IC05xx` invariants and minimal counterexamples (`ic-prio
//!   check`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.

pub use ic_apps as apps;
pub use ic_audit as audit;
pub use ic_check as check;
pub use ic_dag as dag;
pub use ic_exec as exec;
pub use ic_families as families;
pub use ic_net as net;
pub use ic_sched as sched;
pub use ic_sim as sim;
