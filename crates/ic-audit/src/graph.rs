//! Structural passes over **raw** edge lists (IC0001–IC0003).
//!
//! These passes deliberately take a plain `(num_nodes, arcs)` pair
//! rather than a [`Dag`]: a `Dag` is acyclic and duplicate-free *by
//! construction* (the builder rejects cycles and dedups arcs), so the
//! defects these passes exist to catch can only be observed on input
//! that has not yet passed through the builder — e.g. an edge-list file
//! handed to `ic-prio audit --dag`.

use std::collections::{HashSet, VecDeque};

use ic_dag::Dag;

use crate::diag::{Diagnostic, CYCLE_DETECTED, DUPLICATE_ARC, UNREACHABLE_NODE};

/// Audit a raw edge list: duplicate arcs (IC0002), cycles including
/// self-loops (IC0001), and isolated nodes (IC0003, warning).
///
/// Arc endpoints must be `< num_nodes`; out-of-range endpoints panic
/// (they indicate a caller bug, not an input defect — callers intern
/// names to dense indices first).
pub fn audit_edges(num_nodes: usize, arcs: &[(usize, usize)]) -> Vec<Diagnostic> {
    for &(u, v) in arcs {
        assert!(
            u < num_nodes && v < num_nodes,
            "arc ({u}, {v}) out of range for {num_nodes} nodes"
        );
    }
    let mut diags = Vec::new();

    // IC0002: duplicate arcs. Report each duplicated pair once.
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(arcs.len());
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for &(u, v) in arcs {
        if !seen.insert((u, v)) && reported.insert((u, v)) {
            diags.push(Diagnostic::error(
                DUPLICATE_ARC,
                format!("arc {u} -> {v} is listed more than once"),
            ));
        }
    }

    // IC0001: self-loops are 1-cycles; report them directly, then run
    // Kahn's algorithm on the remaining simple arcs. Whatever cannot be
    // peeled lies on (or downstream of sources trapped in) a cycle; the
    // witness set is the unpeeled nodes.
    for &(u, v) in seen.iter() {
        if u == v {
            diags.push(Diagnostic::error(
                CYCLE_DETECTED,
                format!("node {u} depends on itself"),
            ));
        }
    }
    let simple: Vec<(usize, usize)> = seen.iter().copied().filter(|&(u, v)| u != v).collect();
    let mut indeg = vec![0usize; num_nodes];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for &(u, v) in &simple {
        indeg[v] += 1;
        children[u].push(v);
    }
    let mut queue: VecDeque<usize> = (0..num_nodes).filter(|&v| indeg[v] == 0).collect();
    let mut peeled = 0usize;
    while let Some(u) = queue.pop_front() {
        peeled += 1;
        for &v in &children[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if peeled < num_nodes {
        let mut stuck: Vec<usize> = (0..num_nodes).filter(|&v| indeg[v] > 0).collect();
        stuck.sort_unstable();
        let shown: Vec<String> = stuck.iter().take(8).map(|v| v.to_string()).collect();
        let suffix = if stuck.len() > 8 { ", \u{2026}" } else { "" };
        diags.push(Diagnostic::error(
            CYCLE_DETECTED,
            format!(
                "{} node(s) lie on or behind a dependency cycle: {{{}{}}}",
                stuck.len(),
                shown.join(", "),
                suffix
            ),
        ));
    }

    // IC0003: isolated nodes (no arc in either direction). A
    // single-node dag is legitimately arc-free; anything larger with an
    // isolated node almost certainly dropped an arc on the floor.
    if num_nodes > 1 {
        let mut touched = vec![false; num_nodes];
        for &(u, v) in arcs {
            touched[u] = true;
            touched[v] = true;
        }
        for v in (0..num_nodes).filter(|&v| !touched[v]) {
            diags.push(Diagnostic::warning(
                UNREACHABLE_NODE,
                format!("node {v} participates in no arc"),
            ));
        }
    }
    diags
}

/// Audit a built [`Dag`] by re-extracting its arcs. The builder already
/// guarantees acyclicity and dedup, so on a `Dag` this can only surface
/// IC0003 — it exists so every audit entry point runs the same pass
/// list.
pub fn audit_dag(dag: &Dag) -> Vec<Diagnostic> {
    let arcs: Vec<(usize, usize)> = dag.arcs().map(|(u, v)| (u.index(), v.index())).collect();
    audit_edges(dag.num_nodes(), &arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn clean_edge_list_is_clean() {
        assert!(audit_edges(3, &[(0, 1), (1, 2)]).is_empty());
    }

    #[test]
    fn duplicate_arc_flagged_once() {
        let diags = audit_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DUPLICATE_ARC);
    }

    #[test]
    fn cycle_flagged_with_witness() {
        let diags = audit_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, CYCLE_DETECTED);
        assert!(
            diags[0].message.contains("{0, 1, 2}"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let diags = audit_edges(2, &[(0, 0), (0, 1)]);
        assert!(diags.iter().any(|d| d.code == CYCLE_DETECTED));
    }

    #[test]
    fn isolated_node_is_a_warning() {
        let diags = audit_edges(3, &[(0, 1)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, UNREACHABLE_NODE);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("node 2"));
        // A lone node is fine.
        assert!(audit_edges(1, &[]).is_empty());
    }

    #[test]
    fn built_dags_are_structurally_clean() {
        let m = ic_families::mesh::out_mesh(4);
        assert!(audit_dag(&m).is_empty());
    }
}
