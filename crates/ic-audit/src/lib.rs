//! # `ic-audit` — static verifier for dags, schedules, and paper claims
//!
//! A multi-pass analyzer over the workspace's IC-scheduling artifacts,
//! emitting structured [`Diagnostic`]s with stable `ICxxxx` codes (see
//! [`diag::CODE_TABLE`] and the table in `DESIGN.md`):
//!
//! * **graph passes** ([`graph`]) run on *raw* edge lists, where
//!   cycles (IC0001), duplicate arcs (IC0002) and isolated nodes
//!   (IC0003) can still be observed — a built [`ic_dag::Dag`] has
//!   already rejected the first two;
//! * **order passes** ([`order`]) check a candidate execution order for
//!   topological validity (IC0101) and — separately, because "valid but
//!   dominated" is a state the paper itself exhibits in §7.2 — for
//!   envelope gaps against the exhaustively computed optimal
//!   eligibility envelope (IC0102);
//! * **trace passes** ([`trace`]) replay a recorded execution trace
//!   ([`ic_sim::trace`]) against the dag in its header: non-ELIGIBLE
//!   allocations (IC0401), completions without allocation (IC0402),
//!   pool-size divergence (IC0403), envelope departures (IC0404, a
//!   warning — certified exhaustively for small dags and symbolically,
//!   via [`ic_families::symbolic`], for large canonical family
//!   instances), and truncated traces (IC0405);
//! * **claim passes** ([`claims`]) walk the [`ic_families::claims`]
//!   registry and machine-check every registered paper claim:
//!   IC-optimality or its asserted absence, closed-form profiles,
//!   ▷-linear chains (IC0201), and Theorem 2.2 duality (IC0301).
//!
//! Instances up to [`order::EXHAUSTIVE_LIMIT`] nodes are certified by
//! sweeping the down-set lattice; larger instances get structural
//! certificates (exactly what their registration asserts). The
//! `ic-prio audit` subcommand of `ic-cli` is a thin front-end over
//! [`claims::run_all_claims`] and the graph/order passes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod diag;
pub mod graph;
pub mod order;
pub mod report;
pub mod trace;

pub use claims::{audit_claim, run_all_claims};
pub use diag::{Diagnostic, Severity};
pub use report::AuditReport;
pub use trace::audit_trace;
