//! Auditing the paper-claims registry (IC02xx, IC03xx, plus reuse of
//! the graph and order passes).
//!
//! [`audit_claim`] machine-checks one [`Claim`] from
//! [`ic_families::claims`]; [`run_all_claims`] walks the whole registry
//! and produces an [`AuditReport`](crate::report::AuditReport). Small
//! instances are certified *exhaustively* (down-set lattice sweep);
//! instances above [`EXHAUSTIVE_LIMIT`] nodes get structural checks
//! only — which is exactly what their `Guarantee::ValidOrder`
//! registration asserts.

use ic_dag::{dual, iso::are_isomorphic, Dag};
use ic_families::claims::{Claim, Guarantee};
use ic_sched::duality::dual_schedule;
use ic_sched::optimal::{admits_ic_optimal, is_ic_optimal};
use ic_sched::priority::has_priority;
use ic_sched::Schedule;

use crate::diag::{Diagnostic, DUALITY_MISMATCH, ENVELOPE_GAP, PRIORITY_CHAIN_BROKEN};
use crate::order::{audit_envelope, audit_order, EXHAUSTIVE_LIMIT};
use crate::report::{AuditReport, ClaimResult};

/// Machine-check one registered claim. Returns every diagnostic found
/// (empty means the claim holds as far as this build can check it).
pub fn audit_claim(claim: &Claim) -> Vec<Diagnostic> {
    let dag = &claim.dag;
    let schedule = &claim.schedule;
    let mut diags = crate::graph::audit_dag(dag);

    // Order validity gates everything downstream: a non-order has no
    // meaningful profile.
    let order_diags = audit_order(dag, schedule.order());
    let order_ok = order_diags.is_empty();
    diags.extend(order_diags);

    if order_ok {
        match claim.guarantee {
            Guarantee::IcOptimal => {
                if let Some(gap) = audit_envelope(dag, schedule.order()) {
                    diags.extend(gap);
                }
            }
            Guarantee::NoIcOptimal => {
                if dag.num_nodes() <= EXHAUSTIVE_LIMIT
                    && admits_ic_optimal(dag).expect("n <= 22 < 64")
                {
                    diags.push(Diagnostic::error(
                        ENVELOPE_GAP,
                        "claim asserts no IC-optimal schedule exists, but the lattice \
                         search found one"
                            .to_string(),
                    ));
                }
            }
            Guarantee::ValidOrder => {} // order validity was the whole claim
        }

        if let Some(expected) = &claim.expected_nonsink_profile {
            let actual = schedule.nonsink_profile(dag);
            if &actual != expected {
                diags.push(Diagnostic::error(
                    ENVELOPE_GAP,
                    format!(
                        "nonsink profile {actual:?} disagrees with the closed-form \
                         profile {expected:?} asserted by the paper"
                    ),
                ));
            }
        }
    }

    diags.extend(audit_priority_chain(&claim.priority_chain));
    if claim.check_duality {
        diags.extend(audit_duality(dag, schedule));
    }
    diags
}

/// Check a claimed ▷-linear chain (IC0201): every adjacent pair must
/// satisfy `G_i ▷ G_{i+1}` via the exhaustive nonsink-profile test.
pub fn audit_priority_chain(chain: &[(Dag, Schedule)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, w) in chain.windows(2).enumerate() {
        let (g1, s1) = &w[0];
        let (g2, s2) = &w[1];
        if !has_priority(g1, s1, g2, s2) {
            diags.push(Diagnostic::error(
                PRIORITY_CHAIN_BROKEN,
                format!(
                    "chain stage {i} ({} nodes) does not have \u{25b7}-priority over \
                     stage {} ({} nodes)",
                    g1.num_nodes(),
                    i + 1,
                    g2.num_nodes()
                ),
            ));
        }
    }
    diags
}

/// Check the Theorem 2.2 duality properties on an instance (IC0301):
/// `dual(dual(G))` must be isomorphic to `G`, and the reversed-packet
/// dual of an IC-optimal schedule must be IC-optimal on `dual(G)`.
pub fn audit_duality(dag: &Dag, schedule: &Schedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dd = dual(&dual(dag));
    if !are_isomorphic(&dd, dag) {
        diags.push(Diagnostic::error(
            DUALITY_MISMATCH,
            "dual(dual(G)) is not isomorphic to G".to_string(),
        ));
    }
    if dag.num_nodes() <= EXHAUSTIVE_LIMIT {
        let gd = dual(dag);
        match dual_schedule(dag, schedule) {
            Ok(sd) => {
                if !is_ic_optimal(&gd, &sd).expect("n <= 22 < 64") {
                    diags.push(Diagnostic::error(
                        DUALITY_MISMATCH,
                        "the reversed-packet schedule is not IC-optimal on dual(G), \
                         contradicting Theorem 2.2"
                            .to_string(),
                    ));
                }
            }
            Err(e) => {
                diags.push(Diagnostic::error(
                    DUALITY_MISMATCH,
                    format!("packet reversal failed: {e:?}"),
                ));
            }
        }
    }
    diags
}

/// Audit every claim in the `ic-families` registry.
pub fn run_all_claims() -> AuditReport {
    let mut results = Vec::new();
    for claim in ic_families::claims::all() {
        let diagnostics = audit_claim(&claim);
        results.push(ClaimResult {
            id: claim.id,
            source: claim.source,
            title: claim.title,
            nodes: claim.dag.num_nodes(),
            exhaustive: claim.dag.num_nodes() <= EXHAUSTIVE_LIMIT,
            diagnostics,
        });
    }
    AuditReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_families::primitives::{ic_schedule, lambda, n_dag, vee};

    #[test]
    fn the_whole_registry_is_clean() {
        let report = run_all_claims();
        assert!(report.results.len() >= 12);
        for r in &report.results {
            assert!(
                r.diagnostics.is_empty(),
                "claim {} failed: {:?}",
                r.id,
                r.diagnostics
            );
        }
        assert!(report.is_clean());
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn broken_chain_is_ic0201() {
        // Λ ▷ V is false (V ▷ Λ is the true direction).
        let l = lambda();
        let v = vee();
        let chain = vec![(l.clone(), ic_schedule(&l)), (v.clone(), ic_schedule(&v))];
        let diags = audit_priority_chain(&chain);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, PRIORITY_CHAIN_BROKEN);
        assert!(diags[0].message.contains("stage 0"));
    }

    #[test]
    fn duality_holds_on_primitives() {
        for g in [vee(), lambda(), n_dag(3)] {
            let s = ic_schedule(&g);
            assert!(audit_duality(&g, &s).is_empty());
        }
    }
}
