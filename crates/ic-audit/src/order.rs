//! Execution-order passes (IC0101, IC0102).
//!
//! [`audit_order`] checks a raw candidate order for *validity* — is it
//! a topological permutation of the dag? [`audit_envelope`] checks a
//! valid order for *IC-optimality* — does its eligibility profile stay
//! on the optimal envelope? They are separate passes because a schedule
//! can be deliberately sub-optimal but valid (the paper's §7.2 product
//! order for matrix multiplication is exactly that), and an auditor
//! must be able to say "valid but dominated" without crying wolf.

use ic_dag::{Dag, NodeId};
use ic_sched::optimal::optimal_envelope;
use ic_sched::Schedule;

use crate::diag::{Diagnostic, ENVELOPE_GAP, NOT_A_TOPOLOGICAL_ORDER};

/// Largest dag (in nodes) on which we run exhaustive envelope
/// certification. Matches `ic_cli::commands::EXACT_LIMIT`: the down-set
/// lattice sweep is exponential in the dag's width, and the paper's
/// building-block instances all fit comfortably below this.
pub const EXHAUSTIVE_LIMIT: usize = 22;

/// Audit a raw execution order against `dag` (IC0101): every node
/// exactly once, dependencies before dependents. Returns all coverage
/// defects and the first precedence violation.
pub fn audit_order(dag: &Dag, order: &[NodeId]) -> Vec<Diagnostic> {
    let n = dag.num_nodes();
    let mut diags = Vec::new();
    if order.len() != n {
        diags.push(Diagnostic::error(
            NOT_A_TOPOLOGICAL_ORDER,
            format!(
                "order has {} step(s) but the dag has {} node(s)",
                order.len(),
                n
            ),
        ));
    }
    let mut pos: Vec<Option<usize>> = vec![None; n];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= n {
            diags.push(Diagnostic::error(
                NOT_A_TOPOLOGICAL_ORDER,
                format!("step {i} executes node {} of a {n}-node dag", v.index()),
            ));
            continue;
        }
        if let Some(prev) = pos[v.index()] {
            diags.push(Diagnostic::error(
                NOT_A_TOPOLOGICAL_ORDER,
                format!("node {} executed twice (steps {prev} and {i})", v.index()),
            ));
        } else {
            pos[v.index()] = Some(i);
        }
    }
    for (v, p) in pos.iter().enumerate() {
        if p.is_none() {
            diags.push(Diagnostic::error(
                NOT_A_TOPOLOGICAL_ORDER,
                format!("node {v} never executes"),
            ));
        }
    }
    if diags.is_empty() {
        for (u, v) in dag.arcs() {
            let (pu, pv) = (pos[u.index()].unwrap(), pos[v.index()].unwrap());
            if pv < pu {
                diags.push(Diagnostic::error(
                    NOT_A_TOPOLOGICAL_ORDER,
                    format!(
                        "node {} (step {pv}) executes before its dependency {} (step {pu})",
                        v.index(),
                        u.index()
                    ),
                ));
                break;
            }
        }
    }
    diags
}

/// Audit a *valid* order for IC-optimality (IC0102): compare its
/// eligibility profile to the optimal envelope and report the first
/// step where it falls below. Call only after [`audit_order`] came back
/// clean. Dags above [`EXHAUSTIVE_LIMIT`] nodes are skipped (returns
/// `None`); small dags return `Some(diags)`.
pub fn audit_envelope(dag: &Dag, order: &[NodeId]) -> Option<Vec<Diagnostic>> {
    if dag.num_nodes() > EXHAUSTIVE_LIMIT {
        return None;
    }
    let envelope = optimal_envelope(dag).expect("n <= 22 < 64");
    let profile = Schedule::new_unchecked(order.to_vec()).profile(dag);
    let mut diags = Vec::new();
    if let Some(t) = (0..envelope.len()).find(|&t| profile[t] < envelope[t]) {
        diags.push(Diagnostic::error(
            ENVELOPE_GAP,
            format!(
                "after step {t} the profile has {} ELIGIBLE node(s) but the optimal envelope allows {}",
                profile[t], envelope[t]
            ),
        ));
    }
    Some(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_families::primitives::{ic_schedule, vee};

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn valid_order_passes_both() {
        let g = vee();
        let s = ic_schedule(&g);
        assert!(audit_order(&g, s.order()).is_empty());
        assert!(audit_envelope(&g, s.order()).unwrap().is_empty());
    }

    #[test]
    fn coverage_defects_are_ic0101() {
        let g = vee();
        for bad in [ids(&[0, 1]), ids(&[0, 1, 1]), ids(&[0, 1, 2, 2])] {
            let diags = audit_order(&g, &bad);
            assert!(!diags.is_empty());
            assert!(diags.iter().all(|d| d.code == NOT_A_TOPOLOGICAL_ORDER));
        }
    }

    #[test]
    fn precedence_violation_is_ic0101() {
        let g = vee(); // 0 -> 1, 0 -> 2
        let diags = audit_order(&g, &ids(&[1, 0, 2]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, NOT_A_TOPOLOGICAL_ORDER);
        assert!(diags[0].message.contains("before its dependency"));
    }

    #[test]
    fn suboptimal_order_is_ic0102() {
        // Two disjoint Vees under independent sources: executing a sink
        // of the first Vee before the second source dents the envelope.
        let g = ic_dag::builder::from_arcs(6, &[(0, 2), (0, 3), (1, 4), (1, 5)]).unwrap();
        let good = ids(&[0, 1, 2, 3, 4, 5]);
        assert!(audit_order(&g, &good).is_empty());
        assert!(audit_envelope(&g, &good).unwrap().is_empty());
        let sub = ids(&[0, 2, 1, 3, 4, 5]); // valid, but wastes step 2
        assert!(audit_order(&g, &sub).is_empty());
        let diags = audit_envelope(&g, &sub).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, ENVELOPE_GAP);
        assert!(
            diags[0].message.contains("after step 2"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn big_dags_skip_exhaustive_certification() {
        let g = ic_families::mesh::out_mesh(10); // 55 nodes
        let s = ic_families::mesh::out_mesh_schedule(&g);
        assert!(audit_order(&g, s.order()).is_empty());
        assert!(audit_envelope(&g, s.order()).is_none());
    }
}
