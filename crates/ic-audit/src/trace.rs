//! Trace-replay passes (IC0401–IC0413).
//!
//! [`audit_trace`] replays a recorded execution trace (see
//! [`ic_sim::trace`]) against the dag embedded in its header and checks
//! the server invariants the paper's model assumes:
//!
//! * every allocation hands out a task that is ELIGIBLE *at that point
//!   of the replay* (IC0401);
//! * every completion was preceded by an allocation, once (IC0402);
//! * recorded ELIGIBLE-pool sizes match the replayed pool (IC0403);
//! * the realized execution order stays on the optimal eligibility
//!   envelope (IC0404, a warning) — certified exhaustively for dags up
//!   to [`EXHAUSTIVE_LIMIT`] nodes, and *symbolically* for larger dags
//!   that [`ic_families::symbolic::certify`] recognizes as canonical
//!   family instances with closed-form IC-optimal schedules;
//! * the trace covers the whole computation (IC0405);
//! * the v3 lease-lifecycle events are coherent: a `resume` restores a
//!   lease its client actually holds (IC0410), a speculative duplicate
//!   lease shadows a task genuinely in flight (IC0411) and only at the
//!   drain barrier (IC0413, a warning), and a `revoke` cancels only
//!   stale duplicates of a completed task (IC0412).
//!
//! The replay tracks, per task, the *set* of clients holding a lease —
//! plural since v3's speculative duplicates — so the pool accounting
//! stays exact under work stealing: a speculative lease never shrinks
//! the pool (its task already left on first allocation), a failure of
//! one holder returns the task only when it was the last, and a
//! completion closes every remaining duplicate via explicit revokes.
//!
//! The replay is best-effort after a finding: a flagged allocation is
//! still applied so one defect does not cascade into dozens, but pool
//! comparison stops at the first divergence (the reconstructed pool is
//! no longer trustworthy).

use ic_dag::Dag;
use ic_sched::optimal::optimal_envelope;
use ic_sched::Schedule;
use ic_sim::trace::{Trace, TraceEvent};

use crate::diag::{
    Diagnostic, Severity, COMPLETION_BEFORE_ALLOCATION, ENVELOPE_DEPARTURE,
    NON_ELIGIBLE_ALLOCATION, POOL_SIZE_MISMATCH, RESUME_WITHOUT_LEASE, REVOKE_WITHOUT_COMPLETION,
    SPECULATION_BEFORE_BARRIER, SPECULATION_WITHOUT_LEASE, TRACE_TRUNCATED,
};
use crate::graph::audit_edges;
use crate::order::EXHAUSTIVE_LIMIT;

/// Replay `trace` against its own dag and report every violated server
/// invariant. Structural defects in the embedded arc list (IC00xx) are
/// reported first and stop the replay; IC0003 orphan warnings are kept
/// but do not.
pub fn audit_trace(trace: &Trace) -> Vec<Diagnostic> {
    let n = trace.header.nodes;
    let arcs: Vec<(usize, usize)> = trace
        .header
        .arcs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let mut diags = audit_edges(n, &arcs);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return diags;
    }
    let dag = match trace.dag() {
        Ok(d) => d,
        Err(e) => {
            diags.push(Diagnostic::error(
                NON_ELIGIBLE_ALLOCATION,
                format!("the trace header does not describe a dag: {e}"),
            ));
            return diags;
        }
    };
    diags.extend(replay(&dag, trace));
    diags
}

fn replay(dag: &Dag, trace: &Trace) -> Vec<Diagnostic> {
    let n = dag.num_nodes();
    let mut diags = Vec::new();
    // Unexecuted-parent counters: a task is ELIGIBLE once this hits 0.
    let mut missing: Vec<usize> = (0..n)
        .map(|v| dag.in_degree(ic_dag::NodeId::new(v)))
        .collect();
    // Per task: the clients currently holding a lease on it. More than
    // one only through v3 speculative duplicates; the first entry came
    // through a real allocation, so only it moved the pool.
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut completed = vec![false; n];
    // Replayed ELIGIBLE-pool size: eligible and not currently allocated.
    let mut pool = dag.num_sources();
    let mut pool_trusted = true;
    let mut completions = 0usize;

    // Pre-v3 emitters did not tag outcome events with lease-holding
    // clients, so a mismatched client releases *some* holder rather
    // than being flagged; v3 events (resume/spec/revoke) are always
    // client-exact and checked strictly.
    fn release(holders: &mut Vec<usize>, client: usize) {
        if let Some(i) = holders.iter().position(|&c| c == client) {
            holders.swap_remove(i);
        } else {
            holders.pop();
        }
    }

    let check_pool = |pool_trusted: &mut bool,
                      diags: &mut Vec<Diagnostic>,
                      step: u64,
                      recorded: Option<usize>,
                      replayed: usize| {
        if let Some(rec) = recorded {
            if *pool_trusted && rec != replayed {
                diags.push(Diagnostic::error(
                    POOL_SIZE_MISMATCH,
                    format!(
                        "step {step} records an ELIGIBLE pool of {rec} but replay \
                         reconstructs {replayed}"
                    ),
                ));
                *pool_trusted = false;
            }
        }
    };

    for ev in &trace.events {
        match *ev {
            TraceEvent::Allocated {
                step,
                client,
                task,
                pool: rec,
                ..
            } => {
                let t = task.index();
                if t >= n {
                    diags.push(Diagnostic::error(
                        NON_ELIGIBLE_ALLOCATION,
                        format!(
                            "step {step}: client {client} is allocated node {t} of a {n}-node dag"
                        ),
                    ));
                    pool_trusted = false;
                    continue;
                }
                if completed[t] || !holders[t].is_empty() {
                    let why = if completed[t] {
                        "already completed"
                    } else {
                        "already allocated"
                    };
                    diags.push(Diagnostic::error(
                        NON_ELIGIBLE_ALLOCATION,
                        format!(
                            "step {step}: task {t} is allocated to client {client} while {why}"
                        ),
                    ));
                    pool_trusted = false;
                } else if missing[t] > 0 {
                    let parent = dag
                        .parents(task)
                        .iter()
                        .find(|&&p| !completed[p.index()])
                        .map(|p| p.index())
                        .unwrap_or(t);
                    diags.push(Diagnostic::error(
                        NON_ELIGIBLE_ALLOCATION,
                        format!(
                            "step {step}: task {t} is allocated to client {client} before its \
                             parent {parent} completed"
                        ),
                    ));
                    pool_trusted = false;
                    holders[t].push(client); // best-effort: keep replaying
                } else {
                    holders[t].push(client);
                    pool -= 1;
                    check_pool(&mut pool_trusted, &mut diags, step, rec, pool);
                }
            }
            TraceEvent::Completed {
                step,
                client,
                task,
                pool: rec,
                ..
            } => {
                let t = task.index();
                if t >= n || holders[t].is_empty() || completed[t] {
                    let why = if t >= n {
                        "an out-of-range node id"
                    } else if completed[t] {
                        "already completed"
                    } else {
                        "never allocated"
                    };
                    diags.push(Diagnostic::error(
                        COMPLETION_BEFORE_ALLOCATION,
                        format!("step {step}: client {client} completes task {t}, which is {why}"),
                    ));
                    pool_trusted = false;
                    continue;
                }
                release(&mut holders[t], client);
                completed[t] = true;
                completions += 1;
                for c in dag.children(task) {
                    missing[c.index()] -= 1;
                    if missing[c.index()] == 0 {
                        pool += 1;
                    }
                }
                // Remaining holders are stale duplicates: the emitter
                // must close each with an explicit `revoke` event.
                check_pool(&mut pool_trusted, &mut diags, step, rec, pool);
            }
            TraceEvent::Failed {
                step,
                client,
                task,
                pool: rec,
                ..
            } => {
                let t = task.index();
                if t >= n || holders[t].is_empty() || completed[t] {
                    diags.push(Diagnostic::error(
                        COMPLETION_BEFORE_ALLOCATION,
                        format!(
                            "step {step}: client {client} fails task {t}, which was not \
                             outstanding"
                        ),
                    ));
                    pool_trusted = false;
                    continue;
                }
                release(&mut holders[t], client);
                // The task returns to the ELIGIBLE pool only when its
                // last lease fell; a surviving duplicate keeps it in
                // flight.
                if holders[t].is_empty() {
                    pool += 1;
                }
                check_pool(&mut pool_trusted, &mut diags, step, rec, pool);
            }
            TraceEvent::Resumed {
                step, client, task, ..
            } => {
                let t = task.index();
                if t >= n || completed[t] || !holders[t].contains(&client) {
                    diags.push(Diagnostic::error(
                        RESUME_WITHOUT_LEASE,
                        format!(
                            "step {step}: client {client} resumes a lease on task {t} it does \
                             not hold"
                        ),
                    ));
                }
                // A legal resume changes nothing: the allocation is
                // still open, the pool untouched.
            }
            TraceEvent::Speculated {
                step,
                client,
                task,
                pool: rec,
                ..
            } => {
                let t = task.index();
                if t >= n || completed[t] || holders[t].is_empty() {
                    let why = if t >= n {
                        "an out-of-range node id"
                    } else if completed[t] {
                        "already completed"
                    } else {
                        "not in flight"
                    };
                    diags.push(Diagnostic::error(
                        SPECULATION_WITHOUT_LEASE,
                        format!(
                            "step {step}: client {client} gets a speculative lease on task {t}, \
                             which is {why}"
                        ),
                    ));
                    pool_trusted = false;
                    continue;
                }
                if holders[t].contains(&client) {
                    diags.push(Diagnostic::error(
                        SPECULATION_WITHOUT_LEASE,
                        format!(
                            "step {step}: client {client} speculates on task {t}, which it \
                             already holds"
                        ),
                    ));
                    continue;
                }
                if pool_trusted && pool > 0 {
                    diags.push(Diagnostic::warning(
                        SPECULATION_BEFORE_BARRIER,
                        format!(
                            "step {step}: task {t} is speculated to client {client} while \
                             {pool} unallocated ELIGIBLE task(s) remain"
                        ),
                    ));
                }
                // A duplicate lease: the task already left the pool on
                // first allocation, so the pool does not move.
                holders[t].push(client);
                check_pool(&mut pool_trusted, &mut diags, step, rec, pool);
            }
            TraceEvent::Revoked {
                step, client, task, ..
            } => {
                let t = task.index();
                if t >= n || !completed[t] || !holders[t].contains(&client) {
                    let why = if t >= n {
                        "an out-of-range node id"
                    } else if !completed[t] {
                        "not completed — only stale duplicates may be revoked"
                    } else {
                        "not leased to that client"
                    };
                    diags.push(Diagnostic::error(
                        REVOKE_WITHOUT_COMPLETION,
                        format!("step {step}: client {client}'s lease on task {t} is revoked, but the task is {why}"),
                    ));
                    continue;
                }
                release(&mut holders[t], client);
            }
            TraceEvent::Idle { .. } => {}
        }
    }

    if completions < n {
        diags.push(Diagnostic::error(
            TRACE_TRUNCATED,
            format!("the trace completes {completions} of {n} task(s)"),
        ));
    }

    if diags.iter().all(|d| d.severity != Severity::Error) {
        diags.extend(audit_trace_envelope(dag, trace));
    }
    diags
}

/// IC0404: compare the eligibility profile of the realized completion
/// order against the optimal envelope. Exhaustive up to
/// [`EXHAUSTIVE_LIMIT`] nodes; symbolic (closed-form family envelope)
/// beyond it; silently skipped for large unrecognized dags.
fn audit_trace_envelope(dag: &Dag, trace: &Trace) -> Vec<Diagnostic> {
    let order = trace.completion_order();
    let (envelope, authority) = if dag.num_nodes() <= EXHAUSTIVE_LIMIT {
        let env = optimal_envelope(dag).expect("n <= 22 < 64");
        (env, "exhaustive".to_string())
    } else {
        match ic_families::symbolic::certify(dag) {
            Some(cert) => {
                let label = format!("closed-form {} envelope, {}", cert.family, cert.source);
                (cert.envelope, label)
            }
            None => return Vec::new(),
        }
    };
    let profile = Schedule::new_unchecked(order).profile(dag);
    let mut diags = Vec::new();
    if let Some(t) = (0..envelope.len()).find(|&t| profile[t] < envelope[t]) {
        diags.push(Diagnostic::warning(
            ENVELOPE_DEPARTURE,
            format!(
                "after completion {t} the run left {} task(s) ELIGIBLE but the optimal \
                 envelope ({authority}) allows {}",
                profile[t], envelope[t]
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::NodeId;
    use ic_sched::heuristics::Policy;
    use ic_sim::trace::MemorySink;
    use ic_sim::{simulate_traced, ClientProfile, SimConfig};

    fn clean_trace(dag: &Dag, clients: usize, seed: u64) -> Trace {
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: clients,
                ..ClientProfile::default()
            },
            seed,
            ..SimConfig::default()
        };
        let mut sink = MemorySink::new();
        simulate_traced(dag, &Policy::Fifo, &cfg, &mut sink);
        sink.into_trace().expect("header recorded")
    }

    fn vee() -> Dag {
        ic_dag::builder::from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    #[test]
    fn clean_simulator_trace_audits_clean() {
        // Multi-client stochastic runs may realize sub-envelope orders
        // (IC0404 is a warning for exactly this reason) but must never
        // violate a replay invariant.
        let g = ic_families::mesh::out_mesh(5);
        let trace = clean_trace(&g, 3, 7);
        let diags = audit_trace(&trace);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        // A single client replaying the IC-optimal schedule realizes
        // the envelope exactly: fully clean.
        let s = ic_families::mesh::out_mesh_schedule(&g);
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: 1,
                ..ClientProfile::default()
            },
            ..SimConfig::default()
        };
        let mut sink = MemorySink::new();
        simulate_traced(&g, &s, &cfg, &mut sink);
        let diags = audit_trace(&sink.into_trace().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_eligible_allocation_is_ic0401() {
        let g = vee();
        let mut trace = clean_trace(&g, 1, 1);
        // Retarget the first allocation at a non-source.
        if let TraceEvent::Allocated { task, .. } = &mut trace.events[0] {
            *task = NodeId::new(1);
        } else {
            panic!("first event is an allocation");
        }
        let diags = audit_trace(&trace);
        assert!(diags.iter().any(|d| d.code == NON_ELIGIBLE_ALLOCATION));
    }

    #[test]
    fn completion_before_allocation_is_ic0402() {
        let g = vee();
        let mut trace = clean_trace(&g, 1, 1);
        // Drop the first allocation; its completion now dangles.
        trace.events.remove(0);
        let diags = audit_trace(&trace);
        assert!(diags.iter().any(|d| d.code == COMPLETION_BEFORE_ALLOCATION));
    }

    #[test]
    fn pool_mismatch_is_ic0403_and_reported_once() {
        let g = ic_families::mesh::out_mesh(4);
        let mut trace = clean_trace(&g, 2, 3);
        for ev in &mut trace.events {
            if let TraceEvent::Completed { pool, .. } = ev {
                *pool = pool.map(|p| p + 1);
            }
        }
        let diags = audit_trace(&trace);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == POOL_SIZE_MISMATCH)
            .collect();
        assert_eq!(hits.len(), 1, "pool checking stops after divergence");
    }

    #[test]
    fn truncated_trace_is_ic0405() {
        let g = vee();
        let mut trace = clean_trace(&g, 1, 1);
        // Cut the trace just before its last completion (trailing idle
        // requests may follow it).
        let last = trace
            .events
            .iter()
            .rposition(|ev| matches!(ev, TraceEvent::Completed { .. }))
            .unwrap();
        trace.events.truncate(last);
        let diags = audit_trace(&trace);
        assert!(diags.iter().any(|d| d.code == TRACE_TRUNCATED));
    }

    #[test]
    fn sub_envelope_order_is_ic0404_warning() {
        // Two disjoint Vees: completing a sink before the second source
        // dents the envelope. Single client, so completion order ==
        // allocation order == the (deliberately bad) replayed order.
        let g = ic_dag::builder::from_arcs(6, &[(0, 2), (0, 3), (1, 4), (1, 5)]).unwrap();
        let bad = ic_sim::ReplayPolicy::new([0usize, 2, 1, 3, 4, 5].map(NodeId::new).to_vec());
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: 1,
                ..ClientProfile::default()
            },
            ..SimConfig::default()
        };
        let mut sink = MemorySink::new();
        simulate_traced(&g, &bad, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        let diags = audit_trace(&trace);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, ENVELOPE_DEPARTURE);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn flaky_run_reallocations_are_tolerated_not_flagged() {
        // 40% task failure: the trace is full of Failed → re-Allocated
        // sequences, which are legal server behaviour, not violations.
        let g = ic_families::mesh::out_mesh(6);
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: 3,
                failure_prob: 0.4,
                ..ClientProfile::default()
            },
            seed: 11,
            ..SimConfig::default()
        };
        let mut sink = MemorySink::new();
        let r = simulate_traced(&g, &Policy::Fifo, &cfg, &mut sink);
        assert!(r.failures > 0, "seed 11 at 40% should produce failures");
        let trace = sink.into_trace().unwrap();
        let errors: Vec<_> = audit_trace(&trace)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn backoff_deferred_tasks_count_as_in_pool() {
        // A hand-built trace in the live server's accounting: a failed
        // task sits out a backoff window (still ELIGIBLE, still
        // unallocated — so still in the recorded pool) while other work
        // proceeds, then is re-allocated and completes.
        let g = ic_dag::builder::from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
        let header = ic_sim::TraceHeader::for_run(&g, 3, 1, "SCHEDULE");
        let ev = |i: u64| i as f64;
        let trace = Trace {
            header,
            events: vec![
                TraceEvent::Allocated {
                    step: 0,
                    time: ev(0),
                    client: 0,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Allocated {
                    step: 1,
                    time: ev(1),
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(0),
                },
                // Client 0's lease expires: task 0 is deferred but
                // remains in the recorded pool.
                TraceEvent::Failed {
                    step: 2,
                    time: ev(2),
                    client: 0,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Completed {
                    step: 3,
                    time: ev(3),
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(1),
                },
                // Backoff over: task 0 goes to a different worker.
                TraceEvent::Allocated {
                    step: 4,
                    time: ev(4),
                    client: 2,
                    task: NodeId::new(0),
                    pool: Some(0),
                },
                TraceEvent::Completed {
                    step: 5,
                    time: ev(5),
                    client: 2,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Allocated {
                    step: 6,
                    time: ev(6),
                    client: 0,
                    task: NodeId::new(2),
                    pool: Some(0),
                },
                TraceEvent::Completed {
                    step: 7,
                    time: ev(7),
                    client: 0,
                    task: NodeId::new(2),
                    pool: Some(0),
                },
            ],
        };
        let diags = audit_trace(&trace);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
    }

    /// A hand-built v3 steal trace on the chain 0→1: client 0 leases
    /// task 0 and stalls, client 1 gets a speculative duplicate at the
    /// drain barrier, client 0 reconnects and resumes, client 1 wins,
    /// client 0's duplicate is revoked.
    fn steal_trace() -> Trace {
        let g = ic_dag::builder::from_arcs(2, &[(0, 1)]).unwrap();
        let header = ic_sim::TraceHeader::for_run(&g, 2, 1, "FIFO");
        Trace {
            header,
            events: vec![
                TraceEvent::Allocated {
                    step: 0,
                    time: 0.0,
                    client: 0,
                    task: NodeId::new(0),
                    pool: Some(0),
                },
                TraceEvent::Speculated {
                    step: 1,
                    time: 1.0,
                    client: 1,
                    task: NodeId::new(0),
                    pool: Some(0),
                },
                TraceEvent::Resumed {
                    step: 2,
                    time: 1.5,
                    client: 0,
                    task: NodeId::new(0),
                },
                TraceEvent::Completed {
                    step: 3,
                    time: 2.0,
                    client: 1,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Revoked {
                    step: 4,
                    time: 2.1,
                    client: 0,
                    task: NodeId::new(0),
                },
                TraceEvent::Allocated {
                    step: 5,
                    time: 2.2,
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(0),
                },
                TraceEvent::Completed {
                    step: 6,
                    time: 3.0,
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(0),
                },
            ],
        }
    }

    #[test]
    fn clean_steal_trace_audits_clean() {
        let diags = audit_trace(&steal_trace());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn failed_duplicate_lease_keeps_the_task_in_flight() {
        // The speculating client fails, but the original holder is
        // still on the task: the pool must NOT regain it.
        let mut t = steal_trace();
        t.events[3] = TraceEvent::Failed {
            step: 3,
            time: 2.0,
            client: 1,
            task: NodeId::new(0),
            pool: Some(0),
        };
        // The original holder then completes; no revoke needed.
        t.events[4] = TraceEvent::Completed {
            step: 4,
            time: 2.1,
            client: 0,
            task: NodeId::new(0),
            pool: Some(1),
        };
        let diags = audit_trace(&t);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn resume_without_lease_is_ic0410() {
        let mut t = steal_trace();
        // Client 1 never held task 1's lease at that point.
        t.events[2] = TraceEvent::Resumed {
            step: 2,
            time: 1.5,
            client: 1,
            task: NodeId::new(1),
        };
        let diags = audit_trace(&t);
        assert!(
            diags
                .iter()
                .any(|d| d.code == RESUME_WITHOUT_LEASE && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn speculation_on_an_idle_task_is_ic0411() {
        let mut t = steal_trace();
        // Speculate before any allocation: nothing is in flight.
        t.events.remove(0);
        let diags = audit_trace(&t);
        assert!(
            diags.iter().any(|d| d.code == SPECULATION_WITHOUT_LEASE),
            "{diags:?}"
        );
    }

    #[test]
    fn self_speculation_is_ic0411() {
        let mut t = steal_trace();
        if let TraceEvent::Speculated { client, .. } = &mut t.events[1] {
            *client = 0; // the holder speculates on its own task
        } else {
            panic!("event 1 is the speculation");
        }
        // The revoke target also shifts to keep the tail consistent.
        let diags = audit_trace(&t);
        assert!(
            diags.iter().any(|d| d.code == SPECULATION_WITHOUT_LEASE),
            "{diags:?}"
        );
    }

    #[test]
    fn revoke_of_an_uncompleted_task_is_ic0412() {
        let mut t = steal_trace();
        // Revoke before the winner completes.
        t.events.swap(3, 4);
        let diags = audit_trace(&t);
        assert!(
            diags.iter().any(|d| d.code == REVOKE_WITHOUT_COMPLETION),
            "{diags:?}"
        );
    }

    #[test]
    fn speculation_before_the_barrier_is_ic0413_warning() {
        // Two independent sources: speculating while task 1 is still
        // unallocated in the pool draws the warning.
        let g = ic_dag::builder::from_arcs(2, &[]).unwrap();
        let header = ic_sim::TraceHeader::for_run(&g, 2, 1, "FIFO");
        let t = Trace {
            header,
            events: vec![
                TraceEvent::Allocated {
                    step: 0,
                    time: 0.0,
                    client: 0,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Speculated {
                    step: 1,
                    time: 0.5,
                    client: 1,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Completed {
                    step: 2,
                    time: 1.0,
                    client: 0,
                    task: NodeId::new(0),
                    pool: Some(1),
                },
                TraceEvent::Revoked {
                    step: 3,
                    time: 1.1,
                    client: 1,
                    task: NodeId::new(0),
                },
                TraceEvent::Allocated {
                    step: 4,
                    time: 1.2,
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(0),
                },
                TraceEvent::Completed {
                    step: 5,
                    time: 2.0,
                    client: 1,
                    task: NodeId::new(1),
                    pool: Some(0),
                },
            ],
        };
        let diags = audit_trace(&t);
        let warn: Vec<_> = diags
            .iter()
            .filter(|d| d.code == SPECULATION_BEFORE_BARRIER)
            .collect();
        assert_eq!(warn.len(), 1, "{diags:?}");
        assert_eq!(warn[0].severity, Severity::Warning);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_completion_after_a_win_is_still_ic0402() {
        // A server must reject the loser's late `done` without a trace
        // event; a trace that *does* record it is flagged.
        let mut t = steal_trace();
        t.events.insert(
            5,
            TraceEvent::Completed {
                step: 5,
                time: 2.15,
                client: 0,
                task: NodeId::new(0),
                pool: Some(1),
            },
        );
        let diags = audit_trace(&t);
        assert!(
            diags.iter().any(|d| d.code == COMPLETION_BEFORE_ALLOCATION),
            "{diags:?}"
        );
    }

    #[test]
    fn reallocation_tolerance_does_not_mask_double_allocation() {
        // Two Allocated events for the same task with no intervening
        // Failed is still IC0401: tolerance is for failures only.
        let g = vee();
        let mut trace = clean_trace(&g, 1, 1);
        let first = trace.events[0].clone();
        trace.events.insert(1, first);
        let diags = audit_trace(&trace);
        assert!(
            diags.iter().any(|d| d.code == NON_ELIGIBLE_ALLOCATION),
            "{diags:?}"
        );
    }

    #[test]
    fn large_family_dag_is_certified_symbolically() {
        // 55 nodes: past EXHAUSTIVE_LIMIT, but a canonical out-mesh.
        let g = ic_families::mesh::out_mesh(10);
        let s = ic_families::mesh::out_mesh_schedule(&g);
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: 1,
                ..ClientProfile::default()
            },
            ..SimConfig::default()
        };
        let mut sink = MemorySink::new();
        simulate_traced(&g, &s, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        // The IC-optimal schedule under one client realizes the
        // envelope exactly: clean.
        assert!(audit_trace(&trace).is_empty());

        // LIFO under one client departs from it — and the departure is
        // only detectable because the mesh is certified symbolically.
        let lifo = {
            let cfg = SimConfig {
                clients: ClientProfile {
                    num_clients: 1,
                    ..ClientProfile::default()
                },
                seed: 2,
                ..SimConfig::default()
            };
            let mut sink = MemorySink::new();
            simulate_traced(&g, &Policy::Lifo, &cfg, &mut sink);
            sink.into_trace().unwrap()
        };
        let diags = audit_trace(&lifo);
        assert!(
            diags.iter().any(|d| d.code == ENVELOPE_DEPARTURE),
            "{diags:?}"
        );
    }
}
