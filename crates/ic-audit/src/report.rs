//! Audit reports and their text / JSON renderings.
//!
//! JSON is emitted by hand (the workspace builds with zero external
//! dependencies); the escaping covers everything our messages can
//! contain, including the paper's `§`, `▷`, and subscript glyphs.

use std::fmt::Write as _;

use crate::diag::{code_name, Diagnostic, Severity};

/// The audit outcome for one registered claim.
#[derive(Debug)]
pub struct ClaimResult {
    /// Registry key, e.g. `"mesh/out-mesh-5"`.
    pub id: &'static str,
    /// Paper location, e.g. `"Figs. 5–7, §4"`.
    pub source: &'static str,
    /// Human statement of the claim.
    pub title: &'static str,
    /// Instance size in nodes.
    pub nodes: usize,
    /// Whether the instance was certified exhaustively (lattice sweep)
    /// or only structurally.
    pub exhaustive: bool,
    /// Findings; empty means the claim holds.
    pub diagnostics: Vec<Diagnostic>,
}

impl ClaimResult {
    /// Did this claim pass (no error-severity findings)?
    pub fn passed(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }
}

/// The outcome of auditing the whole claims registry.
#[derive(Debug)]
pub struct AuditReport {
    /// One entry per registered claim, in registry order.
    pub results: Vec<ClaimResult>,
}

impl AuditReport {
    /// No error-severity findings anywhere?
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(ClaimResult::passed)
    }

    /// Total number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.results
            .iter()
            .flat_map(|r| &r.diagnostics)
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Human-readable multi-line report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let status = if r.passed() { "ok" } else { "FAIL" };
            let mode = if r.exhaustive {
                "exhaustive"
            } else {
                "structural"
            };
            let _ = writeln!(
                out,
                "{status:<4} {:<28} {:>4} nodes  {mode:<10} {} \u{2014} {}",
                r.id, r.nodes, r.source, r.title
            );
            for d in &r.diagnostics {
                let _ = writeln!(out, "       {d}");
            }
        }
        let passed = self.results.iter().filter(|r| r.passed()).count();
        let _ = writeln!(
            out,
            "{passed}/{} claims hold, {} error(s)",
            self.results.len(),
            self.error_count()
        );
        out
    }

    /// Machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"claims\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {}, \"source\": {}, \"nodes\": {}, \"mode\": {}, \
                 \"passed\": {}, \"diagnostics\": [",
                json_string(r.id),
                json_string(r.source),
                r.nodes,
                json_string(if r.exhaustive {
                    "exhaustive"
                } else {
                    "structural"
                }),
                r.passed()
            );
            for (j, d) in r.diagnostics.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"code\": {}, \"name\": {}, \"severity\": {}, \"message\": {}}}",
                    if j > 0 { ", " } else { "" },
                    json_string(d.code),
                    json_string(code_name(d.code)),
                    json_string(&d.severity.to_string()),
                    json_string(&d.message)
                );
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "  ],\n  \"passed\": {},\n  \"errors\": {}\n}}\n",
            self.is_clean(),
            self.error_count()
        );
        out
    }
}

/// Render a list of standalone diagnostics (the `--dag` audit path) as
/// a JSON array.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"code\": {}, \"name\": {}, \"severity\": {}, \"message\": {}}}",
            if i > 0 { ", " } else { "" },
            json_string(d.code),
            json_string(code_name(d.code)),
            json_string(&d.severity.to_string()),
            json_string(&d.message)
        );
    }
    out.push(']');
    out
}

/// Escape a string as a JSON string literal (RFC 8259: quote, backslash
/// and controls escaped; everything else passes through as UTF-8).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::NOT_A_TOPOLOGICAL_ORDER;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{00a7}4 \u{25b7}"), "\"\u{00a7}4 \u{25b7}\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_renders_status_lines() {
        let report = AuditReport {
            results: vec![
                ClaimResult {
                    id: "x/good",
                    source: "Fig. 0",
                    title: "fine",
                    nodes: 3,
                    exhaustive: true,
                    diagnostics: vec![],
                },
                ClaimResult {
                    id: "x/bad",
                    source: "Fig. 0",
                    title: "broken",
                    nodes: 3,
                    exhaustive: true,
                    diagnostics: vec![Diagnostic::error(NOT_A_TOPOLOGICAL_ORDER, "boom")],
                },
            ],
        };
        assert!(!report.is_clean());
        assert_eq!(report.error_count(), 1);
        let text = report.render_text();
        assert!(text.contains("ok   x/good"));
        assert!(text.contains("FAIL x/bad"));
        assert!(text.contains("1/2 claims hold, 1 error(s)"));
        let json = report.render_json();
        assert!(json.contains("\"code\": \"IC0101\""));
        assert!(json.contains("\"passed\": false"));
    }
}
