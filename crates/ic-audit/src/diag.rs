//! Diagnostic types and the stable code table.
//!
//! Every pass reports findings as [`Diagnostic`] values with a stable
//! `ICxxxx` code, so downstream tooling (and the negative test suite)
//! can match on the *specific* defect rather than on message text.
//! Codes are grouped by pass family:
//!
//! | range  | pass family |
//! |--------|-------------|
//! | IC00xx | graph structure (raw edge lists) |
//! | IC01xx | execution orders and envelopes |
//! | IC02xx | ▷-priority chains |
//! | IC03xx | Theorem 2.2 duality |

use std::fmt;

/// How serious a finding is. `Error` diagnostics fail the audit (and
/// the `ic-prio audit` exit code); `Warning`s are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but not a claim violation.
    Warning,
    /// A violated invariant or paper claim.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A dag contains a dependency cycle (reported with a witness set).
pub const CYCLE_DETECTED: &str = "IC0001";
/// The same arc appears more than once in the edge list.
pub const DUPLICATE_ARC: &str = "IC0002";
/// A node participates in no arc at all — it cannot contribute to (or
/// draw from) the computation and is usually a construction bug.
pub const UNREACHABLE_NODE: &str = "IC0003";
/// An execution order is not a topological order of its dag (missing
/// nodes, duplicates, or a dependency executed after a dependent).
pub const NOT_A_TOPOLOGICAL_ORDER: &str = "IC0101";
/// The schedule's eligibility profile falls below the optimal envelope
/// (or an asserted closed-form profile / (non-)existence claim fails).
pub const ENVELOPE_GAP: &str = "IC0102";
/// A claimed ▷-linear chain has an adjacent pair without priority.
pub const PRIORITY_CHAIN_BROKEN: &str = "IC0201";
/// A Theorem 2.2 duality claim fails: `dual(dual(G)) ≇ G`, or the
/// reversed-packet schedule is not IC-optimal on the dual dag.
pub const DUALITY_MISMATCH: &str = "IC0301";

/// The full code table: `(code, name, one-line meaning)`. Kept in sync
/// with DESIGN.md §"Diagnostic codes" (the negative test suite pins
/// each row).
pub const CODE_TABLE: &[(&str, &str, &str)] = &[
    (
        CYCLE_DETECTED,
        "CycleDetected",
        "the arcs contain a dependency cycle",
    ),
    (
        DUPLICATE_ARC,
        "DuplicateArc",
        "an arc is listed more than once",
    ),
    (
        UNREACHABLE_NODE,
        "UnreachableNode",
        "a node participates in no arc",
    ),
    (
        NOT_A_TOPOLOGICAL_ORDER,
        "NotATopologicalOrder",
        "the order is not a topological order of the dag",
    ),
    (
        ENVELOPE_GAP,
        "EnvelopeGap",
        "the eligibility profile falls below the optimal envelope",
    ),
    (
        PRIORITY_CHAIN_BROKEN,
        "PriorityChainBroken",
        "an adjacent pair of a claimed \u{25b7}-chain lacks priority",
    ),
    (
        DUALITY_MISMATCH,
        "DualityMismatch",
        "a Theorem 2.2 duality property fails",
    ),
];

/// The human name of a diagnostic code (e.g. `"CycleDetected"`).
pub fn code_name(code: &str) -> &'static str {
    CODE_TABLE
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, name, _)| *name)
        .unwrap_or("Unknown")
}

/// One finding from an audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"IC0101"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Specific, instance-level description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]: {}",
            self.severity,
            self.code,
            code_name(self.code),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_is_complete_and_unique() {
        let codes: Vec<&str> = CODE_TABLE.iter().map(|(c, _, _)| *c).collect();
        assert_eq!(codes.len(), 7);
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
        for c in codes {
            assert_ne!(code_name(c), "Unknown");
        }
    }

    #[test]
    fn display_renders_code_and_name() {
        let d = Diagnostic::error(CYCLE_DETECTED, "a -> b -> a");
        assert_eq!(d.to_string(), "error[IC0001 CycleDetected]: a -> b -> a");
        let w = Diagnostic::warning(UNREACHABLE_NODE, "node 3");
        assert!(w.to_string().starts_with("warning[IC0003"));
    }
}
