//! Diagnostic types and the stable code table.
//!
//! Every pass reports findings as [`Diagnostic`] values with a stable
//! `ICxxxx` code, so downstream tooling (and the negative test suite)
//! can match on the *specific* defect rather than on message text.
//! Codes are grouped by pass family:
//!
//! | range  | pass family |
//! |--------|-------------|
//! | IC00xx | graph structure (raw edge lists) |
//! | IC01xx | execution orders and envelopes |
//! | IC02xx | ▷-priority chains |
//! | IC03xx | Theorem 2.2 duality |
//! | IC04xx | execution-trace replay |
//! | IC05xx | model-checked lease-protocol invariants (`ic-check`) |

use std::fmt;

/// How serious a finding is. `Error` diagnostics fail the audit (and
/// the `ic-prio audit` exit code); `Warning`s are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but not a claim violation.
    Warning,
    /// A violated invariant or paper claim.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A dag contains a dependency cycle (reported with a witness set).
pub const CYCLE_DETECTED: &str = "IC0001";
/// The same arc appears more than once in the edge list.
pub const DUPLICATE_ARC: &str = "IC0002";
/// A node participates in no arc at all — it cannot contribute to (or
/// draw from) the computation and is usually a construction bug.
pub const UNREACHABLE_NODE: &str = "IC0003";
/// An execution order is not a topological order of its dag (missing
/// nodes, duplicates, or a dependency executed after a dependent).
pub const NOT_A_TOPOLOGICAL_ORDER: &str = "IC0101";
/// The schedule's eligibility profile falls below the optimal envelope
/// (or an asserted closed-form profile / (non-)existence claim fails).
pub const ENVELOPE_GAP: &str = "IC0102";
/// A claimed ▷-linear chain has an adjacent pair without priority.
pub const PRIORITY_CHAIN_BROKEN: &str = "IC0201";
/// A Theorem 2.2 duality claim fails: `dual(dual(G)) ≇ G`, or the
/// reversed-packet schedule is not IC-optimal on the dual dag.
pub const DUALITY_MISMATCH: &str = "IC0301";
/// A trace allocates a task that is not in the ELIGIBLE pool at that
/// point of the replay (an unexecuted parent remains, the task is
/// already allocated, or the id is out of range).
pub const NON_ELIGIBLE_ALLOCATION: &str = "IC0401";
/// A trace completes (or fails) a task that was never allocated — or
/// completes the same task twice.
pub const COMPLETION_BEFORE_ALLOCATION: &str = "IC0402";
/// A recorded ELIGIBLE-pool size disagrees with the size reconstructed
/// by replaying the trace against its dag.
pub const POOL_SIZE_MISMATCH: &str = "IC0403";
/// The traced execution's eligibility profile falls below the optimal
/// envelope (exhaustive for small dags, closed-form for recognized
/// family instances). A warning: multi-client stochastic runs may
/// legitimately realize sub-optimal orders.
pub const ENVELOPE_DEPARTURE: &str = "IC0404";
/// The trace ends before every dag node has completed.
pub const TRACE_TRUNCATED: &str = "IC0405";
/// A `resume` event restores a lease the client does not hold: the
/// task is unallocated, completed, or held by someone else.
pub const RESUME_WITHOUT_LEASE: &str = "IC0410";
/// A `spec` event grants a speculative duplicate lease illegally: the
/// task is not in flight, is already completed, or the client already
/// holds a lease on it.
pub const SPECULATION_WITHOUT_LEASE: &str = "IC0411";
/// A `revoke` event cancels a lease that cannot be a stale duplicate:
/// the task is not completed, or the client holds no lease on it.
pub const REVOKE_WITHOUT_COMPLETION: &str = "IC0412";
/// A speculative lease was granted while unallocated ELIGIBLE tasks
/// remained — stealing should only happen at the drain barrier. A
/// warning: it wastes no correctness, only duplicated work.
pub const SPECULATION_BEFORE_BARRIER: &str = "IC0413";
/// Model checker: the lease machine allocated (leased) a task that is
/// not ELIGIBLE under the definition-level oracle — an unexecuted
/// parent remains, or the task is already executed. This is the
/// paper's core property; a violation breaks IC-optimality outright.
pub const MODEL_NON_ELIGIBLE_ALLOCATION: &str = "IC0501";
/// Model checker: a task completed twice — two `Completed` trace
/// events for the same node, or the executed count exceeds the node
/// count.
pub const MODEL_DUPLICATE_COMPLETION: &str = "IC0502";
/// Model checker: a task's lease multiplicity is illegal — more than
/// one primary (non-speculative) lease, more than one speculative
/// duplicate, or a duplicate pair on one worker.
pub const MODEL_LEASE_MULTIPLICITY: &str = "IC0503";
/// Model checker: a worker slot's registration epoch regressed, or a
/// stale-epoch `Sever` from a superseded connection disturbed a
/// resumed slot.
pub const MODEL_EPOCH_REGRESSION: &str = "IC0504";
/// Model checker: the machine's recorded pool size (pool + backoff
/// queue) disagrees with the oracle reconstruction (ELIGIBLE minus
/// leased tasks).
pub const MODEL_RECORDED_POOL_MISMATCH: &str = "IC0505";
/// Model checker: pool ∪ deferred ∪ leased ≠ the ELIGIBLE set — a
/// task leaked out of every queue (it could never be allocated again)
/// or appears in two places at once.
pub const MODEL_ELIGIBLE_PARTITION_VIOLATION: &str = "IC0506";
/// Model checker: the machine answered `Drain` (or claims completion)
/// while unexecuted tasks remain.
pub const MODEL_PREMATURE_DRAIN: &str = "IC0507";

/// The full code table: `(code, name, one-line meaning)`. Kept in sync
/// with DESIGN.md §"Diagnostic codes" (the negative test suite pins
/// each row).
pub const CODE_TABLE: &[(&str, &str, &str)] = &[
    (
        CYCLE_DETECTED,
        "CycleDetected",
        "the arcs contain a dependency cycle",
    ),
    (
        DUPLICATE_ARC,
        "DuplicateArc",
        "an arc is listed more than once",
    ),
    (
        UNREACHABLE_NODE,
        "UnreachableNode",
        "a node participates in no arc",
    ),
    (
        NOT_A_TOPOLOGICAL_ORDER,
        "NotATopologicalOrder",
        "the order is not a topological order of the dag",
    ),
    (
        ENVELOPE_GAP,
        "EnvelopeGap",
        "the eligibility profile falls below the optimal envelope",
    ),
    (
        PRIORITY_CHAIN_BROKEN,
        "PriorityChainBroken",
        "an adjacent pair of a claimed \u{25b7}-chain lacks priority",
    ),
    (
        DUALITY_MISMATCH,
        "DualityMismatch",
        "a Theorem 2.2 duality property fails",
    ),
    (
        NON_ELIGIBLE_ALLOCATION,
        "NonEligibleAllocation",
        "a trace allocates a task that is not ELIGIBLE",
    ),
    (
        COMPLETION_BEFORE_ALLOCATION,
        "CompletionBeforeAllocation",
        "a trace completes a task that was never allocated",
    ),
    (
        POOL_SIZE_MISMATCH,
        "PoolSizeMismatch",
        "a recorded ELIGIBLE-pool size disagrees with replay",
    ),
    (
        ENVELOPE_DEPARTURE,
        "EnvelopeDeparture",
        "the traced eligibility profile falls below the optimal envelope",
    ),
    (
        TRACE_TRUNCATED,
        "TraceTruncated",
        "the trace ends before the computation completes",
    ),
    (
        RESUME_WITHOUT_LEASE,
        "ResumeWithoutLease",
        "a trace resumes a lease the client does not hold",
    ),
    (
        SPECULATION_WITHOUT_LEASE,
        "SpeculationWithoutLease",
        "a speculative lease duplicates nothing in flight",
    ),
    (
        REVOKE_WITHOUT_COMPLETION,
        "RevokeWithoutCompletion",
        "a revoke cancels a lease that is not a stale duplicate",
    ),
    (
        SPECULATION_BEFORE_BARRIER,
        "SpeculationBeforeBarrier",
        "a speculative lease was granted before the drain barrier",
    ),
    (
        MODEL_NON_ELIGIBLE_ALLOCATION,
        "ModelNonEligibleAllocation",
        "the lease machine leased a task that is not ELIGIBLE",
    ),
    (
        MODEL_DUPLICATE_COMPLETION,
        "ModelDuplicateCompletion",
        "a task completed twice",
    ),
    (
        MODEL_LEASE_MULTIPLICITY,
        "ModelLeaseMultiplicity",
        "a task's lease multiplicity is illegal",
    ),
    (
        MODEL_EPOCH_REGRESSION,
        "ModelEpochRegression",
        "a slot epoch regressed or a stale sever disturbed a resumed slot",
    ),
    (
        MODEL_RECORDED_POOL_MISMATCH,
        "ModelRecordedPoolMismatch",
        "the recorded pool size disagrees with the oracle reconstruction",
    ),
    (
        MODEL_ELIGIBLE_PARTITION_VIOLATION,
        "ModelEligiblePartitionViolation",
        "pool, backoff queue, and leases do not partition the ELIGIBLE set",
    ),
    (
        MODEL_PREMATURE_DRAIN,
        "ModelPrematureDrain",
        "drain was answered while unexecuted tasks remain",
    ),
];

/// The human name of a diagnostic code (e.g. `"CycleDetected"`).
pub fn code_name(code: &str) -> &'static str {
    CODE_TABLE
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, name, _)| *name)
        .unwrap_or("Unknown")
}

/// One finding from an audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"IC0101"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Specific, instance-level description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

/// Escalate every diagnostic carrying `code` to [`Severity::Error`]
/// (the engine behind `ic-prio audit --deny <code-name>`). Returns how
/// many findings were escalated.
pub fn deny(diags: &mut [Diagnostic], code: &str) -> usize {
    let mut n = 0;
    for d in diags.iter_mut() {
        if d.code == code && d.severity != Severity::Error {
            d.severity = Severity::Error;
            n += 1;
        }
    }
    n
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]: {}",
            self.severity,
            self.code,
            code_name(self.code),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_is_complete_and_unique() {
        let codes: Vec<&str> = CODE_TABLE.iter().map(|(c, _, _)| *c).collect();
        assert_eq!(codes.len(), 23);
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
        for c in codes {
            assert_ne!(code_name(c), "Unknown");
        }
    }

    #[test]
    fn deny_escalates_only_matching_warnings() {
        let mut diags = vec![
            Diagnostic::warning(UNREACHABLE_NODE, "node 3"),
            Diagnostic::warning(ENVELOPE_DEPARTURE, "step 2"),
            Diagnostic::error(CYCLE_DETECTED, "a -> a"),
        ];
        assert_eq!(deny(&mut diags, UNREACHABLE_NODE), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[1].severity, Severity::Warning);
        // Already-error findings are not double counted.
        assert_eq!(deny(&mut diags, CYCLE_DETECTED), 0);
    }

    #[test]
    fn display_renders_code_and_name() {
        let d = Diagnostic::error(CYCLE_DETECTED, "a -> b -> a");
        assert_eq!(d.to_string(), "error[IC0001 CycleDetected]: a -> b -> a");
        let w = Diagnostic::warning(UNREACHABLE_NODE, "node 3");
        assert!(w.to_string().starts_with("warning[IC0003"));
    }
}
