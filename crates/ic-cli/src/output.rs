//! The uniform command envelope.
//!
//! Every data-producing `ic-prio` subcommand builds a [`CmdOutput`];
//! the binary renders it as plain text or — under `--json` — as one
//! stable envelope shared by `order`, `stats`, `check`, `sim`, and
//! every `audit` mode:
//!
//! ```json
//! {"ok": true, "command": "order", "data": {...}, "diagnostics": []}
//! ```
//!
//! Exit codes follow the envelope: `0` when `ok`, `1` when a command
//! ran but produced findings (`ok: false`), `2` for usage, file, and
//! parse errors (the command never ran).

use ic_audit::report::{diagnostics_json, json_string};
use ic_audit::{Diagnostic, Severity};

/// The outcome of one subcommand, renderable as text or JSON.
#[derive(Debug)]
pub struct CmdOutput {
    /// Subcommand name, e.g. `"order"` or `"audit"`.
    pub command: &'static str,
    /// Did the command succeed with no error-severity findings?
    pub ok: bool,
    /// Human-readable report (the non-`--json` rendering).
    pub text: String,
    /// Pre-rendered JSON value for the envelope's `"data"` field;
    /// `None` renders as `null`.
    pub data: Option<String>,
    /// Structured findings, rendered into the envelope and appended
    /// (as `Display` lines) to the text rendering.
    pub diagnostics: Vec<Diagnostic>,
}

impl CmdOutput {
    /// A finding-free success carrying only report text.
    pub fn success(command: &'static str, text: impl Into<String>) -> Self {
        CmdOutput {
            command,
            ok: true,
            text: text.into(),
            data: None,
            diagnostics: Vec::new(),
        }
    }

    /// Attach the envelope's `"data"` value (must already be JSON).
    pub fn with_data(mut self, data: impl Into<String>) -> Self {
        self.data = Some(data.into());
        self
    }

    /// Attach findings and recompute `ok` (error severity ⇒ failed).
    pub fn with_diagnostics(mut self, diags: Vec<Diagnostic>) -> Self {
        self.ok = self.ok && diags.iter().all(|d| d.severity != Severity::Error);
        self.diagnostics = diags;
        self
    }

    /// The process exit code this outcome maps to (`0` or `1`; code
    /// `2` is reserved for errors that prevent a command from running).
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.ok)
    }

    /// Render for the terminal: the report text, then one line per
    /// diagnostic.
    pub fn render_text(&self) -> String {
        let mut out = self.text.clone();
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Render the stable `--json` envelope (one line).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"ok\": {}, \"command\": {}, \"data\": {}, \"diagnostics\": {}}}\n",
            self.ok,
            json_string(self.command),
            self.data.as_deref().unwrap_or("null"),
            diagnostics_json(&self.diagnostics)
        )
    }

    /// Render according to the `--json` flag.
    pub fn render(&self, json: bool) -> String {
        if json {
            self.render_json()
        } else {
            self.render_text()
        }
    }
}

/// Build a JSON array of strings.
pub fn json_str_array<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> String {
    let mut out = String::from("[");
    for (i, s) in items.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(s.as_ref()));
    }
    out.push(']');
    out
}

/// Build a JSON array of numbers.
pub fn json_num_array<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> String {
    let mut out = String::from("[");
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_audit::diag::UNREACHABLE_NODE;

    #[test]
    fn envelope_shape_is_stable() {
        let out = CmdOutput::success("stats", "5 nodes\n").with_data("{\"nodes\": 5}");
        assert_eq!(out.exit_code(), 0);
        assert_eq!(
            out.render_json(),
            "{\"ok\": true, \"command\": \"stats\", \"data\": {\"nodes\": 5}, \
             \"diagnostics\": []}\n"
        );
        assert_eq!(out.render_text(), "5 nodes\n");
    }

    #[test]
    fn error_diagnostics_flip_ok_and_exit_code() {
        let out = CmdOutput::success("audit", "")
            .with_diagnostics(vec![Diagnostic::error("IC0001", "a -> a")]);
        assert!(!out.ok);
        assert_eq!(out.exit_code(), 1);
        assert!(out.render_json().starts_with("{\"ok\": false"));
        assert!(out.render_text().contains("IC0001"));
    }

    #[test]
    fn warnings_keep_ok_true() {
        let out = CmdOutput::success("audit", "")
            .with_diagnostics(vec![Diagnostic::warning(UNREACHABLE_NODE, "node 3")]);
        assert!(out.ok);
        assert_eq!(out.exit_code(), 0);
    }

    #[test]
    fn array_helpers() {
        assert_eq!(json_str_array(["a", "b\""]), "[\"a\", \"b\\\"\"]");
        assert_eq!(json_num_array([1, 2, 3]), "[1, 2, 3]");
        assert_eq!(json_num_array(Vec::<usize>::new()), "[]");
    }
}
