//! # `ic-cli` — a PRIO-style priority tool
//!
//! The paper's assessment arm included PRIO \[19\], "a tool for
//! prioritizing DAGMan jobs": feed it a dag, get back an allocation
//! order informed by IC-Scheduling Theory. This crate is our analogue
//! for the workspace: it parses a task dag from a plain edge-list file
//! and emits a priority order computed by the theory — the exact
//! IC-optimal (or minimum-regret) schedule for small dags, heuristics
//! for large ones — plus eligibility diagnostics.
//!
//! ## File format
//!
//! ```text
//! # comments and blank lines are ignored
//! node build_a        # optional: declare (and name) a task
//! node build_b
//! build_a -> test_a   # an arc; undeclared endpoints are auto-created
//! build_b -> test_b
//! test_a -> package
//! test_b -> package
//! ```
//!
//! ## Usage
//!
//! ```text
//! ic-prio order tasks.dag --policy auto     # priority order + profile
//! ic-prio stats tasks.dag                   # structural summary
//! ic-prio sim tasks.dag --trace run.jsonl   # simulate; record the trace
//! ic-prio audit --claims                    # machine-check the paper claims
//! ic-prio audit --dag tasks.dag             # IC0001/IC0002/IC0003 lint
//! ic-prio audit --schedule run.jsonl        # replay a trace (IC04xx)
//! ic-prio dot tasks.dag                     # Graphviz rendering
//! ```
//!
//! Every data-producing command accepts `--json` and emits the one
//! envelope documented in [`output`]; exit codes are `0` (ok), `1`
//! (findings), `2` (usage/parse errors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod output;
pub mod parse;

pub use output::CmdOutput;
pub use parse::{parse_dag, NamedDag, NetOptions, ParseError};
