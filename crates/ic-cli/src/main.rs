//! `ic-prio` — compute IC-scheduling priorities for a task dag.
//!
//! ```text
//! ic-prio order <file> [--policy auto|greedy|fifo]
//! ic-prio stats <file>
//! ic-prio check <file> <order-file>
//! ic-prio audit --claims [--json]
//! ic-prio audit --dag <file> [--order <order-file>] [--json]
//! ic-prio dot <file>
//! ic-prio export <file>
//! ```

use std::process::ExitCode;

use ic_cli::commands::{self, OrderPolicy};
use ic_cli::parse_dag;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ic-prio order <file> [--policy auto|greedy|fifo]\n  \
         ic-prio stats <file>\n  ic-prio check <file> <order-file>\n  \
         ic-prio audit --claims [--json]\n  \
         ic-prio audit --dag <file> [--order <order-file>] [--json]\n  \
         ic-prio dot <file>\n  ic-prio export <file>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ic_cli::NamedDag, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    parse_dag(&text).map_err(|e| {
        eprintln!("error: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else { return usage() };
    match cmd {
        "order" => {
            let Some(path) = it.next() else {
                return usage();
            };
            let mut policy = OrderPolicy::Auto;
            let rest: Vec<&str> = it.collect();
            match rest.as_slice() {
                [] => {}
                ["--policy", p] => match OrderPolicy::from_flag(p) {
                    Some(pp) => policy = pp,
                    None => {
                        eprintln!("error: unknown policy {p:?}");
                        return usage();
                    }
                },
                _ => return usage(),
            }
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::order(&nd, policy));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "stats" => {
            let Some(path) = it.next() else {
                return usage();
            };
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::stats_report(&nd));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "check" => {
            let (Some(path), Some(order_path)) = (it.next(), it.next()) else {
                return usage();
            };
            let nd = match load(path) {
                Ok(nd) => nd,
                Err(c) => return c,
            };
            let order_text = match std::fs::read_to_string(order_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {order_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match commands::check(&nd, &order_text) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "audit" => {
            let rest: Vec<&str> = it.collect();
            let json = rest.contains(&"--json");
            let rest: Vec<&str> = rest.into_iter().filter(|a| *a != "--json").collect();
            let (text, ok) = match rest.as_slice() {
                ["--claims"] => commands::audit_claims(json),
                ["--dag", path] => match std::fs::read_to_string(path) {
                    Ok(t) => commands::audit_dag_text(&t, None, json),
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                ["--dag", path, "--order", order_path] => {
                    let dag_text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match std::fs::read_to_string(order_path) {
                        Ok(t) => commands::audit_dag_text(&dag_text, Some(&t), json),
                        Err(e) => {
                            eprintln!("error: cannot read {order_path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                _ => return usage(),
            };
            print!("{text}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "dot" => {
            let Some(path) = it.next() else {
                return usage();
            };
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::dot(&nd));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "export" => {
            let Some(path) = it.next() else {
                return usage();
            };
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::export(&nd));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
