//! `ic-prio` — compute IC-scheduling priorities for a task dag.
//!
//! ```text
//! ic-prio order <file> [--policy auto|greedy|fifo] [--json]
//! ic-prio stats <file> [--json]
//! ic-prio check <file> <order-file> [--json]
//! ic-prio check --family <spec> [--workers N] [--depth D] [--max-states N]
//!          [--steal] [--json]
//! ic-prio sim (<file> | --family <spec>) [--policy P] [--clients N] [--seed S]
//!          [--trace out.jsonl] [--json]
//! ic-prio audit --claims [--json]
//! ic-prio audit --dag <file> [--order <order-file>] [--deny orphans] [--json]
//! ic-prio audit --family <spec> [--deny <code-name>] [--json]
//! ic-prio audit --schedule <trace.jsonl> [--deny <code-name>] [--json]
//! ic-prio serve (--dag <file> | --family <spec>) [--policy optimal|fifo|...]
//!          [--listen addr] [--trace out.jsonl] [--lease-ms N] [--expect N]
//!          [--batch N] [--steal-after MS] [--min-proto V]
//!          [--poll-timeout MS] [--shards N]
//!          [--port-file p] [--seed S] [--json]
//! ic-prio work --connect <addr> [--id s] [--speed f] [--mean-ms N] [--batch N]
//!          [--proto V] [--no-reconnect]
//!          [--flaky p | --die-after K | --stall-after K | --sever-after K]
//!          [--seed S] [--json]
//! ic-prio dot <file>
//! ic-prio export <file>
//! ```
//!
//! Exit codes: `0` success, `1` the command ran but found problems,
//! `2` usage, file, or parse errors.

use std::process::ExitCode;

use ic_cli::commands::{self, OrderPolicy};
use ic_cli::output::CmdOutput;
use ic_cli::{parse_dag, NetOptions};

const USAGE_EXIT: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ic-prio order <file> [--policy auto|greedy|fifo] [--json]\n  \
         ic-prio stats <file> [--json]\n  ic-prio check <file> <order-file> [--json]\n  \
         ic-prio check --family <spec> [--workers N] [--depth D] [--max-states N]\n              \
         [--steal] [--json]\n  \
         ic-prio sim (<file> | --family <spec>) [--policy fifo|lifo|random|greedy|maxout|mindepth]\n              \
         [--clients N] [--seed S] [--trace out.jsonl] [--json]\n  \
         ic-prio audit --claims [--json]\n  \
         ic-prio audit --dag <file> [--order <order-file>] [--deny orphans] [--json]\n  \
         ic-prio audit --family <spec> [--deny <code-name>] [--json]\n  \
         ic-prio audit --schedule <trace.jsonl> [--deny <code-name>] [--json]\n  \
         ic-prio serve (--dag <file> | --family mesh:11|outtree:2:5|butterfly:3)\n              \
         [--policy optimal|fifo|lifo|random|greedy|maxout|mindepth] [--listen addr]\n              \
         [--trace out.jsonl] [--lease-ms N] [--expect N] [--batch N] [--steal-after MS]\n              \
         [--min-proto V] [--poll-timeout MS] [--shards N] [--port-file p] [--seed S] [--json]\n  \
         ic-prio work --connect <addr> [--id s] [--speed f] [--mean-ms N] [--batch N]\n              \
         [--proto V] [--no-reconnect]\n              \
         [--flaky p | --die-after K | --stall-after K | --sever-after K] [--seed S] [--json]\n  \
         ic-prio dot <file>\n  ic-prio export <file>"
    );
    ExitCode::from(USAGE_EXIT)
}

fn load(path: &str) -> Result<ic_cli::NamedDag, ExitCode> {
    let text = read(path)?;
    parse_dag(&text).map_err(|e| {
        eprintln!("error: {path}: {e}");
        ExitCode::from(USAGE_EXIT)
    })
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::from(USAGE_EXIT)
    })
}

/// Render `out` and map it to the process exit code.
fn emit(out: &CmdOutput, json: bool) -> ExitCode {
    print!("{}", out.render(json));
    ExitCode::from(out.exit_code())
}

/// Split off the `--json` flag.
fn take_json(args: Vec<&str>) -> (Vec<&str>, bool) {
    let json = args.contains(&"--json");
    (args.into_iter().filter(|a| *a != "--json").collect(), json)
}

/// Resolve `--deny` names to diagnostic codes. `orphans` is the
/// ergonomic alias for IC0003; any `ICxxxx` code name from the table
/// works too (e.g. `EnvelopeDeparture`).
fn deny_code(name: &str) -> Option<&'static str> {
    if name == "orphans" {
        return Some(ic_audit::diag::UNREACHABLE_NODE);
    }
    ic_audit::diag::CODE_TABLE
        .iter()
        .find(|(code, table_name, _)| *code == name || *table_name == name)
        .map(|(code, _, _)| *code)
}

/// `check --family <spec> [--workers N] [--depth D] [--max-states N]
/// [--steal] [--json]` — the model-checker mode of the `check` verb.
fn model_check(args: Vec<&str>) -> ExitCode {
    let (rest, json) = take_json(args);
    let steal = rest.contains(&"--steal");
    let rest: Vec<&str> = rest.into_iter().filter(|a| *a != "--steal").collect();
    let mut family: Option<&str> = None;
    let mut workers = 2usize;
    let mut depth = 48usize;
    let mut max_states = 200_000usize;
    let mut flags = rest.as_slice();
    while let [flag, value, tail @ ..] = flags {
        match *flag {
            "--family" => family = Some(value),
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("error: --workers takes a positive integer");
                    return usage();
                }
            },
            "--depth" => match value.parse() {
                Ok(d) if d > 0 => depth = d,
                _ => {
                    eprintln!("error: --depth takes a positive integer");
                    return usage();
                }
            },
            "--max-states" => match value.parse() {
                Ok(n) if n > 0 => max_states = n,
                _ => {
                    eprintln!("error: --max-states takes a positive integer");
                    return usage();
                }
            },
            _ => return usage(),
        }
        flags = tail;
    }
    if !flags.is_empty() {
        return usage();
    }
    let Some(spec) = family else {
        eprintln!("error: check --family <spec> is required in model-checker mode");
        return usage();
    };
    match commands::model_check(spec, workers, depth, max_states, steal) {
        Ok(out) => emit(&out, json),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(USAGE_EXIT)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else { return usage() };
    match cmd {
        "order" => {
            let Some(path) = it.next() else {
                return usage();
            };
            let (rest, json) = take_json(it.collect());
            let mut policy = OrderPolicy::Auto;
            match rest.as_slice() {
                [] => {}
                ["--policy", p] => match OrderPolicy::from_flag(p) {
                    Some(pp) => policy = pp,
                    None => {
                        eprintln!("error: unknown policy {p:?}");
                        return usage();
                    }
                },
                _ => return usage(),
            }
            match load(path) {
                Ok(nd) => emit(&commands::order(&nd, policy), json),
                Err(c) => c,
            }
        }
        "stats" => {
            let Some(path) = it.next() else {
                return usage();
            };
            let (rest, json) = take_json(it.collect());
            if !rest.is_empty() {
                return usage();
            }
            match load(path) {
                Ok(nd) => emit(&commands::stats_report(&nd), json),
                Err(c) => c,
            }
        }
        "check" => {
            let args: Vec<&str> = it.collect();
            // Two modes share the verb: the positional form
            // `check <file> <order-file>` validates a priority order;
            // the flag form `check --family ...` model-checks the
            // lease protocol by exhaustive interleaving exploration.
            if args.first().is_some_and(|a| a.starts_with("--")) {
                return model_check(args);
            }
            let mut it = args.into_iter();
            let (Some(path), Some(order_path)) = (it.next(), it.next()) else {
                return usage();
            };
            let (rest, json) = take_json(it.collect());
            if !rest.is_empty() {
                return usage();
            }
            let nd = match load(path) {
                Ok(nd) => nd,
                Err(c) => return c,
            };
            let order_text = match read(order_path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            match commands::check(&nd, &order_text) {
                Ok(out) => emit(&out, json),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(USAGE_EXIT)
                }
            }
        }
        "sim" => {
            let Some(first) = it.next() else {
                return usage();
            };
            let (path, family) = if first == "--family" {
                match it.next() {
                    Some(spec) => (None, Some(spec)),
                    None => return usage(),
                }
            } else {
                (Some(first), None)
            };
            let (rest, json) = take_json(it.collect());
            let mut policy_flag = "greedy";
            let mut clients = 4usize;
            let mut seed = 0x1C5EEDu64;
            let mut trace_path: Option<&str> = None;
            let mut flags = rest.as_slice();
            while let [flag, value, tail @ ..] = flags {
                match *flag {
                    "--policy" => policy_flag = value,
                    "--clients" => match value.parse() {
                        Ok(c) if c > 0 => clients = c,
                        _ => {
                            eprintln!("error: --clients takes a positive integer");
                            return usage();
                        }
                    },
                    "--seed" => match value.parse() {
                        Ok(s) => seed = s,
                        Err(_) => {
                            eprintln!("error: --seed takes an integer");
                            return usage();
                        }
                    },
                    "--trace" => trace_path = Some(value),
                    _ => return usage(),
                }
                flags = tail;
            }
            if !flags.is_empty() {
                return usage();
            }
            let Some(policy) = commands::sim_policy_from_flag(policy_flag, seed) else {
                eprintln!("error: unknown sim policy {policy_flag:?}");
                return usage();
            };
            let nd = match (path, family) {
                (Some(path), None) => match load(path) {
                    Ok(nd) => nd,
                    Err(c) => return c,
                },
                (None, Some(spec)) => match commands::named_family_dag(spec) {
                    Ok((_, nd, _)) => nd,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                },
                _ => unreachable!("sim takes exactly one of <file> or --family"),
            };
            let (out, trace) = commands::sim_run(&nd, &policy, clients, seed);
            if let Some(tp) = trace_path {
                if let Err(e) = std::fs::write(tp, trace.to_jsonl()) {
                    eprintln!("error: cannot write {tp}: {e}");
                    return ExitCode::from(USAGE_EXIT);
                }
            }
            emit(&out, json)
        }
        "audit" => {
            let (rest, json) = take_json(it.collect());
            let mut deny: Vec<&'static str> = Vec::new();
            let mut modal: Vec<&str> = Vec::new();
            let mut flags = rest.as_slice();
            while let [flag, tail @ ..] = flags {
                if *flag == "--deny" {
                    let [value, tail @ ..] = tail else {
                        return usage();
                    };
                    match deny_code(value) {
                        Some(code) => deny.push(code),
                        None => {
                            eprintln!("error: unknown --deny code {value:?}");
                            return usage();
                        }
                    }
                    flags = tail;
                } else {
                    modal.push(flag);
                    flags = tail;
                }
            }
            let result = match modal.as_slice() {
                ["--claims"] => Ok(commands::audit_claims()),
                ["--dag", path] => match read(path) {
                    Ok(t) => commands::audit_dag_text(&t, None, &deny),
                    Err(c) => return c,
                },
                ["--dag", path, "--order", order_path] => {
                    let dag_text = match read(path) {
                        Ok(t) => t,
                        Err(c) => return c,
                    };
                    match read(order_path) {
                        Ok(t) => commands::audit_dag_text(&dag_text, Some(&t), &deny),
                        Err(c) => return c,
                    }
                }
                ["--family", spec] => commands::audit_family(spec, &deny),
                ["--schedule", path] => match read(path) {
                    Ok(t) => commands::audit_trace_text(&t, &deny),
                    Err(c) => return c,
                },
                _ => return usage(),
            };
            match result {
                Ok(out) => emit(&out, json),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(USAGE_EXIT)
                }
            }
        }
        "serve" => {
            let (rest, json) = take_json(it.collect());
            let mut dag_path: Option<&str> = None;
            let mut family: Option<&str> = None;
            let mut policy_flag = "optimal";
            let mut listen = "127.0.0.1:0";
            let mut trace_path: Option<&str> = None;
            let mut port_file: Option<&str> = None;
            let mut net = NetOptions::new();
            let mut flags = rest.as_slice();
            while let [flag, value, tail @ ..] = flags {
                match net.accept_serve(flag, value) {
                    Ok(true) => {}
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                    Ok(false) => match *flag {
                        "--dag" => dag_path = Some(value),
                        "--family" => family = Some(value),
                        "--policy" => policy_flag = value,
                        "--listen" => listen = value,
                        "--trace" => trace_path = Some(value),
                        "--port-file" => port_file = Some(value),
                        _ => return usage(),
                    },
                }
                flags = tail;
            }
            if !flags.is_empty() {
                return usage();
            }
            let (label, dag, family_schedule) = match (dag_path, family) {
                (Some(path), None) => match load(path) {
                    Ok(nd) => (path.to_string(), nd.dag, None),
                    Err(c) => return c,
                },
                (None, Some(spec)) => match commands::family_dag(spec) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                },
                _ => {
                    eprintln!("error: serve needs exactly one of --dag or --family");
                    return usage();
                }
            };
            let policy = match commands::serve_policy(
                &dag,
                policy_flag,
                net.serve_seed(),
                family_schedule,
            ) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let net_cfg = net.server_config();
            match commands::serve_run(
                &label,
                &dag,
                policy.as_ref(),
                listen,
                net_cfg,
                trace_path,
                port_file,
            ) {
                Ok(out) => emit(&out, json),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(USAGE_EXIT)
                }
            }
        }
        "work" => {
            let (rest, json) = take_json(it.collect());
            let reconnect = !rest.contains(&"--no-reconnect");
            let rest: Vec<&str> = rest
                .into_iter()
                .filter(|a| *a != "--no-reconnect")
                .collect();
            let mut connect: Option<&str> = None;
            let mut net = NetOptions::new();
            // Worker-only knobs layer onto the shared options last, so
            // parse them into closures-free locals first.
            let mut id: Option<&str> = None;
            let mut speed: Option<f64> = None;
            let mut mean_ms: Option<u64> = None;
            let mut fault: Option<ic_net::FaultPlan> = None;
            let mut flags = rest.as_slice();
            while let [flag, value, tail @ ..] = flags {
                match net.accept_work(flag, value) {
                    Ok(true) => {}
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                    Ok(false) => match *flag {
                        "--connect" => connect = Some(value),
                        "--id" => id = Some(value),
                        "--speed" => match value.parse() {
                            Ok(f) if f > 0.0 => speed = Some(f),
                            _ => {
                                eprintln!("error: --speed takes a positive number");
                                return usage();
                            }
                        },
                        "--mean-ms" => match value.parse() {
                            Ok(ms) => mean_ms = Some(ms),
                            Err(_) => {
                                eprintln!("error: --mean-ms takes an integer");
                                return usage();
                            }
                        },
                        "--flaky" => match value.parse() {
                            Ok(p) if (0.0..=1.0).contains(&p) => {
                                fault = Some(ic_net::FaultPlan::Random(p));
                            }
                            _ => {
                                eprintln!("error: --flaky takes a probability in [0, 1]");
                                return usage();
                            }
                        },
                        "--die-after" => match value.parse() {
                            Ok(k) => fault = Some(ic_net::FaultPlan::DieAfter(k)),
                            Err(_) => {
                                eprintln!("error: --die-after takes an integer");
                                return usage();
                            }
                        },
                        "--stall-after" => match value.parse() {
                            Ok(k) => fault = Some(ic_net::FaultPlan::StallAfter(k)),
                            Err(_) => {
                                eprintln!("error: --stall-after takes an integer");
                                return usage();
                            }
                        },
                        "--sever-after" => match value.parse() {
                            Ok(k) => fault = Some(ic_net::FaultPlan::SeverAfter(k)),
                            Err(_) => {
                                eprintln!("error: --sever-after takes an integer");
                                return usage();
                            }
                        },
                        _ => return usage(),
                    },
                }
                flags = tail;
            }
            let mut bld = net.worker_builder().reconnect(reconnect);
            if let Some(v) = id {
                bld = bld.id(v);
            }
            if let Some(v) = speed {
                bld = bld.speed(v);
            }
            if let Some(v) = mean_ms {
                bld = bld.mean_ms(v);
            }
            if let Some(v) = fault {
                bld = bld.fault(v);
            }
            if !flags.is_empty() {
                return usage();
            }
            let Some(addr) = connect else {
                eprintln!("error: work needs --connect <addr>");
                return usage();
            };
            let wcfg = bld.build();
            match commands::work_run(addr, &wcfg) {
                Ok(out) => emit(&out, json),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(USAGE_EXIT)
                }
            }
        }
        "dot" => {
            let Some(path) = it.next() else {
                return usage();
            };
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::dot(&nd));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "export" => {
            let Some(path) = it.next() else {
                return usage();
            };
            match load(path) {
                Ok(nd) => {
                    print!("{}", commands::export(&nd));
                    ExitCode::SUCCESS
                }
                Err(c) => c,
            }
        }
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
