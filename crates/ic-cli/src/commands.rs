//! The tool's commands, as pure functions returning the report text
//! (so they are unit-testable without process plumbing).

use std::fmt::Write as _;

use ic_dag::dot::{to_dot, DotOptions};
use ic_dag::stats::stats;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::quality::{area_under, summarize};
use ic_sched::Schedule;

use crate::parse::NamedDag;

/// How to choose the priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Exact IC-optimal (or, failing that, exact minimum-regret)
    /// schedule when the dag is small enough; greedy lookahead
    /// otherwise.
    Auto,
    /// Force the greedy one-step-lookahead heuristic.
    Greedy,
    /// Plain FIFO (Condor DAGMan's order) — for comparison.
    Fifo,
}

impl OrderPolicy {
    /// Parse a `--policy` value.
    pub fn from_flag(s: &str) -> Option<OrderPolicy> {
        match s {
            "auto" => Some(OrderPolicy::Auto),
            "greedy" => Some(OrderPolicy::Greedy),
            "fifo" => Some(OrderPolicy::Fifo),
            _ => None,
        }
    }
}

/// Exhaustive machinery is engaged up to this many tasks.
pub const EXACT_LIMIT: usize = 22;

/// `order`: compute and report a priority order.
pub fn order(nd: &NamedDag, policy: OrderPolicy) -> String {
    let dag = &nd.dag;
    let n = dag.num_nodes();
    let (schedule, how) = match policy {
        OrderPolicy::Fifo => (schedule_with(dag, Policy::Fifo), "FIFO".to_string()),
        OrderPolicy::Greedy => (
            schedule_with(dag, Policy::GreedyEligibility),
            "greedy lookahead".to_string(),
        ),
        OrderPolicy::Auto => {
            if n <= EXACT_LIMIT {
                match ic_sched::optimal::find_ic_optimal(dag) {
                    Ok(Some(s)) => (s, "exact IC-optimal".to_string()),
                    Ok(None) => {
                        let (r, s) = ic_sched::almost::min_regret_schedule(dag)
                            .expect("within the exact limit");
                        (
                            s,
                            format!(
                                "exact minimum-regret (regret {r}; no IC-optimal schedule exists)"
                            ),
                        )
                    }
                    Err(_) => (
                        schedule_with(dag, Policy::GreedyEligibility),
                        "greedy lookahead (dag too large for exact)".to_string(),
                    ),
                }
            } else {
                (
                    schedule_with(dag, Policy::GreedyEligibility),
                    format!("greedy lookahead ({n} tasks > exact limit {EXACT_LIMIT})"),
                )
            }
        }
    };

    let profile = schedule.profile(dag);
    let summary = summarize(&profile);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} tasks, {} dependencies — {how}",
        n,
        dag.num_arcs()
    );
    let _ = writeln!(
        out,
        "# eligibility: area {}, peak {}, interior minimum {}",
        summary.area, summary.peak, summary.min_interior
    );
    if n <= EXACT_LIMIT {
        if let Ok(env) = ic_sched::optimal::optimal_envelope(dag) {
            let _ = writeln!(
                out,
                "# envelope area {} (this order: {})",
                area_under(&env),
                summary.area
            );
        }
    }
    let _ = writeln!(out, "# profile: {profile:?}");
    for (i, &v) in schedule.order().iter().enumerate() {
        let _ = writeln!(out, "{i:>4}  {}", nd.name(v));
    }
    out
}

/// `stats`: structural summary plus per-task degrees.
pub fn stats_report(nd: &NamedDag) -> String {
    let dag = &nd.dag;
    let mut out = String::new();
    let _ = writeln!(out, "{}", stats(dag));
    let _ = writeln!(out, "sources: {}", join_names(nd, dag.sources()));
    let _ = writeln!(out, "sinks:   {}", join_names(nd, dag.sinks()));
    out
}

/// `check`: validate a proposed order (task names, one per line) and
/// report its profile against the exact envelope where feasible.
pub fn check(nd: &NamedDag, order_text: &str) -> Result<String, String> {
    let dag = &nd.dag;
    let mut ids = Vec::new();
    for (i, raw) in order_text.lines().enumerate() {
        let name = raw.trim();
        if name.is_empty() || name.starts_with('#') {
            continue;
        }
        match nd.by_name.get(name) {
            Some(&v) => ids.push(v),
            None => return Err(format!("line {}: unknown task {name:?}", i + 1)),
        }
    }
    let schedule = Schedule::new(dag, ids)
        .map_err(|_| "the order violates the dependencies (or misses tasks)".to_string())?;
    let profile = schedule.profile(dag);
    let mut out = String::new();
    let _ = writeln!(out, "valid order over {} tasks", dag.num_nodes());
    let _ = writeln!(out, "profile: {profile:?}");
    if dag.num_nodes() <= EXACT_LIMIT {
        let opt = ic_sched::optimal::is_ic_optimal(dag, &schedule).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "IC-optimal: {opt}");
        if !opt {
            let regret = ic_sched::almost::regret(dag, &schedule).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "regret vs envelope: {regret}");
        }
    }
    Ok(out)
}

/// `export`: re-serialize to the canonical edge-list format (stable,
/// diffable; round-trips through [`crate::parse_dag`]).
pub fn export(nd: &NamedDag) -> String {
    ic_dag::serialize::to_edge_list(&nd.dag)
}

/// `dot`: Graphviz output.
pub fn dot(nd: &NamedDag) -> String {
    to_dot(
        &nd.dag,
        &DotOptions {
            name: "tasks".to_string(),
            ..DotOptions::default()
        },
    )
}

/// `audit --claims`: machine-check the whole paper-claims registry.
/// Returns the report text and whether the audit passed.
pub fn audit_claims(json: bool) -> (String, bool) {
    let report = ic_audit::run_all_claims();
    let text = if json {
        report.render_json()
    } else {
        report.render_text()
    };
    let clean = report.is_clean();
    (text, clean)
}

/// `audit --dag`: run the structural passes on a raw edge-list file
/// and, when an order file is supplied, the order and envelope passes
/// too. Returns the report text and whether the audit passed (no
/// error-severity diagnostics).
pub fn audit_dag_text(dag_text: &str, order_text: Option<&str>, json: bool) -> (String, bool) {
    let raw = match crate::parse::parse_raw(dag_text) {
        Ok(raw) => raw,
        // Syntax errors precede any pass; report them plainly.
        Err(e) => return (format!("error: {e}\n"), false),
    };
    let mut diags = ic_audit::graph::audit_edges(raw.names.len(), &raw.arcs);
    let structurally_clean = diags
        .iter()
        .all(|d| d.severity != ic_audit::Severity::Error);

    if structurally_clean {
        if let Some(order_text) = order_text {
            // The edge list is a dag; build it and audit the order.
            let nd = crate::parse::parse_dag(dag_text).expect("structurally clean");
            let mut order = Vec::new();
            let mut unknown = false;
            for (i, line) in order_text.lines().enumerate() {
                let name = line.trim();
                if name.is_empty() || name.starts_with('#') {
                    continue;
                }
                match nd.by_name.get(name) {
                    Some(&v) => order.push(v),
                    None => {
                        unknown = true;
                        diags.push(ic_audit::Diagnostic::error(
                            ic_audit::diag::NOT_A_TOPOLOGICAL_ORDER,
                            format!("line {}: unknown task {name:?}", i + 1),
                        ));
                    }
                }
            }
            if !unknown {
                let order_diags = ic_audit::order::audit_order(&nd.dag, &order);
                let order_ok = order_diags.is_empty();
                diags.extend(order_diags);
                if order_ok {
                    if let Some(gap) = ic_audit::order::audit_envelope(&nd.dag, &order) {
                        diags.extend(gap);
                    }
                }
            }
        }
    }

    let clean = diags
        .iter()
        .all(|d| d.severity != ic_audit::Severity::Error);
    let text = if json {
        let mut out = ic_audit::report::diagnostics_json(&diags);
        out.push('\n');
        out
    } else {
        let mut out = String::new();
        for d in &diags {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} diagnostic(s), audit {}",
            diags.len(),
            if clean { "passed" } else { "FAILED" }
        );
        out
    };
    (text, clean)
}

fn join_names(nd: &NamedDag, it: impl Iterator<Item = ic_dag::NodeId>) -> String {
    it.map(|v| nd.name(v).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dag;

    fn pipeline() -> NamedDag {
        parse_dag("build_a -> test_a\nbuild_b -> test_b\ntest_a -> package\ntest_b -> package\n")
            .unwrap()
    }

    #[test]
    fn order_auto_reports_exact_on_small_dags() {
        let nd = pipeline();
        let report = order(&nd, OrderPolicy::Auto);
        assert!(report.contains("exact IC-optimal"), "{report}");
        assert!(report.contains("package"));
        // Every task appears exactly once.
        for name in ["build_a", "build_b", "test_a", "test_b", "package"] {
            assert!(report.matches(name).count() >= 1, "{name}");
        }
    }

    #[test]
    fn order_fifo_and_greedy_work() {
        let nd = pipeline();
        assert!(order(&nd, OrderPolicy::Fifo).contains("FIFO"));
        assert!(order(&nd, OrderPolicy::Greedy).contains("greedy"));
    }

    #[test]
    fn order_reports_min_regret_on_non_admitting_dags() {
        // The unary-chain tree admits no IC-optimal schedule.
        let mut text = String::from("r -> u\nu -> v\nr -> w\n");
        for i in 0..5 {
            text.push_str(&format!("v -> v{i}\n"));
        }
        text.push_str("w -> w0\nw -> w1\n");
        let nd = parse_dag(&text).unwrap();
        let report = order(&nd, OrderPolicy::Auto);
        assert!(report.contains("minimum-regret"), "{report}");
    }

    #[test]
    fn stats_lists_sources_and_sinks() {
        let nd = pipeline();
        let report = stats_report(&nd);
        assert!(report.contains("5 nodes"));
        assert!(report.contains("build_a"));
        assert!(report.contains("package"));
    }

    #[test]
    fn check_accepts_valid_orders() {
        let nd = pipeline();
        let report = check(&nd, "build_a\nbuild_b\ntest_a\ntest_b\npackage\n").unwrap();
        assert!(report.contains("valid order"));
        assert!(report.contains("IC-optimal: true"));
    }

    #[test]
    fn check_rejects_bad_orders() {
        let nd = pipeline();
        // Dependency violation.
        assert!(check(&nd, "test_a\nbuild_a\nbuild_b\ntest_b\npackage\n").is_err());
        // Unknown task.
        assert!(check(&nd, "ship_it\n")
            .unwrap_err()
            .contains("unknown task"));
        // Missing tasks.
        assert!(check(&nd, "build_a\n").is_err());
    }

    #[test]
    fn check_reports_regret_for_suboptimal_orders() {
        // Two disjoint Lambdas: interleaving the pairs is suboptimal.
        let nd = parse_dag("a -> s1\nb -> s1\nc -> s2\nd -> s2\n").unwrap();
        let report = check(&nd, "a\nc\nb\nd\ns1\ns2\n").unwrap();
        assert!(report.contains("IC-optimal: false"), "{report}");
        assert!(report.contains("regret"), "{report}");
    }

    #[test]
    fn export_round_trips() {
        let nd = pipeline();
        let text = export(&nd);
        let again = parse_dag(&text).unwrap();
        assert_eq!(again.dag.num_nodes(), nd.dag.num_nodes());
        assert_eq!(again.dag.num_arcs(), nd.dag.num_arcs());
        assert!(ic_dag::iso::are_isomorphic(&again.dag, &nd.dag));
        // Idempotent after the first round.
        assert_eq!(export(&again), text);
    }

    #[test]
    fn dot_renders() {
        let nd = pipeline();
        let text = dot(&nd);
        assert!(text.contains("digraph"));
        assert!(text.contains("package"));
    }

    #[test]
    fn audit_claims_passes_and_renders_both_formats() {
        let (text, ok) = audit_claims(false);
        assert!(ok, "{text}");
        assert!(text.contains("claims hold"));
        let (json, ok) = audit_claims(true);
        assert!(ok);
        assert!(json.contains("\"passed\": true"));
    }

    #[test]
    fn audit_dag_flags_structural_defects() {
        let (text, ok) = audit_dag_text("a -> b\nb -> a\n", None, false);
        assert!(!ok);
        assert!(text.contains("IC0001"), "{text}");
        let (text, ok) = audit_dag_text("a -> b\na -> b\n", None, false);
        assert!(!ok);
        assert!(text.contains("IC0002"), "{text}");
        let (text, ok) = audit_dag_text("a -> b\nnode lone\n", None, false);
        assert!(ok, "isolated nodes are warnings: {text}");
        assert!(text.contains("IC0003"), "{text}");
    }

    #[test]
    fn audit_dag_checks_orders() {
        let dag = "a -> s1\nb -> s1\nc -> s2\nd -> s2\n";
        let (text, ok) = audit_dag_text(dag, Some("a\nb\nc\nd\ns1\ns2\n"), false);
        assert!(ok, "{text}");
        let (text, ok) = audit_dag_text(dag, Some("s1\na\nb\nc\nd\ns2\n"), false);
        assert!(!ok);
        assert!(text.contains("IC0101"), "{text}");
        let (text, ok) = audit_dag_text(dag, Some("a\nc\nb\nd\ns1\ns2\n"), true);
        assert!(!ok);
        assert!(text.contains("IC0102"), "{text}");
        let (text, ok) = audit_dag_text(dag, Some("a\nmystery\n"), false);
        assert!(!ok);
        assert!(text.contains("unknown task"), "{text}");
    }

    #[test]
    fn audit_dag_rejects_syntax_errors() {
        let (text, ok) = audit_dag_text("a -> \n", None, false);
        assert!(!ok);
        assert!(text.contains("error"), "{text}");
    }

    #[test]
    fn policy_flag_parsing() {
        assert_eq!(OrderPolicy::from_flag("auto"), Some(OrderPolicy::Auto));
        assert_eq!(OrderPolicy::from_flag("fifo"), Some(OrderPolicy::Fifo));
        assert_eq!(OrderPolicy::from_flag("greedy"), Some(OrderPolicy::Greedy));
        assert_eq!(OrderPolicy::from_flag("bogus"), None);
    }
}
