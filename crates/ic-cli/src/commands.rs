//! The tool's commands, as pure functions returning a [`CmdOutput`]
//! envelope (so they are unit-testable without process plumbing).
//!
//! Functions returning `Result<CmdOutput, String>` reserve the `Err`
//! arm for parse/usage errors that prevent the command from running —
//! the binary maps those to exit code `2`, while a `CmdOutput` with
//! findings exits `1`.

use std::fmt::Write as _;

use ic_dag::dot::{to_dot, DotOptions};
use ic_dag::stats::stats;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::quality::{area_under, summarize};
use ic_sim::trace::MemorySink;
use ic_sim::{simulate_traced, ClientProfile, SimConfig, Trace};

use crate::output::{json_num_array, json_str_array, CmdOutput};
use crate::parse::NamedDag;

/// How to choose the priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Exact IC-optimal (or, failing that, exact minimum-regret)
    /// schedule when the dag is small enough; greedy lookahead
    /// otherwise.
    Auto,
    /// Force the greedy one-step-lookahead heuristic.
    Greedy,
    /// Plain FIFO (Condor DAGMan's order) — for comparison.
    Fifo,
}

impl OrderPolicy {
    /// Parse a `--policy` value.
    pub fn from_flag(s: &str) -> Option<OrderPolicy> {
        match s {
            "auto" => Some(OrderPolicy::Auto),
            "greedy" => Some(OrderPolicy::Greedy),
            "fifo" => Some(OrderPolicy::Fifo),
            _ => None,
        }
    }
}

/// Parse a `sim --policy` value into a server allocation policy.
/// `random` draws from `seed`.
pub fn sim_policy_from_flag(s: &str, seed: u64) -> Option<Policy> {
    match s {
        "fifo" => Some(Policy::Fifo),
        "lifo" => Some(Policy::Lifo),
        "random" => Some(Policy::Random(seed)),
        "greedy" => Some(Policy::GreedyEligibility),
        "maxout" => Some(Policy::MaxOutDegree),
        "mindepth" => Some(Policy::MinDepth),
        _ => None,
    }
}

/// Exhaustive machinery is engaged up to this many tasks.
pub const EXACT_LIMIT: usize = 22;

/// `order`: compute and report a priority order.
pub fn order(nd: &NamedDag, policy: OrderPolicy) -> CmdOutput {
    let dag = &nd.dag;
    let n = dag.num_nodes();
    let (schedule, how) = match policy {
        OrderPolicy::Fifo => (schedule_with(dag, &Policy::Fifo), "FIFO".to_string()),
        OrderPolicy::Greedy => (
            schedule_with(dag, &Policy::GreedyEligibility),
            "greedy lookahead".to_string(),
        ),
        OrderPolicy::Auto => {
            if n <= EXACT_LIMIT {
                match ic_sched::optimal::find_ic_optimal(dag) {
                    Ok(Some(s)) => (s, "exact IC-optimal".to_string()),
                    Ok(None) => {
                        let (r, s) = ic_sched::almost::min_regret_schedule(dag)
                            .expect("within the exact limit");
                        (
                            s,
                            format!(
                                "exact minimum-regret (regret {r}; no IC-optimal schedule exists)"
                            ),
                        )
                    }
                    Err(_) => (
                        schedule_with(dag, &Policy::GreedyEligibility),
                        "greedy lookahead (dag too large for exact)".to_string(),
                    ),
                }
            } else {
                (
                    schedule_with(dag, &Policy::GreedyEligibility),
                    format!("greedy lookahead ({n} tasks > exact limit {EXACT_LIMIT})"),
                )
            }
        }
    };

    let profile = schedule.profile(dag);
    let summary = summarize(&profile);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} tasks, {} dependencies — {how}",
        n,
        dag.num_arcs()
    );
    let _ = writeln!(
        out,
        "# eligibility: area {}, peak {}, interior minimum {}",
        summary.area, summary.peak, summary.min_interior
    );
    if n <= EXACT_LIMIT {
        if let Ok(env) = ic_sched::optimal::optimal_envelope(dag) {
            let _ = writeln!(
                out,
                "# envelope area {} (this order: {})",
                area_under(&env),
                summary.area
            );
        }
    }
    let _ = writeln!(out, "# profile: {profile:?}");
    for (i, &v) in schedule.order().iter().enumerate() {
        let _ = writeln!(out, "{i:>4}  {}", nd.name(v));
    }

    let data = format!(
        "{{\"how\": {}, \"order\": {}, \"profile\": {}}}",
        ic_audit::report::json_string(&how),
        json_str_array(schedule.order().iter().map(|&v| nd.name(v))),
        json_num_array(profile.iter().copied()),
    );
    CmdOutput::success("order", out).with_data(data)
}

/// `stats`: structural summary plus sources and sinks.
pub fn stats_report(nd: &NamedDag) -> CmdOutput {
    let dag = &nd.dag;
    let mut out = String::new();
    let _ = writeln!(out, "{}", stats(dag));
    let _ = writeln!(out, "sources: {}", join_names(nd, dag.sources()));
    let _ = writeln!(out, "sinks:   {}", join_names(nd, dag.sinks()));
    let data = format!(
        "{{\"nodes\": {}, \"arcs\": {}, \"sources\": {}, \"sinks\": {}}}",
        dag.num_nodes(),
        dag.num_arcs(),
        json_str_array(dag.sources().map(|v| nd.name(v).to_string())),
        json_str_array(dag.sinks().map(|v| nd.name(v).to_string())),
    );
    CmdOutput::success("stats", out).with_data(data)
}

/// `check`: validate a proposed order (task names, one per line) and
/// report its profile against the exact envelope where feasible.
/// Unknown task names are parse errors (`Err`); coverage and
/// precedence violations are IC0101 findings.
pub fn check(nd: &NamedDag, order_text: &str) -> Result<CmdOutput, String> {
    let dag = &nd.dag;
    let mut ids = Vec::new();
    for (i, raw) in order_text.lines().enumerate() {
        let name = raw.trim();
        if name.is_empty() || name.starts_with('#') {
            continue;
        }
        match nd.by_name.get(name) {
            Some(&v) => ids.push(v),
            None => return Err(format!("line {}: unknown task {name:?}", i + 1)),
        }
    }
    let diags = ic_audit::order::audit_order(dag, &ids);
    if !diags.is_empty() {
        let out = CmdOutput::success("check", "invalid order\n")
            .with_data("{\"valid\": false}")
            .with_diagnostics(diags);
        return Ok(out);
    }
    let schedule = ic_sched::Schedule::new_unchecked(ids);
    let profile = schedule.profile(dag);
    let mut out = String::new();
    let _ = writeln!(out, "valid order over {} tasks", dag.num_nodes());
    let _ = writeln!(out, "profile: {profile:?}");
    let mut optimal = String::from("null");
    let mut regret = String::from("null");
    if dag.num_nodes() <= EXACT_LIMIT {
        let opt = ic_sched::optimal::is_ic_optimal(dag, &schedule).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "IC-optimal: {opt}");
        optimal = opt.to_string();
        if !opt {
            let r = ic_sched::almost::regret(dag, &schedule).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "regret vs envelope: {r}");
            regret = r.to_string();
        }
    }
    let data = format!(
        "{{\"valid\": true, \"profile\": {}, \"ic_optimal\": {optimal}, \"regret\": {regret}}}",
        json_num_array(profile.iter().copied()),
    );
    Ok(CmdOutput::success("check", out).with_data(data))
}

/// `check --family ...`: model-check the lease protocol by exhaustive
/// interleaving exploration (see the `ic-check` crate). A violation
/// surfaces as an error-severity diagnostic with its `IC05xx` code and
/// the minimized counterexample in the text body, flipping the exit
/// code to `1`.
pub fn model_check(
    spec: &str,
    workers: usize,
    depth: usize,
    max_states: usize,
    steal: bool,
) -> Result<CmdOutput, String> {
    if !(1..=8).contains(&workers) {
        return Err("--workers takes 1..=8 for exhaustive exploration".to_string());
    }
    let (label, dag, _) = crate::parse::family_dag(spec)?;
    if dag.num_nodes() > 16 {
        return Err(format!(
            "family {label} has {} nodes; exhaustive checking caps at 16 \
             (use a smaller instance)",
            dag.num_nodes()
        ));
    }
    let mut fleet = ic_check::FleetSpec::of(workers);
    if steal {
        fleet = fleet.with_steal();
    }
    let cfg = ic_check::CheckConfig {
        max_depth: depth,
        max_states,
        minimize: true,
    };
    let outcome = ic_check::check(
        &dag,
        &Policy::Fifo,
        &fleet,
        &cfg,
        ic_net::machine::SeededBugs::default(),
    );
    let stats = outcome.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model-checked {label} with {workers} worker(s): {} states, {} transitions \
         ({} visited-pruned, {} slept), {} complete runs, deepest {}",
        stats.states,
        stats.transitions,
        stats.visited_pruned,
        stats.sleep_pruned,
        stats.complete_runs,
        stats.deepest
    );
    if !stats.exhaustive() {
        let _ = writeln!(
            out,
            "bounded: exploration truncated by {}",
            if stats.state_capped {
                "--max-states"
            } else {
                "--depth"
            }
        );
    }
    let data = format!(
        "{{\"family\": \"{label}\", \"workers\": {workers}, \"states\": {}, \
         \"transitions\": {}, \"visited_pruned\": {}, \"sleep_pruned\": {}, \
         \"complete_runs\": {}, \"deepest\": {}, \"exhaustive\": {}, \"clean\": {}}}",
        stats.states,
        stats.transitions,
        stats.visited_pruned,
        stats.sleep_pruned,
        stats.complete_runs,
        stats.deepest,
        stats.exhaustive(),
        outcome.is_clean(),
    );
    match outcome {
        ic_check::CheckOutcome::Clean(_) => {
            let _ = writeln!(out, "all invariants hold on every explored state");
            Ok(CmdOutput::success("check", out).with_data(data))
        }
        ic_check::CheckOutcome::Violation(v) => {
            let _ = writeln!(out, "counterexample ({} events):", v.trace.len());
            for (i, ev) in v.trace.iter().enumerate() {
                let _ = writeln!(out, "  {:>3}. {ev}", i + 1);
            }
            Ok(CmdOutput::success("check", out)
                .with_data(data)
                .with_diagnostics(vec![v.diag.clone()]))
        }
    }
}

/// `export`: re-serialize to the canonical edge-list format (stable,
/// diffable; round-trips through [`crate::parse_dag`]).
pub fn export(nd: &NamedDag) -> String {
    ic_dag::serialize::to_edge_list(&nd.dag)
}

/// `dot`: Graphviz output.
pub fn dot(nd: &NamedDag) -> String {
    to_dot(
        &nd.dag,
        &DotOptions {
            name: "tasks".to_string(),
            ..DotOptions::default()
        },
    )
}

/// `sim`: run the discrete-event server simulation and report its
/// trace-derived metrics. Returns the envelope and the full execution
/// trace (the binary writes it out under `--trace`).
pub fn sim_run(nd: &NamedDag, policy: &Policy, clients: usize, seed: u64) -> (CmdOutput, Trace) {
    let cfg = SimConfig {
        clients: ClientProfile {
            num_clients: clients,
            ..ClientProfile::default()
        },
        seed,
        ..SimConfig::default()
    };
    let mut sink = MemorySink::new();
    let r = simulate_traced(&nd.dag, policy, &cfg, &mut sink);
    let trace = sink.into_trace().expect("simulate_traced records a header");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} tasks, {} client(s), policy {}, seed {seed}",
        nd.dag.num_nodes(),
        clients,
        policy.name()
    );
    let _ = writeln!(out, "makespan:     {:.3}", r.makespan);
    let _ = writeln!(out, "utilization:  {:.3}", r.utilization);
    let _ = writeln!(out, "idle time:    {:.3}", r.idle_time);
    let _ = writeln!(out, "mean pool:    {:.3}", r.mean_pool());
    let _ = writeln!(out, "gridlock:     {}", r.gridlock_events);
    let _ = writeln!(out, "unsatisfied:  {}", r.unsatisfied_at_batch);
    let _ = writeln!(out, "failures:     {}", r.failures);
    let _ = writeln!(out, "events:       {}", trace.events.len());

    let data = format!(
        "{{\"policy\": {}, \"clients\": {clients}, \"seed\": \"{seed}\", \
         \"makespan\": {}, \"utilization\": {}, \"idle_time\": {}, \"mean_pool\": {}, \
         \"gridlock\": {}, \"unsatisfied_at_batch\": {}, \"failures\": {}, \"events\": {}}}",
        ic_audit::report::json_string(policy.name()),
        r.makespan,
        r.utilization,
        r.idle_time,
        r.mean_pool(),
        r.gridlock_events,
        r.unsatisfied_at_batch,
        r.failures,
        trace.events.len(),
    );
    (CmdOutput::success("sim", out).with_data(data), trace)
}

/// `audit --claims`: machine-check the whole paper-claims registry.
pub fn audit_claims() -> CmdOutput {
    let report = ic_audit::run_all_claims();
    let clean = report.is_clean();
    CmdOutput {
        command: "audit",
        ok: clean,
        text: report.render_text(),
        data: Some(report.render_json()),
        diagnostics: Vec::new(),
    }
}

/// `audit --dag`: run the structural passes on a raw edge-list file
/// and, when an order file is supplied, the order and envelope passes
/// too. Codes listed in `deny` are escalated to errors. `Err` means
/// the file did not parse.
pub fn audit_dag_text(
    dag_text: &str,
    order_text: Option<&str>,
    deny: &[&'static str],
) -> Result<CmdOutput, String> {
    let raw = crate::parse::parse_raw(dag_text).map_err(|e| e.to_string())?;
    let mut diags = ic_audit::graph::audit_edges(raw.names.len(), &raw.arcs);
    let structurally_clean = diags
        .iter()
        .all(|d| d.severity != ic_audit::Severity::Error);

    let mut data = None;
    if structurally_clean {
        // The edge list is a dag; build it once for the lattice count
        // and (when an order is supplied) the order passes.
        let nd = crate::parse::parse_dag(dag_text).expect("structurally clean");
        // Size of the down-set lattice (the schedule-state space), when
        // small enough to walk: `null` past the cap or the 64-node
        // bitmask limit. A 64-node antichain has 2^64 states, so the
        // count must be bounded, not merely computed.
        const STATE_CAP: u64 = 1 << 20;
        let states = ic_dag::ideals::IdealEnumerator::new(&nd.dag)
            .ok()
            .and_then(|en| en.count_up_to(STATE_CAP));
        data = Some(format!(
            "{{\"nodes\": {}, \"arcs\": {}, \"states\": {}}}",
            nd.dag.num_nodes(),
            raw.arcs.len(),
            states.map_or_else(|| "null".to_string(), |c| c.to_string()),
        ));
        if let Some(order_text) = order_text {
            let mut order = Vec::new();
            let mut unknown = false;
            for (i, line) in order_text.lines().enumerate() {
                let name = line.trim();
                if name.is_empty() || name.starts_with('#') {
                    continue;
                }
                match nd.by_name.get(name) {
                    Some(&v) => order.push(v),
                    None => {
                        unknown = true;
                        diags.push(ic_audit::Diagnostic::error(
                            ic_audit::diag::NOT_A_TOPOLOGICAL_ORDER,
                            format!("line {}: unknown task {name:?}", i + 1),
                        ));
                    }
                }
            }
            if !unknown {
                let order_diags = ic_audit::order::audit_order(&nd.dag, &order);
                let order_ok = order_diags.is_empty();
                diags.extend(order_diags);
                if order_ok {
                    if let Some(gap) = ic_audit::order::audit_envelope(&nd.dag, &order) {
                        diags.extend(gap);
                    }
                }
            }
        }
    }

    let mut out = finish_audit(diags, deny);
    if data.is_some() {
        out.data = data;
    }
    Ok(out)
}

/// `audit --schedule`: replay a JSONL execution trace (IC0401–IC0405).
/// `Err` means the trace did not parse.
pub fn audit_trace_text(jsonl: &str, deny: &[&'static str]) -> Result<CmdOutput, String> {
    let trace = Trace::from_jsonl(jsonl).map_err(|e| e.to_string())?;
    let diags = ic_audit::audit_trace(&trace);
    let data = format!(
        "{{\"nodes\": {}, \"clients\": {}, \"policy\": {}, \"events\": {}}}",
        trace.header.nodes,
        trace.header.clients,
        ic_audit::report::json_string(&trace.header.policy),
        trace.events.len(),
    );
    let mut out = finish_audit(diags, deny);
    out.data = Some(data);
    Ok(out)
}

/// Apply `--deny` escalations, render the diagnostic summary, and
/// compute the verdict.
fn finish_audit(mut diags: Vec<ic_audit::Diagnostic>, deny: &[&'static str]) -> CmdOutput {
    for code in deny {
        ic_audit::diag::deny(&mut diags, code);
    }
    let clean = diags
        .iter()
        .all(|d| d.severity != ic_audit::Severity::Error);
    let text = format!(
        "{} diagnostic(s), audit {}\n",
        diags.len(),
        if clean { "passed" } else { "FAILED" }
    );
    CmdOutput::success("audit", text).with_diagnostics(diags)
}

pub use crate::parse::{family_dag, named_family_dag};

/// `audit --family`: generate a paper-family instance, serialize it,
/// and run the structural passes on the edge list; when the family
/// carries a closed-form IC-optimal schedule, audit that schedule as
/// an order too (topology + envelope). `Err` means the spec is bad.
pub fn audit_family(spec: &str, deny: &[&'static str]) -> Result<CmdOutput, String> {
    let (_, dag, sched) = family_dag(spec)?;
    let text = ic_dag::serialize::to_edge_list(&dag);
    let order_text = sched.map(|s| {
        let names = ic_dag::serialize::edge_list_names(&dag);
        s.order()
            .iter()
            .map(|v| names[v.index()].as_str())
            .collect::<Vec<_>>()
            .join("\n")
    });
    audit_dag_text(&text, order_text.as_deref(), deny)
}

/// Resolve a `serve --policy` flag into an allocation policy. The sim
/// heuristics all work; `optimal` uses the family's closed-form
/// schedule when one is known, the exact machinery on small dags, and
/// greedy lookahead otherwise.
pub fn serve_policy(
    dag: &ic_dag::Dag,
    flag: &str,
    seed: u64,
    family_schedule: Option<ic_sched::Schedule>,
) -> Result<Box<dyn ic_sched::policy::AllocationPolicy>, String> {
    if flag == "optimal" {
        if let Some(s) = family_schedule {
            return Ok(Box::new(s));
        }
        let s = if dag.num_nodes() <= EXACT_LIMIT {
            match ic_sched::optimal::find_ic_optimal(dag).map_err(|e| e.to_string())? {
                Some(s) => s,
                None => {
                    ic_sched::almost::min_regret_schedule(dag)
                        .map_err(|e| e.to_string())?
                        .1
                }
            }
        } else {
            schedule_with(dag, &Policy::GreedyEligibility)
        };
        return Ok(Box::new(s));
    }
    sim_policy_from_flag(flag, seed)
        .map(|p| Box::new(p) as Box<dyn ic_sched::policy::AllocationPolicy>)
        .ok_or_else(|| format!("unknown serve policy {flag:?}"))
}

/// `serve`: run the live TCP task server until the dag completes,
/// streaming the trace to `trace_path` (JSONL, flushed per event) when
/// given. `port_file` receives the bound address once listening — the
/// hook scripts use to find an ephemeral port.
pub fn serve_run(
    dag_label: &str,
    dag: &ic_dag::Dag,
    policy: &dyn ic_sched::policy::AllocationPolicy,
    listen: &str,
    net_cfg: ic_net::ServerConfig,
    trace_path: Option<&str>,
    port_file: Option<&str>,
) -> Result<CmdOutput, String> {
    let server = ic_net::Server::bind(listen, dag, policy, net_cfg)
        .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(pf) = port_file {
        std::fs::write(pf, format!("{addr}\n")).map_err(|e| format!("cannot write {pf}: {e}"))?;
    }
    let report = match trace_path {
        Some(p) => {
            let mut sink =
                ic_sim::FileSink::create(p).map_err(|e| format!("cannot create {p}: {e}"))?;
            let report = server.run(&mut sink).map_err(|e| e.to_string())?;
            sink.finish()
                .map_err(|e| format!("cannot flush {p}: {e}"))?;
            report
        }
        None => server
            .run(&mut ic_sim::trace::NullSink)
            .map_err(|e| e.to_string())?,
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# served {dag_label} ({} tasks) on {addr}, policy {}",
        dag.num_nodes(),
        policy.name()
    );
    let _ = writeln!(out, "completions:  {}", report.completions);
    let _ = writeln!(out, "failures:     {}", report.failures);
    let _ = writeln!(out, "allocations:  {}", report.allocations);
    let _ = writeln!(out, "resumes:      {}", report.resumes);
    let _ = writeln!(out, "steals:       {}", report.steals);
    let _ = writeln!(out, "revokes:      {}", report.revokes);
    let _ = writeln!(out, "workers:      {}", report.workers_registered);
    let _ = writeln!(out, "makespan:     {:.3}s", report.makespan);
    if report.late_workers > 0 && trace_path.is_some() {
        let _ = writeln!(
            out,
            "# warning: {} worker(s) registered after the trace header was written; \
             their parameters are missing from the header, so the trace replays order \
             but not timing. Pass --expect {} to hold the header for all workers.",
            report.late_workers, report.workers_registered
        );
    }
    let data = format!(
        "{{\"addr\": {}, \"policy\": {}, \"completions\": {}, \"failures\": {}, \
         \"reallocations\": {}, \"allocations\": {}, \"resumes\": {}, \"steals\": {}, \
         \"revokes\": {}, \"workers\": {}, \"late_workers\": {}, \"makespan\": {}}}",
        ic_audit::report::json_string(&addr.to_string()),
        ic_audit::report::json_string(&policy.name()),
        report.completions,
        report.failures,
        report.failures,
        report.allocations,
        report.resumes,
        report.steals,
        report.revokes,
        report.workers_registered,
        report.late_workers,
        report.makespan,
    );
    Ok(CmdOutput::success("serve", out).with_data(data))
}

/// `work`: run one worker against a server until drained (or until its
/// fault plan kills it — a planned death still exits 0; the point of
/// `--flaky` is that the *server* must survive it).
pub fn work_run(connect: &str, cfg: &ic_net::WorkerConfig) -> Result<CmdOutput, String> {
    let report = ic_net::run_worker(connect, cfg)
        .map_err(|e| format!("worker cannot serve {connect}: {e}"))?;
    let out = format!(
        "# worker {} ({}) on {connect}\ncompleted: {}\nresumes: {}\n{}\n",
        report.worker,
        cfg.id,
        report.completed,
        report.resumes,
        if report.died {
            "exited: by fault plan"
        } else {
            "exited: drained"
        }
    );
    let data = format!(
        "{{\"worker\": {}, \"id\": {}, \"completed\": {}, \"resumes\": {}, \"died\": {}}}",
        report.worker,
        ic_audit::report::json_string(&cfg.id),
        report.completed,
        report.resumes,
        report.died,
    );
    Ok(CmdOutput::success("work", out).with_data(data))
}

fn join_names(nd: &NamedDag, it: impl Iterator<Item = ic_dag::NodeId>) -> String {
    it.map(|v| nd.name(v).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dag;
    use ic_audit::diag::UNREACHABLE_NODE;

    fn pipeline() -> NamedDag {
        parse_dag("build_a -> test_a\nbuild_b -> test_b\ntest_a -> package\ntest_b -> package\n")
            .unwrap()
    }

    #[test]
    fn order_auto_reports_exact_on_small_dags() {
        let nd = pipeline();
        let out = order(&nd, OrderPolicy::Auto);
        assert!(out.ok);
        assert!(out.text.contains("exact IC-optimal"), "{}", out.text);
        assert!(out.text.contains("package"));
        // Every task appears exactly once.
        for name in ["build_a", "build_b", "test_a", "test_b", "package"] {
            assert!(out.text.matches(name).count() >= 1, "{name}");
        }
        let json = out.render_json();
        assert!(json.contains("\"command\": \"order\""), "{json}");
        assert!(json.contains("\"profile\": [2,"), "{json}");
    }

    #[test]
    fn order_fifo_and_greedy_work() {
        let nd = pipeline();
        assert!(order(&nd, OrderPolicy::Fifo).text.contains("FIFO"));
        assert!(order(&nd, OrderPolicy::Greedy).text.contains("greedy"));
    }

    #[test]
    fn order_reports_min_regret_on_non_admitting_dags() {
        // The unary-chain tree admits no IC-optimal schedule.
        let mut text = String::from("r -> u\nu -> v\nr -> w\n");
        for i in 0..5 {
            text.push_str(&format!("v -> v{i}\n"));
        }
        text.push_str("w -> w0\nw -> w1\n");
        let nd = parse_dag(&text).unwrap();
        let out = order(&nd, OrderPolicy::Auto);
        assert!(out.text.contains("minimum-regret"), "{}", out.text);
    }

    #[test]
    fn stats_lists_sources_and_sinks() {
        let nd = pipeline();
        let out = stats_report(&nd);
        assert!(out.text.contains("5 nodes"));
        assert!(out.text.contains("build_a"));
        assert!(out.text.contains("package"));
        assert!(out.render_json().contains("\"sources\": [\"build_a\""));
    }

    #[test]
    fn check_accepts_valid_orders() {
        let nd = pipeline();
        let out = check(&nd, "build_a\nbuild_b\ntest_a\ntest_b\npackage\n").unwrap();
        assert!(out.ok);
        assert!(out.text.contains("valid order"));
        assert!(out.text.contains("IC-optimal: true"));
        assert!(out.render_json().contains("\"ic_optimal\": true"));
    }

    #[test]
    fn check_flags_bad_orders_with_ic0101() {
        let nd = pipeline();
        // Dependency violation: a finding, not a parse error.
        let out = check(&nd, "test_a\nbuild_a\nbuild_b\ntest_b\npackage\n").unwrap();
        assert!(!out.ok);
        assert_eq!(out.exit_code(), 1);
        assert!(out
            .diagnostics
            .iter()
            .all(|d| d.code == ic_audit::diag::NOT_A_TOPOLOGICAL_ORDER));
        // Unknown task: a parse error.
        assert!(check(&nd, "ship_it\n")
            .unwrap_err()
            .contains("unknown task"));
        // Missing tasks: a finding.
        assert!(!check(&nd, "build_a\n").unwrap().ok);
    }

    #[test]
    fn check_reports_regret_for_suboptimal_orders() {
        // Two disjoint Lambdas: interleaving the pairs is suboptimal.
        let nd = parse_dag("a -> s1\nb -> s1\nc -> s2\nd -> s2\n").unwrap();
        let out = check(&nd, "a\nc\nb\nd\ns1\ns2\n").unwrap();
        assert!(out.ok, "suboptimal is informational");
        assert!(out.text.contains("IC-optimal: false"), "{}", out.text);
        assert!(out.text.contains("regret"), "{}", out.text);
    }

    #[test]
    fn export_round_trips() {
        let nd = pipeline();
        let text = export(&nd);
        let again = parse_dag(&text).unwrap();
        assert_eq!(again.dag.num_nodes(), nd.dag.num_nodes());
        assert_eq!(again.dag.num_arcs(), nd.dag.num_arcs());
        assert!(ic_dag::iso::are_isomorphic(&again.dag, &nd.dag));
        // Idempotent after the first round.
        assert_eq!(export(&again), text);
    }

    #[test]
    fn dot_renders() {
        let nd = pipeline();
        let text = dot(&nd);
        assert!(text.contains("digraph"));
        assert!(text.contains("package"));
    }

    #[test]
    fn audit_claims_passes_and_renders_both_formats() {
        let out = audit_claims();
        assert!(out.ok, "{}", out.text);
        assert!(out.text.contains("claims hold"));
        let json = out.render_json();
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"passed\": true"));
    }

    #[test]
    fn audit_dag_flags_structural_defects() {
        let out = audit_dag_text("a -> b\nb -> a\n", None, &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_text().contains("IC0001"));
        let out = audit_dag_text("a -> b\na -> b\n", None, &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_text().contains("IC0002"));
        let out = audit_dag_text("a -> b\nnode lone\n", None, &[]).unwrap();
        assert!(out.ok, "isolated nodes are warnings");
        assert!(out.render_text().contains("IC0003"));
    }

    #[test]
    fn deny_orphans_escalates_ic0003() {
        let out = audit_dag_text("a -> b\nnode lone\n", None, &[UNREACHABLE_NODE]).unwrap();
        assert!(!out.ok, "denied orphans fail the audit");
        assert_eq!(out.exit_code(), 1);
        assert!(out.render_json().contains("\"severity\": \"error\""));
    }

    #[test]
    fn audit_dag_checks_orders() {
        let dag = "a -> s1\nb -> s1\nc -> s2\nd -> s2\n";
        let out = audit_dag_text(dag, Some("a\nb\nc\nd\ns1\ns2\n"), &[]).unwrap();
        assert!(out.ok, "{}", out.render_text());
        let out = audit_dag_text(dag, Some("s1\na\nb\nc\nd\ns2\n"), &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_text().contains("IC0101"));
        let out = audit_dag_text(dag, Some("a\nc\nb\nd\ns1\ns2\n"), &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_json().contains("IC0102"));
        let out = audit_dag_text(dag, Some("a\nmystery\n"), &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_text().contains("unknown task"));
    }

    #[test]
    fn audit_dag_rejects_syntax_errors() {
        assert!(audit_dag_text("a -> \n", None, &[]).is_err());
    }

    #[test]
    fn audit_dag_reports_the_lattice_size() {
        // Diamond: 6 down-sets.
        let out = audit_dag_text("a -> b\na -> c\nb -> d\nc -> d\n", None, &[]).unwrap();
        assert!(out.ok);
        let data = out.data.as_deref().unwrap();
        assert!(data.contains("\"nodes\": 4"), "{data}");
        assert!(data.contains("\"arcs\": 4"), "{data}");
        assert!(data.contains("\"states\": 6"), "{data}");

        // 21 isolated nodes: 2^21 down-sets, past the reporting cap.
        let big: String = (0..21).fold(String::new(), |mut s, i| {
            use std::fmt::Write;
            let _ = writeln!(s, "node n{i}");
            s
        });
        let out = audit_dag_text(&big, None, &[]).unwrap();
        assert!(out.ok);
        assert!(
            out.data.as_deref().unwrap().contains("\"states\": null"),
            "{:?}",
            out.data
        );

        // A structurally broken edge list reports no dag data.
        let out = audit_dag_text("a -> b\nb -> a\n", None, &[]).unwrap();
        assert!(out.data.is_none());
    }

    #[test]
    fn sim_produces_an_auditable_trace() {
        let nd = pipeline();
        let (out, trace) = sim_run(&nd, &Policy::GreedyEligibility, 2, 42);
        assert!(out.ok);
        assert!(out.text.contains("makespan"));
        assert!(out.render_json().contains("\"seed\": \"42\""));
        let jsonl = trace.to_jsonl();
        let audited = audit_trace_text(&jsonl, &[]).unwrap();
        assert!(audited.ok, "{}", audited.render_text());
        assert!(audited.render_json().contains("\"command\": \"audit\""));
    }

    #[test]
    fn audit_trace_flags_defects_and_rejects_garbage() {
        let nd = pipeline();
        let (_, trace) = sim_run(&nd, &Policy::Fifo, 1, 7);
        let mut lines: Vec<&str> = Vec::new();
        let jsonl = trace.to_jsonl();
        lines.extend(jsonl.lines());
        // Drop the first allocation line: its completion dangles.
        let alloc = lines.iter().position(|l| l.contains("\"alloc\"")).unwrap();
        lines.remove(alloc);
        let broken = lines.join("\n");
        let out = audit_trace_text(&broken, &[]).unwrap();
        assert!(!out.ok);
        assert!(out.render_text().contains("IC040"), "{}", out.render_text());
        // Garbage is a parse error, not a finding.
        assert!(audit_trace_text("not json\n", &[]).is_err());
    }

    #[test]
    fn policy_flag_parsing() {
        assert_eq!(OrderPolicy::from_flag("auto"), Some(OrderPolicy::Auto));
        assert_eq!(OrderPolicy::from_flag("fifo"), Some(OrderPolicy::Fifo));
        assert_eq!(OrderPolicy::from_flag("greedy"), Some(OrderPolicy::Greedy));
        assert_eq!(OrderPolicy::from_flag("bogus"), None);
        assert_eq!(sim_policy_from_flag("lifo", 0), Some(Policy::Lifo));
        assert_eq!(sim_policy_from_flag("random", 9), Some(Policy::Random(9)));
        assert_eq!(sim_policy_from_flag("bogus", 0), None);
    }

    #[test]
    fn family_specs_parse_and_bad_ones_do_not() {
        let (label, mesh, sched) = family_dag("mesh:11").unwrap();
        assert_eq!(label, "mesh:11");
        assert_eq!(mesh.num_nodes(), 66);
        assert!(sched.is_some());
        assert!(family_dag("butterfly:3").is_ok());
        assert!(family_dag("outtree:2:4").is_ok());
        for bad in ["mesh", "mesh:0", "mesh:x", "nope:3", "mesh:3:4", ""] {
            assert!(family_dag(bad).is_err(), "{bad:?}");
        }
    }

    /// Oversized specs are rejected from the closed-form node count
    /// before construction — these must error instantly, not attempt a
    /// billion-node (or usize-overflowing) allocation.
    #[test]
    fn oversized_family_specs_are_rejected_before_construction() {
        for big in [
            "outtree:10:9",
            "intree:10:9",
            "outtree:2:64",
            "mesh:100000",
            "inmesh:18446744073709551615",
            "butterfly:40",
            "butterfly:200",
        ] {
            let err = family_dag(big).unwrap_err();
            assert!(err.contains("caps"), "{big:?}: {err}");
        }
        // Boundary: 1447·1448/2 ≤ 2^20 builds, 1448·1449/2 > 2^20 does not.
        assert!(family_dag("mesh:1447").is_ok());
        assert!(family_dag("mesh:1448").is_err());
    }

    #[test]
    fn serve_policy_resolves_optimal_and_heuristics() {
        let nd = pipeline();
        let p = serve_policy(&nd.dag, "optimal", 0, None).unwrap();
        assert_eq!(p.name(), "SCHEDULE");
        let p = serve_policy(&nd.dag, "fifo", 0, None).unwrap();
        assert_eq!(p.name(), "FIFO");
        assert!(serve_policy(&nd.dag, "bogus", 0, None).is_err());
    }

    #[test]
    fn serve_and_work_complete_a_family_over_localhost() {
        let dir = std::env::temp_dir().join(format!("ic-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let trace_file = dir.join("trace.jsonl");

        let (label, dag, sched) = family_dag("outtree:2:3").unwrap();
        let n = dag.num_nodes();
        let policy = serve_policy(&dag, "optimal", 5, sched).unwrap();
        let net_cfg = ic_net::ServerConfig::builder()
            .lease_ms(300)
            .expect_workers(1)
            .seed(5)
            .build();

        let (serve_out, work_out) = std::thread::scope(|s| {
            let pf = port_file.clone();
            let worker = s.spawn(move || {
                let addr = loop {
                    match std::fs::read_to_string(&pf) {
                        Ok(t) if !t.trim().is_empty() => break t.trim().to_string(),
                        _ => std::thread::sleep(std::time::Duration::from_millis(5)),
                    }
                };
                let wcfg = ic_net::WorkerConfig::builder()
                    .id("cli-worker")
                    .mean_ms(1)
                    .build();
                work_run(&addr, &wcfg).unwrap()
            });
            let serve_out = serve_run(
                &label,
                &dag,
                policy.as_ref(),
                "127.0.0.1:0",
                net_cfg,
                trace_file.to_str(),
                port_file.to_str(),
            )
            .unwrap();
            (serve_out, worker.join().unwrap())
        });

        assert!(serve_out.ok);
        assert!(
            serve_out.text.contains(&format!("completions:  {n}")),
            "{}",
            serve_out.text
        );
        assert!(work_out.ok);
        assert!(work_out.text.contains("drained"), "{}", work_out.text);

        // The streamed trace parses and replays clean.
        let trace_text = std::fs::read_to_string(&trace_file).unwrap();
        let audit = audit_trace_text(&trace_text, &[]).unwrap();
        assert!(audit.ok, "{}", audit.render_text());
        std::fs::remove_dir_all(&dir).ok();
    }
}
