//! The edge-list dag format.

use std::collections::HashMap;
use std::fmt;

use ic_dag::{Dag, DagBuilder, NodeId};

/// A parsed dag with its task names.
#[derive(Debug, Clone)]
pub struct NamedDag {
    /// The dag; node labels carry the task names.
    pub dag: Dag,
    /// Task name → node id.
    pub by_name: HashMap<String, NodeId>,
}

impl NamedDag {
    /// The name of node `v`.
    pub fn name(&self, v: NodeId) -> &str {
        self.dag.label(v)
    }
}

/// Parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line that is neither a comment, a `node` declaration, nor an
    /// arc.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A `node` declaration re-used an existing name.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// An arc from a task to itself.
    SelfLoop {
        /// 1-based line number.
        line: usize,
        /// The task name.
        name: String,
    },
    /// The arcs form a cycle — not a valid computation-dag.
    Cycle,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, text } => {
                write!(
                    f,
                    "line {line}: cannot parse {text:?} (expected `node NAME` or `A -> B`)"
                )
            }
            ParseError::DuplicateNode { line, name } => {
                write!(f, "line {line}: task {name:?} declared twice")
            }
            ParseError::SelfLoop { line, name } => {
                write!(f, "line {line}: task {name:?} depends on itself")
            }
            ParseError::Cycle => write!(f, "the dependencies contain a cycle"),
        }
    }
}

impl std::error::Error for ParseError {}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse the edge-list format (see the crate docs). Task names may
/// contain any non-whitespace characters except `#`; undeclared arc
/// endpoints are created on first mention, in order of appearance.
pub fn parse_dag(text: &str) -> Result<NamedDag, ParseError> {
    let mut b = DagBuilder::new();
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    let mut declared: HashMap<String, usize> = HashMap::new();

    let intern =
        |b: &mut DagBuilder, by_name: &mut HashMap<String, NodeId>, name: &str| match by_name
            .get(name)
        {
            Some(&v) => v,
            None => {
                let v = b.add_node(name);
                by_name.insert(name.to_string(), v);
                v
            }
        };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["node", name] => {
                if declared.insert((*name).to_string(), lineno).is_some() {
                    return Err(ParseError::DuplicateNode {
                        line: lineno,
                        name: (*name).to_string(),
                    });
                }
                intern(&mut b, &mut by_name, name);
            }
            [from, "->", to] => {
                if from == to {
                    return Err(ParseError::SelfLoop {
                        line: lineno,
                        name: (*from).to_string(),
                    });
                }
                let u = intern(&mut b, &mut by_name, from);
                let v = intern(&mut b, &mut by_name, to);
                b.add_arc(u, v)
                    .expect("interned ids are valid; self-loops rejected above");
            }
            _ => {
                return Err(ParseError::BadLine {
                    line: lineno,
                    text: line.to_string(),
                });
            }
        }
    }
    let dag = b.build().map_err(|_| ParseError::Cycle)?;
    Ok(NamedDag { dag, by_name })
}

/// A *raw* parse of the edge-list format: names interned in order of
/// first mention, arcs kept verbatim — duplicates, self-loops, and
/// cycles included. This is the input the `audit` subcommand feeds to
/// `ic-audit`'s graph passes, which exist precisely to flag the defects
/// [`parse_dag`] would reject (or silently dedup).
#[derive(Debug, Clone)]
pub struct RawDag {
    /// Task names, indexed by interned id.
    pub names: Vec<String>,
    /// Every arc as written, as `(from, to)` index pairs.
    pub arcs: Vec<(usize, usize)>,
}

/// Parse the edge-list format without validation (see [`RawDag`]).
/// Only *syntax* errors are rejected; structural defects are the
/// auditor's job.
pub fn parse_raw(text: &str) -> Result<RawDag, ParseError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    let intern = |names: &mut Vec<String>, index: &mut HashMap<String, usize>, name: &str| {
        *index.entry(name.to_string()).or_insert_with(|| {
            names.push(name.to_string());
            names.len() - 1
        })
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["node", name] => {
                intern(&mut names, &mut index, name);
            }
            [from, "->", to] => {
                let u = intern(&mut names, &mut index, from);
                let v = intern(&mut names, &mut index, to);
                arcs.push((u, v));
            }
            _ => {
                return Err(ParseError::BadLine {
                    line: lineno,
                    text: line.to_string(),
                });
            }
        }
    }
    Ok(RawDag { names, arcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_parse_keeps_defects() {
        let raw = parse_raw("a -> b\na -> b\nx -> x\nb -> a\nnode lone\n").unwrap();
        assert_eq!(raw.names, ["a", "b", "x", "lone"]);
        assert_eq!(raw.arcs, [(0, 1), (0, 1), (2, 2), (1, 0)]);
        assert!(parse_raw("a -> ").is_err());
    }

    #[test]
    fn parses_the_doc_example() {
        let text = "\
# a tiny build pipeline
node build_a
node build_b
build_a -> test_a
build_b -> test_b
test_a -> package
test_b -> package
";
        let nd = parse_dag(text).unwrap();
        assert_eq!(nd.dag.num_nodes(), 5);
        assert_eq!(nd.dag.num_arcs(), 4);
        assert_eq!(nd.dag.num_sources(), 2);
        assert_eq!(nd.dag.num_sinks(), 1);
        let pkg = nd.by_name["package"];
        assert_eq!(nd.name(pkg), "package");
        assert_eq!(nd.dag.in_degree(pkg), 2);
    }

    #[test]
    fn auto_creates_undeclared_tasks() {
        let nd = parse_dag("a -> b\nb -> c\n").unwrap();
        assert_eq!(nd.dag.num_nodes(), 3);
        assert!(nd.by_name.contains_key("c"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nd = parse_dag("\n# hi\n  \na -> b # inline\n").unwrap();
        assert_eq!(nd.dag.num_arcs(), 1);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            parse_dag("a -> ").unwrap_err(),
            ParseError::BadLine { line: 1, .. }
        ));
        assert!(matches!(
            parse_dag("a b c d").unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn rejects_duplicates_self_loops_cycles() {
        assert!(matches!(
            parse_dag("node x\nnode x\n").unwrap_err(),
            ParseError::DuplicateNode { line: 2, .. }
        ));
        assert!(matches!(
            parse_dag("x -> x\n").unwrap_err(),
            ParseError::SelfLoop { .. }
        ));
        assert_eq!(
            parse_dag("a -> b\nb -> a\n").unwrap_err(),
            ParseError::Cycle
        );
    }

    #[test]
    fn duplicate_arcs_are_deduped() {
        let nd = parse_dag("a -> b\na -> b\n").unwrap();
        assert_eq!(nd.dag.num_arcs(), 1);
    }
}
