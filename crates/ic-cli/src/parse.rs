//! The edge-list dag format, the `--family` spec shared by `serve`,
//! `sim`, and `audit`, and the [`NetOptions`] network-flag parser
//! shared by `serve` and `work`.

use std::collections::HashMap;
use std::fmt;

use ic_dag::{Dag, DagBuilder, NodeId};

/// A parsed dag with its task names.
#[derive(Debug, Clone)]
pub struct NamedDag {
    /// The dag; node labels carry the task names.
    pub dag: Dag,
    /// Task name → node id.
    pub by_name: HashMap<String, NodeId>,
}

impl NamedDag {
    /// The name of node `v`.
    pub fn name(&self, v: NodeId) -> &str {
        self.dag.label(v)
    }

    /// Wrap a constructed dag (e.g. a paper-family instance), naming
    /// its nodes exactly as [`ic_dag::serialize::to_edge_list`] would —
    /// so names round-trip between in-memory use and serialized files.
    pub fn from_dag(dag: Dag) -> NamedDag {
        let names = ic_dag::serialize::edge_list_names(&dag);
        let by_name: HashMap<String, NodeId> =
            dag.node_ids().zip(names).map(|(v, n)| (n, v)).collect();
        NamedDag { dag, by_name }
    }
}

/// Parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line that is neither a comment, a `node` declaration, nor an
    /// arc.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A `node` declaration re-used an existing name.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// An arc from a task to itself.
    SelfLoop {
        /// 1-based line number.
        line: usize,
        /// The task name.
        name: String,
    },
    /// The arcs form a cycle — not a valid computation-dag.
    Cycle,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, text } => {
                write!(
                    f,
                    "line {line}: cannot parse {text:?} (expected `node NAME` or `A -> B`)"
                )
            }
            ParseError::DuplicateNode { line, name } => {
                write!(f, "line {line}: task {name:?} declared twice")
            }
            ParseError::SelfLoop { line, name } => {
                write!(f, "line {line}: task {name:?} depends on itself")
            }
            ParseError::Cycle => write!(f, "the dependencies contain a cycle"),
        }
    }
}

impl std::error::Error for ParseError {}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse the edge-list format (see the crate docs). Task names may
/// contain any non-whitespace characters except `#`; undeclared arc
/// endpoints are created on first mention, in order of appearance.
pub fn parse_dag(text: &str) -> Result<NamedDag, ParseError> {
    let mut b = DagBuilder::new();
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    let mut declared: HashMap<String, usize> = HashMap::new();

    let intern =
        |b: &mut DagBuilder, by_name: &mut HashMap<String, NodeId>, name: &str| match by_name
            .get(name)
        {
            Some(&v) => v,
            None => {
                let v = b.add_node(name);
                by_name.insert(name.to_string(), v);
                v
            }
        };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["node", name] => {
                if declared.insert((*name).to_string(), lineno).is_some() {
                    return Err(ParseError::DuplicateNode {
                        line: lineno,
                        name: (*name).to_string(),
                    });
                }
                intern(&mut b, &mut by_name, name);
            }
            [from, "->", to] => {
                if from == to {
                    return Err(ParseError::SelfLoop {
                        line: lineno,
                        name: (*from).to_string(),
                    });
                }
                let u = intern(&mut b, &mut by_name, from);
                let v = intern(&mut b, &mut by_name, to);
                b.add_arc(u, v)
                    .expect("interned ids are valid; self-loops rejected above");
            }
            _ => {
                return Err(ParseError::BadLine {
                    line: lineno,
                    text: line.to_string(),
                });
            }
        }
    }
    let dag = b.build().map_err(|_| ParseError::Cycle)?;
    Ok(NamedDag { dag, by_name })
}

/// A *raw* parse of the edge-list format: names interned in order of
/// first mention, arcs kept verbatim — duplicates, self-loops, and
/// cycles included. This is the input the `audit` subcommand feeds to
/// `ic-audit`'s graph passes, which exist precisely to flag the defects
/// [`parse_dag`] would reject (or silently dedup).
#[derive(Debug, Clone)]
pub struct RawDag {
    /// Task names, indexed by interned id.
    pub names: Vec<String>,
    /// Every arc as written, as `(from, to)` index pairs.
    pub arcs: Vec<(usize, usize)>,
}

/// Parse the edge-list format without validation (see [`RawDag`]).
/// Only *syntax* errors are rejected; structural defects are the
/// auditor's job.
pub fn parse_raw(text: &str) -> Result<RawDag, ParseError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    let intern = |names: &mut Vec<String>, index: &mut HashMap<String, usize>, name: &str| {
        *index.entry(name.to_string()).or_insert_with(|| {
            names.push(name.to_string());
            names.len() - 1
        })
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["node", name] => {
                intern(&mut names, &mut index, name);
            }
            [from, "->", to] => {
                let u = intern(&mut names, &mut index, from);
                let v = intern(&mut names, &mut index, to);
                arcs.push((u, v));
            }
            _ => {
                return Err(ParseError::BadLine {
                    line: lineno,
                    text: line.to_string(),
                });
            }
        }
    }
    Ok(RawDag { names, arcs })
}

/// Parse a `--family` spec (`mesh:11`, `outtree:2:5`, `butterfly:3`,
/// ...) into a label, the dag, and — when the family carries one — its
/// closed-form IC-optimal schedule from the paper. Shared by `serve`,
/// `sim`, and `audit` so every subcommand accepts the same specs.
pub fn family_dag(spec: &str) -> Result<(String, Dag, Option<ic_sched::Schedule>), String> {
    const MAX_NODES: usize = 1 << 20;
    let parts: Vec<&str> = spec.split(':').collect();
    let arg = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .ok_or_else(|| format!("family spec {spec:?}: expected a positive integer parameter"))
    };
    // Reject oversized specs from the closed-form node count *before*
    // constructing the dag — `outtree:10:9` must error, not attempt a
    // ~10^9-node allocation. `None` means the count overflows usize.
    let cap = |count: Option<usize>| -> Result<(), String> {
        match count {
            Some(n) if n <= MAX_NODES => Ok(()),
            _ => Err(format!(
                "family {spec:?} would have {} nodes; the server caps at {MAX_NODES}",
                count.map_or_else(|| "over 2^64".to_string(), |n| n.to_string())
            )),
        }
    };
    // Complete-tree node count: sum of arity^l for l in 0..=depth.
    let tree_nodes = |arity: usize, depth: usize| -> Option<usize> {
        let mut count = 1usize;
        let mut level = 1usize;
        for _ in 0..depth {
            level = level.checked_mul(arity)?;
            count = count.checked_add(level)?;
        }
        Some(count)
    };
    let mesh_nodes = |levels: usize| {
        levels
            .checked_add(1)
            .and_then(|p| levels.checked_mul(p))
            .map(|v| v / 2)
    };
    let butterfly_nodes = |d: usize| {
        1usize
            .checked_shl(u32::try_from(d).ok()?)
            .and_then(|rows| rows.checked_mul(d + 1))
    };
    let (dag, sched) = match (parts.first().copied(), parts.len()) {
        (Some("mesh"), 2) => {
            let l = arg(1)?;
            cap(mesh_nodes(l))?;
            let mesh = ic_families::mesh::out_mesh(l);
            let s = ic_families::mesh::out_mesh_schedule(&mesh);
            (mesh, Some(s))
        }
        (Some("inmesh"), 2) => {
            let l = arg(1)?;
            cap(mesh_nodes(l))?;
            let mesh = ic_families::mesh::in_mesh(l);
            let s = ic_families::mesh::in_mesh_schedule(&mesh).ok();
            (mesh, s)
        }
        (Some("outtree"), 3) => {
            let (a, d) = (arg(1)?, arg(2)?);
            cap(tree_nodes(a, d))?;
            let t = ic_families::trees::complete_out_tree(a, d);
            let s = ic_families::trees::out_tree_schedule(&t);
            (t, Some(s))
        }
        (Some("intree"), 3) => {
            let (a, d) = (arg(1)?, arg(2)?);
            cap(tree_nodes(a, d))?;
            let t = ic_families::trees::complete_in_tree(a, d);
            let s = ic_families::trees::in_tree_schedule(&t).ok();
            (t, s)
        }
        (Some("butterfly"), 2) => {
            let d = arg(1)?;
            cap(butterfly_nodes(d))?;
            (
                ic_families::butterfly::butterfly(d),
                Some(ic_families::butterfly::butterfly_schedule(d)),
            )
        }
        _ => {
            return Err(format!(
                "unknown family spec {spec:?} (try mesh:L, inmesh:L, outtree:A:D, \
                 intree:A:D, or butterfly:D)"
            ))
        }
    };
    debug_assert!(dag.num_nodes() <= MAX_NODES);
    Ok((spec.to_string(), dag, sched))
}

/// The network flags `serve` and `work` share, parsed in one place.
///
/// Defaults are *sourced from* [`ic_net::ServerConfig::default`] and
/// [`ic_net::WorkerConfig::default`] rather than re-typed here, so the
/// CLI can never drift from the library. The struct is
/// `#[non_exhaustive]` (like the `ic-net` configs it feeds): new knobs
/// may appear without a breaking change — construct via
/// [`NetOptions::new`] and the `accept_*` methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct NetOptions {
    /// `--lease-ms N` (serve): lease duration.
    pub lease_ms: u64,
    /// `--expect N` (serve): registration barrier.
    pub expect: usize,
    /// `--batch N` (serve and work): assignment/request batch cap.
    pub batch: usize,
    /// `--steal-after MS` (serve): straggler re-lease delay.
    pub steal_after_ms: Option<u64>,
    /// `--min-proto V` (serve): lowest accepted protocol version.
    pub min_proto: u32,
    /// `--proto V` (work): highest protocol version spoken.
    pub proto: u32,
    /// `--poll-timeout MS` (serve): upper bound on one reactor poll.
    pub poll_timeout_ms: u64,
    /// `--shards N` (serve): connection-table shard count.
    pub shards: usize,
    /// `--seed S` (serve and work): `None` keeps each side's own
    /// default (they differ deliberately).
    pub seed: Option<u64>,
}

impl Default for NetOptions {
    fn default() -> Self {
        let s = ic_net::ServerConfig::default();
        let w = ic_net::WorkerConfig::default();
        NetOptions {
            lease_ms: s.lease_ms,
            expect: s.expect_workers,
            batch: s.batch,
            steal_after_ms: s.steal_after_ms,
            min_proto: s.min_proto,
            proto: w.proto,
            poll_timeout_ms: s.poll_timeout_ms,
            shards: s.shards,
            seed: None,
        }
    }
}

fn parse_proto(flag: &str, value: &str) -> Result<u32, String> {
    match value.parse() {
        Ok(v @ (ic_net::PROTO_V1 | ic_net::PROTO_V2)) => Ok(v),
        _ => Err(format!(
            "{flag} takes {} or {}",
            ic_net::PROTO_V1,
            ic_net::PROTO_V2
        )),
    }
}

impl NetOptions {
    /// Library defaults; see [`NetOptions::default`].
    pub fn new() -> NetOptions {
        NetOptions::default()
    }

    /// Offer one `serve` flag/value pair. `Ok(true)` consumed it,
    /// `Ok(false)` means the flag is not a shared network flag, and
    /// `Err` is a usage error for a flag this parser owns.
    pub fn accept_serve(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--lease-ms" => match value.parse() {
                Ok(ms) if ms > 0 => self.lease_ms = ms,
                _ => return Err(format!("{flag} takes a positive integer")),
            },
            "--expect" => match value.parse() {
                Ok(n) => self.expect = n,
                Err(_) => return Err(format!("{flag} takes an integer")),
            },
            "--batch" => match value.parse() {
                Ok(n) if n > 0 => self.batch = n,
                _ => return Err(format!("{flag} takes a positive integer")),
            },
            "--steal-after" => match value.parse() {
                Ok(ms) => self.steal_after_ms = Some(ms),
                Err(_) => return Err(format!("{flag} takes milliseconds")),
            },
            "--min-proto" => self.min_proto = parse_proto(flag, value)?,
            "--poll-timeout" => match value.parse() {
                Ok(ms) if ms > 0 => self.poll_timeout_ms = ms,
                _ => return Err(format!("{flag} takes positive milliseconds")),
            },
            "--shards" => match value.parse() {
                Ok(n) if n > 0 => self.shards = n,
                _ => return Err(format!("{flag} takes a positive integer")),
            },
            "--seed" => match value.parse() {
                Ok(s) => self.seed = Some(s),
                Err(_) => return Err(format!("{flag} takes an integer")),
            },
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Offer one `work` flag/value pair (same contract as
    /// [`NetOptions::accept_serve`]).
    pub fn accept_work(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--batch" => match value.parse() {
                Ok(n) if n > 0 => self.batch = n,
                _ => return Err(format!("{flag} takes a positive integer")),
            },
            "--proto" => self.proto = parse_proto(flag, value)?,
            "--seed" => match value.parse() {
                Ok(s) => self.seed = Some(s),
                Err(_) => return Err(format!("{flag} takes an integer")),
            },
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The effective serve seed (flag value, else the server default).
    pub fn serve_seed(&self) -> u64 {
        self.seed
            .unwrap_or_else(|| ic_net::ServerConfig::default().seed)
    }

    /// Assemble the [`ic_net::ServerConfig`] these options describe.
    pub fn server_config(&self) -> ic_net::ServerConfig {
        let mut b = ic_net::ServerConfig::builder()
            .lease_ms(self.lease_ms)
            .expect_workers(self.expect)
            .batch(self.batch)
            .min_proto(self.min_proto)
            .poll_timeout(self.poll_timeout_ms)
            .shards(self.shards)
            .seed(self.serve_seed());
        if let Some(ms) = self.steal_after_ms {
            b = b.steal_after(ms);
        }
        b.build()
    }

    /// Start an [`ic_net::WorkerConfigBuilder`] with the shared flags
    /// applied; `work`-specific flags layer on top.
    pub fn worker_builder(&self) -> ic_net::WorkerConfigBuilder {
        let mut b = ic_net::WorkerConfig::builder()
            .batch(u64::try_from(self.batch).unwrap_or(u64::MAX))
            .proto(self.proto);
        if let Some(s) = self.seed {
            b = b.seed(s);
        }
        b
    }
}

/// A `--family` spec as a [`NamedDag`] (names as the serializer would
/// write them) — what `sim --family` runs and `audit --family` lints.
pub fn named_family_dag(
    spec: &str,
) -> Result<(String, NamedDag, Option<ic_sched::Schedule>), String> {
    let (label, dag, sched) = family_dag(spec)?;
    Ok((label, NamedDag::from_dag(dag), sched))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_family_dags_have_unique_serializer_names() {
        let (label, nd, sched) = named_family_dag("mesh:4").unwrap();
        assert_eq!(label, "mesh:4");
        assert_eq!(nd.by_name.len(), nd.dag.num_nodes());
        let sched = sched.expect("out-meshes carry a closed-form schedule");
        for &v in sched.order() {
            let name = nd
                .dag
                .node_ids()
                .zip(ic_dag::serialize::edge_list_names(&nd.dag))
                .find(|&(u, _)| u == v)
                .map(|(_, n)| n)
                .unwrap();
            assert_eq!(nd.by_name[&name], v, "names must round-trip");
        }
    }

    #[test]
    fn raw_parse_keeps_defects() {
        let raw = parse_raw("a -> b\na -> b\nx -> x\nb -> a\nnode lone\n").unwrap();
        assert_eq!(raw.names, ["a", "b", "x", "lone"]);
        assert_eq!(raw.arcs, [(0, 1), (0, 1), (2, 2), (1, 0)]);
        assert!(parse_raw("a -> ").is_err());
    }

    #[test]
    fn parses_the_doc_example() {
        let text = "\
# a tiny build pipeline
node build_a
node build_b
build_a -> test_a
build_b -> test_b
test_a -> package
test_b -> package
";
        let nd = parse_dag(text).unwrap();
        assert_eq!(nd.dag.num_nodes(), 5);
        assert_eq!(nd.dag.num_arcs(), 4);
        assert_eq!(nd.dag.num_sources(), 2);
        assert_eq!(nd.dag.num_sinks(), 1);
        let pkg = nd.by_name["package"];
        assert_eq!(nd.name(pkg), "package");
        assert_eq!(nd.dag.in_degree(pkg), 2);
    }

    #[test]
    fn auto_creates_undeclared_tasks() {
        let nd = parse_dag("a -> b\nb -> c\n").unwrap();
        assert_eq!(nd.dag.num_nodes(), 3);
        assert!(nd.by_name.contains_key("c"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nd = parse_dag("\n# hi\n  \na -> b # inline\n").unwrap();
        assert_eq!(nd.dag.num_arcs(), 1);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            parse_dag("a -> ").unwrap_err(),
            ParseError::BadLine { line: 1, .. }
        ));
        assert!(matches!(
            parse_dag("a b c d").unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn rejects_duplicates_self_loops_cycles() {
        assert!(matches!(
            parse_dag("node x\nnode x\n").unwrap_err(),
            ParseError::DuplicateNode { line: 2, .. }
        ));
        assert!(matches!(
            parse_dag("x -> x\n").unwrap_err(),
            ParseError::SelfLoop { .. }
        ));
        assert_eq!(
            parse_dag("a -> b\nb -> a\n").unwrap_err(),
            ParseError::Cycle
        );
    }

    #[test]
    fn duplicate_arcs_are_deduped() {
        let nd = parse_dag("a -> b\na -> b\n").unwrap();
        assert_eq!(nd.dag.num_arcs(), 1);
    }

    #[test]
    fn net_options_track_the_library_defaults() {
        let net = NetOptions::new();
        let cfg = net.server_config();
        let lib = ic_net::ServerConfig::default();
        assert_eq!(cfg.lease_ms, lib.lease_ms);
        assert_eq!(cfg.batch, lib.batch);
        assert_eq!(cfg.steal_after_ms, lib.steal_after_ms);
        assert_eq!(cfg.min_proto, lib.min_proto);
        assert_eq!(cfg.poll_timeout_ms, lib.poll_timeout_ms);
        assert_eq!(cfg.shards, lib.shards);
        assert_eq!(cfg.seed, lib.seed);
        // Worker side: untouched options keep the worker's own seed.
        let w = net.worker_builder().build();
        let wlib = ic_net::WorkerConfig::default();
        assert_eq!(w.batch, wlib.batch);
        assert_eq!(w.proto, wlib.proto);
        assert_eq!(w.seed, wlib.seed);
    }

    #[test]
    fn net_options_consume_shared_flags_per_side() {
        let mut net = NetOptions::new();
        assert_eq!(net.accept_serve("--lease-ms", "250"), Ok(true));
        assert_eq!(net.accept_serve("--batch", "4"), Ok(true));
        assert_eq!(net.accept_serve("--steal-after", "75"), Ok(true));
        assert_eq!(net.accept_serve("--poll-timeout", "2"), Ok(true));
        assert_eq!(net.accept_serve("--shards", "32"), Ok(true));
        assert_eq!(net.accept_serve("--seed", "9"), Ok(true));
        assert_eq!(net.accept_serve("--listen", "x"), Ok(false));
        let cfg = net.server_config();
        assert_eq!(cfg.lease_ms, 250);
        assert_eq!(cfg.batch, 4);
        assert_eq!(cfg.steal_after_ms, Some(75));
        assert_eq!(cfg.poll_timeout_ms, 2);
        assert_eq!(cfg.shards, 32);
        assert_eq!(cfg.seed, 9);

        let mut net = NetOptions::new();
        assert_eq!(net.accept_work("--batch", "8"), Ok(true));
        assert_eq!(net.accept_work("--proto", "1"), Ok(true));
        assert_eq!(net.accept_work("--connect", "x"), Ok(false));
        // `--min-proto` is a serve flag, not a work flag.
        assert_eq!(net.accept_work("--min-proto", "2"), Ok(false));
        let w = net.worker_builder().build();
        assert_eq!(w.batch, 8);
        assert_eq!(w.proto, ic_net::PROTO_V1);
    }

    #[test]
    fn net_options_reject_bad_values_with_usage_errors() {
        let mut net = NetOptions::new();
        assert!(net.accept_serve("--lease-ms", "0").is_err());
        assert!(net.accept_serve("--batch", "x").is_err());
        assert!(net.accept_serve("--min-proto", "3").is_err());
        assert!(net.accept_serve("--poll-timeout", "0").is_err());
        assert!(net.accept_serve("--shards", "0").is_err());
        assert!(net.accept_work("--proto", "0").is_err());
        assert!(net.accept_work("--seed", "many").is_err());
    }
}
