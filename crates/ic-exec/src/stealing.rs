//! A work-stealing executor variant on per-worker deques.
//!
//! The central-queue executor in the crate root follows the schedule's
//! priorities strictly but serializes all task hand-offs through one
//! lock. This variant trades strict priority order for scalability:
//! each worker owns a LIFO deque (locality: a task's enabled children
//! run on the enabling worker), a global injector seeds the sources in
//! schedule order, and idle workers steal from the *front* of their
//! victims' deques (FIFO steals take the oldest, widest work, as in
//! classic work-stealing runtimes). Dependencies are still enforced
//! exactly — a node is pushed only when its last parent's worker
//! decrements its counter to zero — and the `AcqRel` decrement gives
//! the same happens-before guarantee as the locked executor, so
//! `OnceLock` value flow remains sound.
//!
//! The deques are `Mutex<VecDeque>`s rather than lock-free
//! Chase–Lev deques: the build environment is offline (no `crossbeam`),
//! and the workspace forbids `unsafe`, so we keep the work-stealing
//! *scheduling discipline* while paying one uncontended per-deque lock
//! per push/pop — contention stays low because workers touch distinct
//! deques except while stealing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ic_dag::{Dag, NodeId};
use ic_sched::Schedule;
use ic_sim::trace::{TraceEvent, TraceHeader, TraceSink};

use crate::ExecReport;

/// A shared, mutex-serialized event log. The lock is the sequencing
/// point: a completion is logged *before* the child counters are
/// decremented, so in log order every allocation of a task appears
/// after the completions of all its parents — exactly the invariant
/// the trace auditor replays.
struct EventLog {
    events: Mutex<Vec<TraceEvent>>,
    start: Instant,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            events: Mutex::new(Vec::new()),
            start: Instant::now(),
        }
    }

    fn allocated(&self, client: usize, task: NodeId) {
        let time = self.start.elapsed().as_secs_f64();
        let mut ev = self.events.lock().expect("event log lock");
        let step = ev.len() as u64;
        ev.push(TraceEvent::Allocated {
            step,
            time,
            client,
            task,
            pool: None,
        });
    }

    fn completed(&self, client: usize, task: NodeId) {
        let time = self.start.elapsed().as_secs_f64();
        let mut ev = self.events.lock().expect("event log lock");
        let step = ev.len() as u64;
        ev.push(TraceEvent::Completed {
            step,
            time,
            client,
            task,
            pool: None,
        });
    }
}

/// A stack of pending tasks owned by one worker: the owner pushes and
/// pops at the back (LIFO, for locality); thieves steal from the front.
struct Deque {
    tasks: Mutex<VecDeque<NodeId>>,
}

impl Deque {
    fn new() -> Self {
        Deque {
            tasks: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, v: NodeId) {
        self.tasks.lock().expect("deque lock").push_back(v);
    }

    fn pop(&self) -> Option<NodeId> {
        self.tasks.lock().expect("deque lock").pop_back()
    }

    fn steal(&self) -> Option<NodeId> {
        self.tasks.lock().expect("deque lock").pop_front()
    }
}

/// Execute every task of `dag` on `workers` threads with work-stealing
/// scheduling. The schedule only orders the initial sources (and serves
/// as documentation of intent); once running, locality wins. `task` is
/// invoked exactly once per node; for any arc `(u → v)`, `task(u)`
/// *happens-before* `task(v)`.
///
/// # Panics
/// Panics if `workers == 0` or the schedule does not cover the dag.
pub fn execute_stealing<F>(dag: &Dag, schedule: &Schedule, workers: usize, task: F) -> ExecReport
where
    F: Fn(NodeId) + Sync,
{
    match run_stealing(dag, schedule, workers, task, None) {
        Ok(report) => report,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// [`execute_stealing`], additionally streaming the run's execution
/// trace into `sink` in the `ic_sim::trace` event model: one
/// `Allocated` when a worker takes a task, one `Completed` when the
/// task body returns. Workers play the role of clients; timestamps are
/// elapsed wall-clock seconds; the pool field is absent (the ELIGIBLE
/// pool is sharded across worker deques). The resulting trace replays
/// cleanly under `ic-prio audit --schedule` — eligibility is enforced
/// by the counter protocol, and the log ordering makes that visible.
///
/// If a task panics, the partial trace captured so far is flushed to
/// `sink` before the panic is propagated (the auditor then reports the
/// truncation).
///
/// # Panics
/// Panics if `workers == 0` or the schedule does not cover the dag.
pub fn execute_stealing_traced<F>(
    dag: &Dag,
    schedule: &Schedule,
    workers: usize,
    task: F,
    sink: &mut dyn TraceSink,
) -> ExecReport
where
    F: Fn(NodeId) + Sync,
{
    sink.header(&TraceHeader::for_run(dag, workers, 0, "WORK-STEALING"));
    let log = EventLog::new();
    let result = run_stealing(dag, schedule, workers, task, Some(&log));
    for ev in log.events.into_inner().expect("event log lock") {
        sink.record(&ev);
    }
    match result {
        Ok(report) => report,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn run_stealing<F>(
    dag: &Dag,
    schedule: &Schedule,
    workers: usize,
    task: F,
    log: Option<&EventLog>,
) -> Result<ExecReport, Box<dyn std::any::Any + Send>>
where
    F: Fn(NodeId) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    assert_eq!(
        schedule.len(),
        dag.num_nodes(),
        "schedule must cover the dag"
    );
    let n = dag.num_nodes();

    let injector = Deque::new();
    for &v in schedule.order() {
        if dag.is_source(v) {
            injector.push(v);
        }
    }
    let missing: Vec<AtomicU32> = dag
        .node_ids()
        .map(|v| AtomicU32::new(dag.in_degree(v) as u32))
        .collect();
    let remaining = AtomicUsize::new(n);
    let running = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let locals: Vec<Deque> = (0..workers).map(|_| Deque::new()).collect();

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let injector = &injector;
            let locals = &locals;
            let missing = &missing;
            let remaining = &remaining;
            let running = &running;
            let peak = &peak;
            let task = &task;
            let poisoned = &poisoned;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                let local = &locals[me];
                let mut backoff = 0u32;
                loop {
                    if remaining.load(Ordering::Acquire) == 0 || poisoned.load(Ordering::Acquire) {
                        return;
                    }
                    let found = local.pop().or_else(|| injector.steal()).or_else(|| {
                        locals
                            .iter()
                            .enumerate()
                            .find_map(|(i, d)| if i == me { None } else { d.steal() })
                    });
                    let Some(v) = found else {
                        // Nothing visible: back off briefly and re-check.
                        backoff = (backoff + 1).min(6);
                        if backoff > 3 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                        continue;
                    };
                    backoff = 0;
                    if let Some(log) = log {
                        log.allocated(me, v);
                    }
                    let now_running = running.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(now_running, Ordering::Relaxed);

                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(v)));
                    if let Err(payload) = outcome {
                        panic_payload
                            .lock()
                            .expect("payload lock")
                            .get_or_insert(payload);
                        poisoned.store(true, Ordering::Release);
                        running.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }

                    // Log the completion before any child counter drops:
                    // the log mutex then orders it ahead of every
                    // allocation it enables.
                    if let Some(log) = log {
                        log.completed(me, v);
                    }
                    for &c in dag.children(v) {
                        // AcqRel: the last decrement synchronizes all
                        // parents' task effects into the child's runner.
                        if missing[c.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                            local.push(c);
                        }
                    }
                    running.fetch_sub(1, Ordering::Relaxed);
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
            });
        }
    });
    let wall_time = start.elapsed();

    if let Some(payload) = panic_payload.lock().expect("payload lock").take() {
        return Err(payload);
    }
    debug_assert_eq!(remaining.load(Ordering::Relaxed), 0);
    Ok(ExecReport {
        tasks_run: n,
        peak_parallelism: peak.load(Ordering::Relaxed),
        wall_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use std::sync::atomic::AtomicUsize;
    use std::sync::OnceLock;

    #[test]
    fn runs_every_task_once() {
        let g = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5), (5, 6)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let counts: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        let r = execute_stealing(&g, &s, 4, |v| {
            counts[v.index()].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r.tasks_run, 7);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn value_flow_is_correct_under_stealing() {
        // A complete binary in-tree summing 32 leaves: the dual of the
        // BFS-numbered out-tree (63 nodes; leaves are ids 31..63, the
        // root is id 0).
        let out = {
            let mut b = ic_dag::DagBuilder::new();
            b.add_nodes(63);
            for i in 0..31usize {
                b.add_arc(NodeId::new(i), NodeId::new(2 * i + 1)).unwrap();
                b.add_arc(NodeId::new(i), NodeId::new(2 * i + 2)).unwrap();
            }
            b.build().unwrap()
        };
        let g = ic_dag::dual(&out);
        let s = Schedule::in_id_order(&g);
        for workers in [1usize, 2, 8] {
            let cells: Vec<OnceLock<u64>> = (0..63).map(|_| OnceLock::new()).collect();
            execute_stealing(&g, &s, workers, |v| {
                let val = if g.is_source(v) {
                    v.index() as u64
                } else {
                    g.parents(v)
                        .iter()
                        .map(|p| cells[p.index()].get().unwrap())
                        .sum()
                };
                cells[v.index()].set(val).unwrap();
            });
            let expect: u64 = (31..63).sum();
            assert_eq!(cells[0].get().copied(), Some(expect), "workers = {workers}");
        }
    }

    #[test]
    fn matches_locked_executor_results() {
        let g = from_arcs(
            10,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 7),
                (7, 8),
                (7, 9),
            ],
        )
        .unwrap();
        let s = Schedule::in_id_order(&g);
        let run_locked = {
            let counter = AtomicUsize::new(0);
            crate::execute(&g, &s, 3, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            counter.load(Ordering::Relaxed)
        };
        let run_stealing = {
            let counter = AtomicUsize::new(0);
            execute_stealing(&g, &s, 3, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            counter.load(Ordering::Relaxed)
        };
        assert_eq!(run_locked, run_stealing);
        assert_eq!(run_locked, 10);
    }

    #[test]
    fn single_task_dag() {
        let g = from_arcs(1, &[]).unwrap();
        let s = Schedule::in_id_order(&g);
        let r = execute_stealing(&g, &s, 4, |_| {});
        assert_eq!(r.tasks_run, 1);
    }

    #[test]
    fn traced_run_replays_cleanly() {
        use ic_sim::trace::MemorySink;
        let g = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5), (5, 6)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let mut sink = MemorySink::new();
        let r = execute_stealing_traced(&g, &s, 4, |_| {}, &mut sink);
        assert_eq!(r.tasks_run, 7);
        let trace = sink.into_trace().expect("header recorded");
        assert_eq!(trace.header.policy, "WORK-STEALING");
        assert_eq!(trace.header.clients, 4);
        assert_eq!(trace.allocation_order().len(), 7);
        assert_eq!(trace.completion_order().len(), 7);
        // Log order respects eligibility: every completion precedes the
        // allocations it enables, so replaying the completion counters
        // never goes negative.
        let mut missing: Vec<usize> = g.node_ids().map(|v| g.in_degree(v)).collect();
        for ev in &trace.events {
            match *ev {
                ic_sim::TraceEvent::Allocated { task, .. } => {
                    assert_eq!(missing[task.index()], 0, "allocated before ELIGIBLE");
                }
                ic_sim::TraceEvent::Completed { task, .. } => {
                    for &c in g.children(task) {
                        missing[c.index()] -= 1;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    #[should_panic(expected = "stolen task exploded")]
    fn task_panic_propagates_without_deadlock() {
        let mut arcs = Vec::new();
        for i in 1..=8u32 {
            arcs.push((0, i));
        }
        let g = from_arcs(9, &arcs).unwrap();
        let s = Schedule::in_id_order(&g);
        execute_stealing(&g, &s, 4, |v| {
            if v.index() == 5 {
                panic!("stolen task exploded");
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    }
}
