//! # `ic-exec` — a multithreaded dag executor driven by IC schedules
//!
//! The theory's schedules rank ELIGIBLE tasks; this crate turns that
//! ranking into an actual multicore execution: a pool of worker threads
//! repeatedly takes the highest-priority ELIGIBLE task, runs the user's
//! closure for it, and releases the children it enables. Dependencies
//! are enforced by construction — a task's closure runs strictly after
//! all of its parents' closures (with a happens-before edge through the
//! pool lock), so per-node results can be published through
//! `std::sync::OnceLock` cells without further synchronization.
//!
//! ```
//! use ic_dag::builder::from_arcs;
//! use ic_sched::Schedule;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
//! let schedule = Schedule::in_id_order(&diamond);
//! let counter = AtomicUsize::new(0);
//! let report = ic_exec::execute(&diamond, &schedule, 2, |_task| {
//!     counter.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(report.tasks_run, 4);
//! assert_eq!(counter.load(Ordering::Relaxed), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stealing;

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use ic_dag::{Dag, NodeId};
use ic_sched::Schedule;
use std::sync::{Condvar, Mutex};

/// Outcome of a parallel dag execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Number of task closures run (== the dag's node count).
    pub tasks_run: usize,
    /// Peak number of tasks running simultaneously.
    pub peak_parallelism: usize,
    /// Wall-clock duration of the whole execution.
    pub wall_time: Duration,
}

struct PoolState {
    /// ELIGIBLE tasks, min-heap by schedule priority.
    ready: BinaryHeap<Reverse<(usize, NodeId)>>,
    missing_parents: Vec<u32>,
    remaining: usize,
    running: usize,
    peak: usize,
    /// Set when a task panicked: every worker drains and exits, and
    /// [`execute`] re-raises the panic on the caller's thread.
    poisoned: bool,
}

/// Execute every task of `dag` on `workers` threads, selecting among
/// ELIGIBLE tasks by the priority `schedule` assigns (earlier in the
/// schedule = allocated first). `task` is invoked exactly once per node;
/// for any arc `(u → v)`, `task(u)` *happens-before* `task(v)`.
///
/// # Panics
/// Panics if `workers == 0` or the schedule does not cover the dag.
pub fn execute<F>(dag: &Dag, schedule: &Schedule, workers: usize, task: F) -> ExecReport
where
    F: Fn(NodeId) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    assert_eq!(
        schedule.len(),
        dag.num_nodes(),
        "schedule must cover the dag"
    );
    let n = dag.num_nodes();
    let mut priority = vec![usize::MAX; n];
    for (i, &v) in schedule.order().iter().enumerate() {
        priority[v.index()] = i;
    }

    let mut ready = BinaryHeap::new();
    let mut missing = vec![0u32; n];
    for v in dag.node_ids() {
        missing[v.index()] = dag.in_degree(v) as u32;
        if dag.is_source(v) {
            ready.push(Reverse((priority[v.index()], v)));
        }
    }
    let state = Mutex::new(PoolState {
        ready,
        missing_parents: missing,
        remaining: n,
        running: 0,
        peak: 0,
        poisoned: false,
    });
    let work_available = Condvar::new();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(
                    dag,
                    &priority,
                    &state,
                    &work_available,
                    &task,
                    &panic_payload,
                )
            });
        }
    });
    let wall_time = start.elapsed();

    if let Some(payload) = panic_payload.lock().unwrap().take() {
        std::panic::resume_unwind(payload);
    }
    let st = state.lock().unwrap();
    debug_assert_eq!(st.remaining, 0, "all tasks must have run");
    ExecReport {
        tasks_run: n,
        peak_parallelism: st.peak,
        wall_time,
    }
}

fn worker_loop<F>(
    dag: &Dag,
    priority: &[usize],
    state: &Mutex<PoolState>,
    work_available: &Condvar,
    task: &F,
    panic_payload: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
) where
    F: Fn(NodeId) + Sync,
{
    loop {
        let v = {
            let mut st = state.lock().unwrap();
            loop {
                if st.remaining == 0 || st.poisoned {
                    return;
                }
                if let Some(Reverse((_, v))) = st.ready.pop() {
                    st.running += 1;
                    st.peak = st.peak.max(st.running);
                    break v;
                }
                // No ready work: if nothing is running either, we are
                // done (or deadlocked, which a valid dag precludes).
                if st.running == 0 {
                    return;
                }
                st = work_available.wait(st).unwrap();
            }
        };

        // Contain task panics: poison the pool so every worker exits,
        // then let `execute` re-raise on the caller's thread.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(v)));
        if let Err(payload) = outcome {
            let mut st = state.lock().unwrap();
            st.poisoned = true;
            st.running -= 1;
            panic_payload.lock().unwrap().get_or_insert(payload);
            work_available.notify_all();
            return;
        }

        let mut st = state.lock().unwrap();
        st.running -= 1;
        st.remaining -= 1;
        let mut enabled = 0usize;
        for &c in dag.children(v) {
            st.missing_parents[c.index()] -= 1;
            if st.missing_parents[c.index()] == 0 {
                st.ready.push(Reverse((priority[c.index()], c)));
                enabled += 1;
            }
        }
        if st.remaining == 0 || enabled > 0 {
            // Wake everyone on completion: sleepers must re-check the
            // termination condition as well as the pool.
            work_available.notify_all();
        } else if st.running == 0 && st.ready.is_empty() {
            work_available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    #[test]
    fn runs_every_task_once() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let counts: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        let r = execute(&g, &s, 4, |v| {
            counts[v.index()].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r.tasks_run, 6);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn respects_dependencies_for_value_flow() {
        // Compute Fibonacci-ish values through a chain using OnceLock
        // cells; children read parents' cells, which must be populated.
        let g = from_arcs(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let cells: Vec<OnceLock<u64>> = (0..8).map(|_| OnceLock::new()).collect();
        execute(&g, &s, 3, |v| {
            let val = if v.index() == 0 {
                1
            } else {
                cells[v.index() - 1]
                    .get()
                    .copied()
                    .expect("parent ran first")
                    * 2
            };
            cells[v.index()].set(val).expect("single execution");
        });
        assert_eq!(cells[7].get().copied(), Some(128));
    }

    #[test]
    fn diamond_parents_before_child() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let cells: Vec<OnceLock<u64>> = (0..4).map(|_| OnceLock::new()).collect();
        execute(&g, &s, 4, |v| {
            let val = match v.index() {
                0 => 1,
                1 | 2 => cells[0].get().unwrap() + v.index() as u64,
                _ => cells[1].get().unwrap() + cells[2].get().unwrap(),
            };
            cells[v.index()].set(val).unwrap();
        });
        assert_eq!(cells[3].get().copied(), Some(2 + 3));
    }

    #[test]
    fn single_worker_matches_schedule_order() {
        let g = from_arcs(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let order = Mutex::new(Vec::new());
        execute(&g, &s, 1, |v| order.lock().unwrap().push(v));
        assert_eq!(&*order.lock().unwrap(), s.order());
    }

    #[test]
    fn wide_dag_reaches_parallelism() {
        // 1 source fanning to 16 independent tasks: with 4 workers the
        // peak parallelism should exceed 1 (scheduling is nondeterministic,
        // but with a small sleep the workers overlap reliably).
        let mut arcs = Vec::new();
        for i in 1..=16u32 {
            arcs.push((0, i));
        }
        let g = from_arcs(17, &arcs).unwrap();
        let s = Schedule::in_id_order(&g);
        let r = execute(&g, &s, 4, |_| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(r.peak_parallelism > 1, "peak was {}", r.peak_parallelism);
    }

    #[test]
    fn empty_dag() {
        let g = from_arcs(0, &[]).unwrap();
        let s = Schedule::in_id_order(&g);
        let r = execute(&g, &s, 2, |_| {});
        assert_eq!(r.tasks_run, 0);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn task_panic_propagates_without_deadlock() {
        // A wide dag: many workers are active/waiting when one task
        // panics; the pool must drain and re-raise, not hang.
        let mut arcs = Vec::new();
        for i in 1..=8u32 {
            arcs.push((0, i));
        }
        let g = from_arcs(9, &arcs).unwrap();
        let s = Schedule::in_id_order(&g);
        execute(&g, &s, 4, |v| {
            if v.index() == 3 {
                panic!("task 3 exploded");
            }
            std::thread::sleep(Duration::from_millis(1));
        });
    }
}
