//! The networked IC task server.
//!
//! [`Server`] is the live counterpart of the `ic-sim` event loop: it
//! listens on TCP, registers volatile workers, and allocates ELIGIBLE
//! tasks of one dag through any [`AllocationPolicy`] until the dag
//! completes. The volatile-client reality the paper's server faces
//! (§1: clients "may be slow, may die") is handled with five
//! mechanisms:
//!
//! * **leases** — an allocated task must be completed or heartbeat
//!   within `lease_ms`, or the server declares it lost and reallocates;
//! * **exponential-backoff reallocation** — a task failed `k` times
//!   waits `backoff_base_ms · 2^min(k-1, 6)` before re-entering the
//!   pool, so a poison task cannot monopolize allocations;
//! * **resumable leases** (v2) — each `welcome` carries a single-use
//!   resume token; a worker whose TCP connection drops mid-lease can
//!   reconnect with `hello{resume}` and keep its leases (heartbeat
//!   clocks restored). Lease expiry is the fallback: a worker that
//!   never resumes still forfeits on the usual clock;
//! * **straggler re-lease** (v2, opt-in via `steal_after_ms`) — when
//!   the pool is empty but leases are outstanding (the drain barrier),
//!   an idle worker is granted a *speculative* duplicate lease on the
//!   longest-outstanding task. First completion wins; the stale
//!   duplicates are revoked;
//! * **duplicate-result resolution** — a late or duplicate report (the
//!   lease already expired, or another worker already completed the
//!   task) is acknowledged with `accepted = false` and changes nothing.
//!
//! Every decision is emitted through the [`TraceSink`] event model in
//! server order, so a finished run's JSONL trace replays clean under
//! `ic-prio audit --schedule`: a lease expiry or failure report is a
//! `Failed` event (the task legally re-enters the pool only when its
//! *last* holder falls), a resume is a `resume` event per held lease, a
//! speculative grant is a `spec` event (the pool does not shrink — the
//! task was already allocated), a cancelled duplicate is a `revoke`
//! event after the winning completion, and rejected duplicate reports
//! emit nothing. The recorded pool size counts tasks waiting out their
//! backoff (they are ELIGIBLE and unallocated — exactly what the
//! auditor reconstructs).
//!
//! # Protocol versions
//!
//! `hello` carries the highest protocol version the worker speaks;
//! `welcome` answers with the negotiated version (the minimum of both
//! sides'). Resume tokens, batched assignment, and speculative leases
//! are only offered to v2 peers; a v1 peer sees exactly the v1 wire
//! surface. A peer below [`ServerConfig::min_proto`] is refused with a
//! typed `error{code: "unsupported"}` frame.
//!
//! # Threading
//!
//! One handler thread per connection speaks the wire protocol and
//! forwards each request over an mpsc channel to the *coordinator*,
//! which runs inline in [`Server::run`] on the caller's thread (so the
//! trace sink needs neither `Send` nor `'static`). All scheduling
//! state — the [`ExecState`], the pool, the lease table, the backoff
//! queue — lives only in the coordinator; handler threads are dumb
//! pipes. Each handler remembers the *epoch* of its registration; a
//! `Gone` from a superseded connection (the worker already resumed on
//! a new socket) is ignored.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use ic_dag::rng::XorShift64;
use ic_dag::{Dag, NodeId};
use ic_sched::batched::fill_round;
use ic_sched::eligibility::ExecState;
use ic_sched::policy::AllocationPolicy;
use ic_sim::trace::{TraceEvent, TraceHeader, TraceSink, WorkerParams};

use crate::wire::{
    read_msg, write_msg, Message, ERR_BAD_RESUME, ERR_UNSUPPORTED, PROTO_CURRENT, PROTO_V1,
    PROTO_V2,
};

/// Tunables of a serving run. Construct with [`ServerConfig::builder`]
/// (the struct is `#[non_exhaustive]`: new knobs may appear without a
/// breaking change).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Lease duration: a leased task neither completed nor heartbeat
    /// within this window is declared lost and reallocated.
    pub lease_ms: u64,
    /// Base backoff before a failed task re-enters the pool; doubles
    /// per failure up to `2^6` times this value.
    pub backoff_base_ms: u64,
    /// Registration barrier: serving (and the trace header) waits until
    /// this many workers have said hello, so the header records their
    /// declared parameters. `0` starts serving immediately — the header
    /// is then written before anyone registers, so it carries no worker
    /// parameters and replay timing from the header is unavailable
    /// (see [`ServeReport::late_workers`]).
    pub expect_workers: usize,
    /// Suggested retry delay sent with `Wait` replies.
    pub wait_ms: u64,
    /// Seed recorded in the trace header, and the source of resume
    /// tokens (the server draws no other randomness).
    pub seed: u64,
    /// Maximum tasks per `assign`. The actual batch is the minimum of
    /// this and the `max` the worker's `request` asked for; v1 workers
    /// always get one task.
    pub batch: usize,
    /// Straggler re-lease: when the pool is empty and a primary lease
    /// has been outstanding this long, an idle v2 worker gets a
    /// speculative duplicate of it. `None` (the default) disables
    /// stealing.
    pub steal_after_ms: Option<u64>,
    /// Lowest protocol version this server accepts; a `hello` below it
    /// is refused with a typed `error{code: "unsupported"}` frame.
    pub min_proto: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            lease_ms: 500,
            backoff_base_ms: 25,
            expect_workers: 0,
            wait_ms: 25,
            seed: 0x1C5EED,
            batch: 1,
            steal_after_ms: None,
            min_proto: PROTO_V1,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]; every knob defaults as in
/// [`ServerConfig::default`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Lease duration in milliseconds.
    pub fn lease_ms(mut self, ms: u64) -> Self {
        self.cfg.lease_ms = ms;
        self
    }

    /// Base reallocation backoff in milliseconds.
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.cfg.backoff_base_ms = ms;
        self
    }

    /// Registration barrier (0 = serve immediately).
    pub fn expect_workers(mut self, n: usize) -> Self {
        self.cfg.expect_workers = n;
        self
    }

    /// Suggested retry delay for `Wait` replies, in milliseconds.
    pub fn wait_ms(mut self, ms: u64) -> Self {
        self.cfg.wait_ms = ms;
        self
    }

    /// Trace-header seed and resume-token source.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Maximum tasks per `assign` (clamped to at least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.cfg.batch = batch.max(1);
        self
    }

    /// Enable straggler re-lease after a lease has been outstanding
    /// `ms` milliseconds at the drain barrier.
    pub fn steal_after(mut self, ms: u64) -> Self {
        self.cfg.steal_after_ms = Some(ms);
        self
    }

    /// Lowest accepted protocol version.
    pub fn min_proto(mut self, proto: u32) -> Self {
        self.cfg.min_proto = proto;
        self
    }

    /// Finish the build.
    pub fn build(self) -> ServerConfig {
        self.cfg
    }
}

/// Summary of a completed serving run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeReport {
    /// Tasks completed (equals the dag's node count on success).
    pub completions: usize,
    /// Reallocation events: lease expiries, worker-reported failures,
    /// and mid-lease disconnects (including forfeited duplicates).
    pub failures: usize,
    /// Allocation decisions made (primary leases only; speculative
    /// duplicates count under [`ServeReport::steals`]).
    pub allocations: usize,
    /// Workers that registered over the run's lifetime.
    pub workers_registered: usize,
    /// Workers that registered *after* the trace header was written
    /// (always all of them when `expect_workers` is 0, since the header
    /// then goes out before serving). They appear in events but not in
    /// the header's `workers` list, so header-based replay timing is
    /// incomplete — set `expect_workers` to avoid this.
    pub late_workers: usize,
    /// Successful reconnects: a worker presented a valid resume token
    /// and kept its slot (and any held leases).
    pub resumes: usize,
    /// Speculative duplicate leases granted at the drain barrier.
    pub steals: usize,
    /// Stale duplicate leases cancelled after a winning completion.
    pub revokes: usize,
    /// Wall-clock seconds from serving start to dag completion.
    pub makespan: f64,
}

/// What the coordinator answers a registration with: the frame to
/// relay, plus the slot and epoch the handler needs for `Gone`.
struct Registered {
    msg: Message,
    worker: usize,
    epoch: u64,
}

/// What a handler thread asks the coordinator to do. Each carries a
/// reply channel; `Gone` is fire-and-forget.
enum Req {
    Register {
        id: String,
        speed: f64,
        proto: u32,
        resume: Option<String>,
        reply: Sender<Registered>,
    },
    Want {
        worker: usize,
        max: u64,
        reply: Sender<Message>,
    },
    Done {
        worker: usize,
        task: u64,
        ok: bool,
        reply: Sender<Message>,
    },
    Beat {
        worker: usize,
        task: u64,
        reply: Sender<Message>,
    },
    Gone {
        worker: usize,
        epoch: u64,
    },
}

/// A bound, not-yet-running IC task server.
pub struct Server<'a> {
    dag: &'a Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: ServerConfig,
    listener: TcpListener,
}

impl<'a> Server<'a> {
    /// Bind a listener. The dag and policy are borrowed for the
    /// server's lifetime; [`Server::run`] drives everything inline.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dag: &'a Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: ServerConfig,
    ) -> io::Result<Server<'a>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            dag,
            policy,
            cfg,
            listener,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the dag completes, streaming every decision into
    /// `sink` (header first, then events in server order). Returns once
    /// all tasks are executed and connected workers have had a drain
    /// grace period to pick up their `Drain` replies.
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`].
    pub fn run(self, sink: &mut dyn TraceSink) -> io::Result<ServeReport> {
        self.policy.prepare(self.dag);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = channel::<Req>();
        let mut coord = Coordinator::new(self.dag, self.policy, &self.cfg, sink);

        let read_timeout = Duration::from_millis(self.cfg.lease_ms.saturating_mul(4).max(2_000));
        let lease_ms = self.cfg.lease_ms;
        let drain_grace = Duration::from_millis(lease_ms.max(250));
        let mut done_at: Option<Instant> = None;

        loop {
            // Admit new connections (non-blocking).
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            handle_conn(stream, tx, read_timeout);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Serve queued requests; park briefly when idle.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(req) => {
                    coord.serve(req);
                    while let Ok(req) = rx.try_recv() {
                        coord.serve(req);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
            }

            coord.expire_leases();

            if coord.is_complete() {
                let now = Instant::now();
                let reached = *done_at.get_or_insert(now);
                if coord.connected == 0 || now.duration_since(reached) >= drain_grace {
                    break;
                }
            }
        }
        Ok(coord.into_report())
    }
}

/// Per-worker registration record. The slot outlives its TCP
/// connection: a v2 worker that disconnects mid-lease can reclaim it
/// with the resume token.
struct WorkerSlot {
    id: String,
    speed: f64,
    /// Whether the worker's latest request already saw an empty pool
    /// (suppresses repeated `Idle` events while it polls).
    waiting: bool,
    /// Negotiated protocol version for this slot's current connection.
    proto: u32,
    /// Current resume token (v2 slots only; rotated on every resume so
    /// a stale token cannot hijack the slot).
    token: Option<String>,
    /// Bumped on every resume; a `Gone` carrying an older epoch comes
    /// from a superseded connection and is ignored.
    epoch: u64,
    /// Whether a live connection currently owns the slot.
    connected: bool,
}

/// One entry of the lease table. A task can appear in several entries
/// at once: one primary lease plus speculative duplicates granted at
/// the drain barrier.
#[derive(Debug, Clone, Copy)]
struct Lease {
    worker: usize,
    task: NodeId,
    /// Heartbeat deadline; passing it forfeits the lease.
    deadline: Instant,
    /// When the lease was granted — the straggler clock for stealing.
    granted: Instant,
    /// A duplicate granted at the drain barrier (loses ties: its
    /// completion only counts if it arrives first).
    speculative: bool,
}

/// All scheduling state, single-threaded inside [`Server::run`].
struct Coordinator<'a, 'd> {
    dag: &'d Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: &'a ServerConfig,
    sink: &'a mut dyn TraceSink,
    /// Execution state; its dense pool holds the ELIGIBLE, unleased,
    /// not-backing-off tasks — allocatable now. Leased and deferred
    /// tasks are *claimed* (ELIGIBLE but out of the pool).
    state: ExecState<'d>,
    /// Failed tasks waiting out their backoff: `(ready_at, task)`.
    /// They stay claimed in `state` until promoted back to the pool.
    deferred: Vec<(Instant, NodeId)>,
    /// The lease table. Linear scans throughout: the table never holds
    /// more entries than there are connected workers.
    leases: Vec<Lease>,
    /// Per-node failure counts, surfaced to policies via
    /// [`ic_sched::policy::PolicyContext::retries`].
    failures: Vec<u32>,
    workers: Vec<WorkerSlot>,
    connected: usize,
    late_workers: usize,
    header_written: bool,
    start: Instant,
    step: u64,
    allocation_steps: usize,
    completions: usize,
    failure_events: usize,
    resumes: usize,
    steals: usize,
    revokes: usize,
    completed_at: Option<Instant>,
    /// Resume-token source, seeded from the config (keeps the server
    /// deterministic given its inputs).
    rng: XorShift64,
}

impl<'a, 'd> Coordinator<'a, 'd> {
    fn new(
        dag: &'d Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: &'a ServerConfig,
        sink: &'a mut dyn TraceSink,
    ) -> Coordinator<'a, 'd> {
        let state = ExecState::new(dag);
        let mut coord = Coordinator {
            dag,
            policy,
            cfg,
            sink,
            state,
            deferred: Vec::new(),
            leases: Vec::new(),
            failures: vec![0; dag.num_nodes()],
            workers: Vec::new(),
            connected: 0,
            late_workers: 0,
            header_written: false,
            start: Instant::now(),
            step: 0,
            allocation_steps: 0,
            completions: 0,
            failure_events: 0,
            resumes: 0,
            steals: 0,
            revokes: 0,
            completed_at: None,
            rng: XorShift64::new(cfg.seed ^ 0x7EA5_E0CE),
        };
        if cfg.expect_workers == 0 {
            coord.write_header();
        }
        coord
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Pool size as the trace records it: allocatable now, plus tasks
    /// waiting out a backoff — both are ELIGIBLE and unallocated, which
    /// is what the auditor's replay reconstructs.
    fn recorded_pool(&self) -> usize {
        self.state.pool_len() + self.deferred.len()
    }

    fn is_complete(&self) -> bool {
        self.state.num_executed() == self.dag.num_nodes()
    }

    fn emit(&mut self, ev: TraceEvent) {
        debug_assert!(self.header_written, "events only after the header");
        self.sink.record(&ev);
        self.step += 1;
    }

    /// Write the trace header recording every worker registered so far
    /// with its declared parameters. Called when the registration
    /// barrier is met (or immediately with no barrier); workers joining
    /// later appear in events but not in the header.
    fn write_header(&mut self) {
        debug_assert!(!self.header_written);
        let params: Vec<WorkerParams> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerParams {
                client: i,
                id: w.id.clone(),
                speed: w.speed,
            })
            .collect();
        let clients = self.workers.len().max(self.cfg.expect_workers).max(1);
        let header = TraceHeader::for_run(self.dag, clients, self.cfg.seed, &self.policy.name())
            .with_workers(params);
        self.sink.header(&header);
        self.header_written = true;
        // Serving time starts when serving can actually start.
        self.start = Instant::now();
    }

    /// Move deferred tasks whose backoff elapsed back into the pool.
    /// Unclaiming stamps them as the pool's newest arrivals, so FIFO
    /// policies treat a reallocated task as freshly eligible.
    fn promote_deferred(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now {
                let (_, v) = self.deferred.swap_remove(i);
                self.state
                    .unclaim(v)
                    .expect("deferred tasks are claimed ELIGIBLE nodes");
            } else {
                i += 1;
            }
        }
    }

    fn fresh_token(&mut self) -> String {
        format!("{:016x}{:016x}", self.rng.next_u64(), self.rng.next_u64())
    }

    /// Lease duration from now.
    fn lease_deadline(&self) -> Instant {
        Instant::now() + Duration::from_millis(self.cfg.lease_ms)
    }

    /// Declare a (removed) lease lost: emit `Failed` and bump the
    /// task's failure count. Only when the *last* holder falls does the
    /// task park in the backoff queue — while duplicates remain, the
    /// task is still in flight and must not re-enter the pool.
    fn lose_lease(&mut self, lease: Lease) {
        let v = lease.task;
        self.failures[v.index()] += 1;
        let last_holder = !self.leases.iter().any(|l| l.task == v);
        if last_holder {
            let fails = self.failures[v.index()];
            let backoff = self
                .cfg
                .backoff_base_ms
                .saturating_mul(1 << (fails - 1).min(6));
            self.deferred
                .push((Instant::now() + Duration::from_millis(backoff), v));
        }
        self.failure_events += 1;
        let ev = TraceEvent::Failed {
            step: self.step,
            time: self.now(),
            client: lease.worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(ev);
    }

    /// Remove and lose every lease held by `worker`.
    fn drop_worker_leases(&mut self, worker: usize) {
        let mut i = 0;
        while i < self.leases.len() {
            if self.leases[i].worker == worker {
                let lease = self.leases.swap_remove(i);
                self.lose_lease(lease);
            } else {
                i += 1;
            }
        }
    }

    /// Reallocate every lease whose deadline passed.
    fn expire_leases(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.leases.len() {
            if self.leases[i].deadline <= now {
                let lease = self.leases.swap_remove(i);
                self.lose_lease(lease);
            } else {
                i += 1;
            }
        }
    }

    /// Register a fresh worker or resume an existing slot.
    fn register(
        &mut self,
        id: String,
        speed: f64,
        proto: u32,
        resume: Option<String>,
    ) -> Registered {
        let refused = |msg: Message| Registered {
            msg,
            worker: usize::MAX,
            epoch: 0,
        };
        if proto < self.cfg.min_proto {
            return refused(Message::Error {
                code: ERR_UNSUPPORTED.into(),
                msg: format!(
                    "protocol {proto} not supported: this server requires at least {}",
                    self.cfg.min_proto
                ),
            });
        }
        let negotiated = proto.min(PROTO_CURRENT);
        if let Some(token) = resume {
            if negotiated < PROTO_V2 {
                return refused(Message::Error {
                    code: ERR_UNSUPPORTED.into(),
                    msg: "resume requires protocol 2".into(),
                });
            }
            return self.resume_slot(&token, negotiated);
        }
        let worker = self.workers.len();
        let token = (negotiated >= PROTO_V2).then(|| self.fresh_token());
        self.workers.push(WorkerSlot {
            id,
            speed,
            waiting: false,
            proto: negotiated,
            token: token.clone(),
            epoch: 0,
            connected: true,
        });
        self.connected += 1;
        if self.header_written {
            self.late_workers += 1;
        } else if self.workers.len() >= self.cfg.expect_workers {
            self.write_header();
        }
        Registered {
            msg: Message::Welcome {
                worker: worker as u64,
                lease_ms: self.cfg.lease_ms,
                proto: negotiated,
                resume: token,
                tasks: Vec::new(),
            },
            worker,
            epoch: 0,
        }
    }

    /// Reattach a reconnecting worker to its slot: rotate the token,
    /// bump the epoch (so the dead connection's `Gone` is ignored),
    /// and restore the heartbeat clock of every lease it still holds.
    fn resume_slot(&mut self, token: &str, negotiated: u32) -> Registered {
        let Some(worker) = self
            .workers
            .iter()
            .position(|w| w.token.as_deref() == Some(token))
        else {
            return Registered {
                msg: Message::Error {
                    code: ERR_BAD_RESUME.into(),
                    msg: "unknown or stale resume token".into(),
                },
                worker: usize::MAX,
                epoch: 0,
            };
        };
        let fresh = self.fresh_token();
        let deadline = self.lease_deadline();
        let slot = &mut self.workers[worker];
        slot.epoch += 1;
        slot.token = Some(fresh.clone());
        slot.proto = negotiated;
        slot.waiting = false;
        if !slot.connected {
            slot.connected = true;
            self.connected += 1;
        }
        let epoch = slot.epoch;
        let mut held: Vec<NodeId> = Vec::new();
        for l in self.leases.iter_mut().filter(|l| l.worker == worker) {
            l.deadline = deadline;
            held.push(l.task);
        }
        self.resumes += 1;
        for &v in &held {
            let ev = TraceEvent::Resumed {
                step: self.step,
                time: self.now(),
                client: worker,
                task: v,
            };
            self.emit(ev);
        }
        Registered {
            msg: Message::Welcome {
                worker: worker as u64,
                lease_ms: self.cfg.lease_ms,
                proto: negotiated,
                resume: Some(fresh),
                tasks: held.iter().map(|v| v.index() as u64).collect(),
            },
            worker,
            epoch,
        }
    }

    fn serve(&mut self, req: Req) {
        match req {
            Req::Register {
                id,
                speed,
                proto,
                resume,
                reply,
            } => {
                let reg = self.register(id, speed, proto, resume);
                let _ = reply.send(reg);
            }
            Req::Want { worker, max, reply } => {
                let msg = self.allocate_for(worker, max);
                let _ = reply.send(msg);
            }
            Req::Done {
                worker,
                task,
                ok,
                reply,
            } => {
                let accepted = self.report(worker, task, ok);
                let _ = reply.send(Message::Ack { task, accepted });
            }
            Req::Beat {
                worker,
                task,
                reply,
            } => {
                let deadline = self.lease_deadline();
                let mut held = false;
                for l in self
                    .leases
                    .iter_mut()
                    .filter(|l| l.worker == worker && l.task.index() as u64 == task)
                {
                    l.deadline = deadline;
                    held = true;
                }
                let msg = if held {
                    Message::Ack {
                        task,
                        accepted: true,
                    }
                } else if self.worker_proto(worker) >= PROTO_V2 {
                    // The lease is gone (expired, forfeited, or revoked
                    // after a losing race): tell a v2 worker to abandon
                    // the task instead of finishing doomed work.
                    Message::Revoke { task }
                } else {
                    Message::Ack {
                        task,
                        accepted: false,
                    }
                };
                let _ = reply.send(msg);
            }
            Req::Gone { worker, epoch } => match self.workers.get_mut(worker) {
                Some(slot) => {
                    if slot.epoch != epoch {
                        // A superseded connection: the worker already
                        // resumed on a new socket.
                        return;
                    }
                    if slot.connected {
                        slot.connected = false;
                        self.connected = self.connected.saturating_sub(1);
                    }
                    if slot.proto >= PROTO_V2 && slot.token.is_some() {
                        // v2: keep the leases — the worker may resume.
                        // Lease expiry is the fallback if it never does.
                    } else {
                        self.drop_worker_leases(worker);
                    }
                }
                None => {
                    // Never fully registered (e.g. the welcome write
                    // failed): v1 semantics, lose everything.
                    self.connected = self.connected.saturating_sub(1);
                    self.drop_worker_leases(worker);
                }
            },
        }
    }

    fn worker_proto(&self, worker: usize) -> u32 {
        self.workers.get(worker).map_or(PROTO_V1, |w| w.proto)
    }

    /// Answer a work request: `Assign` when the pool has tasks, `Drain`
    /// when the dag is complete, a speculative duplicate at the drain
    /// barrier if stealing is enabled, `Wait` otherwise.
    ///
    /// A worker requesting while it still holds leases forfeits them
    /// (same as a mid-lease disconnect) — otherwise the held tasks,
    /// belonging to no queue, could never be reallocated.
    fn allocate_for(&mut self, worker: usize, max: u64) -> Message {
        if self.is_complete() {
            return Message::Drain;
        }
        if !self.header_written {
            // Registration barrier not met: no events before the header.
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        self.drop_worker_leases(worker);
        self.promote_deferred();
        if self.state.pool_len() == 0 {
            if let Some(msg) = self.try_steal(worker) {
                return msg;
            }
            // First unsatisfied request since this worker's last
            // allocation is a gridlock event; its polling retries are
            // not.
            if let Some(w) = self.workers.get_mut(worker) {
                if !w.waiting {
                    w.waiting = true;
                    let ev = TraceEvent::Idle {
                        step: self.step,
                        time: self.now(),
                        client: worker,
                    };
                    self.emit(ev);
                }
            }
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        let width = if self.worker_proto(worker) >= PROTO_V2 {
            max.clamp(1, self.cfg.batch.max(1) as u64) as usize
        } else {
            1
        };
        // Claiming removes each task from the pool but keeps it
        // ELIGIBLE until the lease resolves (completion, failure, or
        // expiry). The round is chosen exactly as the offline
        // `ic_sched::batched::batches_with` would choose it.
        let tasks = fill_round(
            &mut self.state,
            self.dag,
            self.policy,
            width,
            self.allocation_steps,
            Some(&self.failures),
        );
        self.allocation_steps += tasks.len();
        let now = Instant::now();
        let deadline = self.lease_deadline();
        // The trace shows one `alloc` per task; event `i` of `k`
        // records the pool as it stood after that single allocation.
        let base = self.recorded_pool();
        let k = tasks.len();
        for (i, &v) in tasks.iter().enumerate() {
            self.leases.push(Lease {
                worker,
                task: v,
                deadline,
                granted: now,
                speculative: false,
            });
            let ev = TraceEvent::Allocated {
                step: self.step,
                time: self.now(),
                client: worker,
                task: v,
                pool: Some(base + (k - 1 - i)),
            };
            self.emit(ev);
        }
        if let Some(w) = self.workers.get_mut(worker) {
            w.waiting = false;
        }
        Message::Assign {
            tasks: tasks.iter().map(|v| v.index() as u64).collect(),
        }
    }

    /// At the drain barrier (empty pool, nothing deferred, leases
    /// outstanding), grant an idle v2 worker a speculative duplicate of
    /// the longest-outstanding primary lease — if stealing is enabled,
    /// that lease is old enough, and the task has no duplicate yet.
    fn try_steal(&mut self, worker: usize) -> Option<Message> {
        let after = Duration::from_millis(self.cfg.steal_after_ms?);
        if !self.deferred.is_empty() || self.worker_proto(worker) < PROTO_V2 {
            return None;
        }
        let now = Instant::now();
        let mut straggler: Option<(Instant, NodeId)> = None;
        for l in &self.leases {
            if l.speculative || l.worker == worker {
                continue;
            }
            if now.duration_since(l.granted) < after {
                continue;
            }
            let task = l.task;
            if self.leases.iter().any(|x| x.task == task && x.speculative) {
                continue;
            }
            if straggler.is_none_or(|(g, _)| l.granted < g) {
                straggler = Some((l.granted, task));
            }
        }
        let (_, v) = straggler?;
        self.steals += 1;
        self.leases.push(Lease {
            worker,
            task: v,
            deadline: now + Duration::from_millis(self.cfg.lease_ms),
            granted: now,
            speculative: true,
        });
        // The pool does not shrink: the task was already allocated.
        let ev = TraceEvent::Speculated {
            step: self.step,
            time: self.now(),
            client: worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(ev);
        if let Some(w) = self.workers.get_mut(worker) {
            w.waiting = false;
        }
        Some(Message::assign(v.index() as u64))
    }

    /// Apply a worker's outcome report. Returns whether it was
    /// accepted; late or duplicate reports are discarded without a
    /// trace event (the lease expiry already recorded the loss, or the
    /// task is already executed).
    ///
    /// First completion wins: the winner's `Completed` is followed by a
    /// `Revoked` for every remaining duplicate holder, whose eventual
    /// report then finds no lease and is rejected.
    fn report(&mut self, worker: usize, task: u64, ok: bool) -> bool {
        let Some(pos) = self
            .leases
            .iter()
            .position(|l| l.worker == worker && l.task.index() as u64 == task)
        else {
            return false;
        };
        let lease = self.leases.swap_remove(pos);
        let v = lease.task;
        if ok {
            // Newly ELIGIBLE children enter the pool inside
            // `execute_counting` (in id order).
            self.state
                .execute_counting(v)
                .expect("leased tasks are ELIGIBLE by construction");
            self.completions += 1;
            let ev = TraceEvent::Completed {
                step: self.step,
                time: self.now(),
                client: worker,
                task: v,
                pool: Some(self.recorded_pool()),
            };
            self.emit(ev);
            // Cancel the stale duplicates (if any): their leases are
            // removed now; their workers learn via the `Revoke` reply
            // to their next heartbeat or the rejected `Done`.
            let mut i = 0;
            while i < self.leases.len() {
                if self.leases[i].task == v {
                    let dup = self.leases.swap_remove(i);
                    self.revokes += 1;
                    let ev = TraceEvent::Revoked {
                        step: self.step,
                        time: self.now(),
                        client: dup.worker,
                        task: dup.task,
                    };
                    self.emit(ev);
                } else {
                    i += 1;
                }
            }
            if self.is_complete() {
                self.completed_at = Some(Instant::now());
            }
        } else {
            self.lose_lease(lease);
        }
        true
    }

    fn into_report(self) -> ServeReport {
        let makespan = self
            .completed_at
            .map_or_else(|| self.start.elapsed(), |t| t.duration_since(self.start))
            .as_secs_f64();
        ServeReport {
            completions: self.completions,
            failures: self.failure_events,
            allocations: self.allocation_steps,
            workers_registered: self.workers.len(),
            late_workers: self.late_workers,
            resumes: self.resumes,
            steals: self.steals,
            revokes: self.revokes,
            makespan,
        }
    }
}

/// Per-connection handler: speaks the wire protocol, forwards every
/// request to the coordinator, and relays the reply. Any protocol
/// violation gets an `Error` frame and closes the connection; EOF and
/// read timeouts count the worker as gone (carrying the registration
/// epoch, so a resumed worker's old connection cannot disturb it).
fn handle_conn(stream: TcpStream, tx: Sender<Req>, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(stream);
    let mut w = BufWriter::new(write_stream);
    let (reply_tx, reply_rx) = channel::<Message>();

    // The conversation must open with a registration (fresh or resume).
    let (worker, epoch) = {
        let (reg_tx, reg_rx) = channel::<Registered>();
        match read_msg(&mut r) {
            Ok(Message::Hello {
                id,
                speed,
                proto,
                resume,
            }) if speed.is_finite() && speed > 0.0 => {
                if tx
                    .send(Req::Register {
                        id,
                        speed,
                        proto,
                        resume,
                        reply: reg_tx,
                    })
                    .is_err()
                {
                    return;
                }
                let Ok(reg) = reg_rx.recv() else {
                    return;
                };
                let accepted = matches!(reg.msg, Message::Welcome { .. });
                if write_msg(&mut w, &reg.msg).is_err() {
                    if accepted {
                        // Registration already counted this worker as
                        // connected; undo it so drain doesn't wait on a
                        // connection that never got its welcome.
                        let _ = tx.send(Req::Gone {
                            worker: reg.worker,
                            epoch: reg.epoch,
                        });
                    }
                    return;
                }
                if !accepted {
                    // A typed error frame (unsupported protocol, bad
                    // resume token) was delivered; close.
                    return;
                }
                (reg.worker, reg.epoch)
            }
            Ok(_) => {
                let _ = write_msg(
                    &mut w,
                    &Message::error("expected hello with a positive finite speed"),
                );
                return;
            }
            Err(_) => return,
        }
    };

    loop {
        let req = match read_msg(&mut r) {
            Ok(Message::Request { max }) => Req::Want {
                worker,
                max,
                reply: reply_tx.clone(),
            },
            Ok(Message::Done { task, ok }) => Req::Done {
                worker,
                task,
                ok,
                reply: reply_tx.clone(),
            },
            Ok(Message::Heartbeat { task }) => Req::Beat {
                worker,
                task,
                reply: reply_tx.clone(),
            },
            Ok(Message::Bye) | Err(_) => {
                let _ = tx.send(Req::Gone { worker, epoch });
                return;
            }
            Ok(_) => {
                let _ = write_msg(
                    &mut w,
                    &Message::error("unexpected server-side message from a worker"),
                );
                let _ = tx.send(Req::Gone { worker, epoch });
                return;
            }
        };
        if tx.send(req).is_err() {
            return;
        }
        let Ok(reply) = reply_rx.recv() else { return };
        let draining = reply == Message::Drain;
        if write_msg(&mut w, &reply).is_err() {
            let _ = tx.send(Req::Gone { worker, epoch });
            return;
        }
        if draining {
            let _ = tx.send(Req::Gone { worker, epoch });
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_audit::{audit_trace, Severity};
    use ic_dag::builder::from_arcs;
    use ic_sched::batched::batches_with;
    use ic_sched::heuristics::Policy;
    use ic_sim::MemorySink;

    /// The coordinator's accounting invariant: every ELIGIBLE task is
    /// in exactly one place — the allocatable pool, the backoff queue,
    /// or out on (one or more) leases — and only pooled tasks are
    /// unclaimed.
    fn assert_accounting(coord: &Coordinator<'_, '_>) {
        let mut eligible = coord.state.eligible_nodes();
        eligible.sort_unstable_by_key(|v| v.0);
        let mut tracked: Vec<NodeId> = coord.state.pool().to_vec();
        tracked.extend(coord.deferred.iter().map(|&(_, v)| v));
        let mut leased: Vec<NodeId> = coord.leases.iter().map(|l| l.task).collect();
        leased.sort_unstable_by_key(|v| v.0);
        leased.dedup();
        tracked.extend(leased);
        tracked.sort_unstable_by_key(|v| v.0);
        assert_eq!(
            tracked, eligible,
            "pool ∪ deferred ∪ leased must equal the ELIGIBLE set"
        );
        for &(_, v) in &coord.deferred {
            assert!(!coord.state.is_pooled(v), "deferred task {v} stays claimed");
        }
        for l in &coord.leases {
            assert!(
                !coord.state.is_pooled(l.task),
                "leased task {} stays claimed",
                l.task
            );
        }
        assert_eq!(
            coord.recorded_pool(),
            coord.state.pool_len() + coord.deferred.len()
        );
    }

    fn audit_errors(sink: MemorySink) -> Vec<ic_audit::Diagnostic> {
        let trace = sink.into_trace().expect("header written");
        audit_trace(&trace)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Regression test for the failure-reallocation lifecycle: a task
    /// that is leased, forfeited, parked in backoff, and re-leased must
    /// keep the pool and `deferred` accounting consistent at every
    /// step, and the finished trace must replay clean.
    #[test]
    fn failure_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(15)
            .build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        assert_accounting(&coord);

        // Lease the lone source, then have the worker report failure:
        // the task parks in the backoff queue, still claimed.
        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the source must be allocatable");
        };
        assert_eq!(tasks, vec![0]);
        assert_accounting(&coord);
        assert!(coord.report(0, 0, false));
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_eq!(
            coord.recorded_pool(),
            1,
            "a backing-off task still counts in the recorded pool"
        );
        assert_accounting(&coord);

        // While the backoff runs, the pool is empty: requests wait.
        assert!(matches!(coord.allocate_for(0, 1), Message::Wait { .. }));
        assert_accounting(&coord);

        // After the backoff elapses the task is re-leased...
        std::thread::sleep(Duration::from_millis(30));
        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the backoff elapsed; the task must be reallocatable");
        };
        assert_eq!(tasks, vec![0]);
        assert_eq!(coord.failures[0], 1);
        assert_accounting(&coord);

        // ...and a request from a worker still holding a lease forfeits
        // it back into the backoff queue instead of leaking it.
        assert!(matches!(coord.allocate_for(0, 1), Message::Wait { .. }));
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_eq!(coord.failures[0], 2);
        assert_accounting(&coord);

        // Wait out the doubled backoff and drive the dag to completion,
        // checking the invariant around every decision.
        std::thread::sleep(Duration::from_millis(60));
        let mut guard = 0;
        while !coord.is_complete() {
            match coord.allocate_for(0, 1) {
                Message::Assign { tasks } => {
                    assert_accounting(&coord);
                    assert!(coord.report(0, tasks[0], true));
                }
                Message::Wait { .. } => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("unexpected reply mid-run: {other:?}"),
            }
            assert_accounting(&coord);
            guard += 1;
            assert!(guard < 1_000, "run failed to converge");
        }
        assert!(matches!(coord.allocate_for(0, 1), Message::Drain));

        let report = coord.into_report();
        assert_eq!(report.completions, 4);
        assert_eq!(report.failures, 2);
        assert_eq!(report.allocations, 6);

        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// A mid-lease disconnect of a v1 (or never-registered) worker
    /// reallocates the held task through the same claimed-while-
    /// deferred path as a failure report.
    #[test]
    fn disconnect_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(0)
            .build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);

        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the source must be allocatable");
        };
        assert_accounting(&coord);
        coord.serve(Req::Gone {
            worker: 0,
            epoch: 0,
        });
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_accounting(&coord);

        // Zero backoff: another worker picks the task right back up.
        let Message::Assign { tasks: retry } = coord.allocate_for(1, 1) else {
            panic!("the lost task must be immediately reallocatable");
        };
        assert_eq!(retry, tasks);
        assert_accounting(&coord);
        assert!(coord.report(1, retry[0], true));
        assert_eq!(coord.state.pool_len(), 2, "both children became ELIGIBLE");
        assert_accounting(&coord);
    }

    /// The resume lifecycle: a v2 worker that disconnects mid-lease
    /// keeps the lease, reclaims its slot with the token (rotated, so
    /// the old token dies), and the dead connection's stale `Gone`
    /// cannot disturb the resumed slot.
    #[test]
    fn resume_restores_leases_and_rotates_the_token() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder().lease_ms(10_000).build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);

        let reg = coord.register("a".into(), 1.0, PROTO_V2, None);
        let Message::Welcome {
            resume: Some(token),
            proto,
            ..
        } = reg.msg
        else {
            panic!("a v2 hello must be welcomed with a resume token");
        };
        assert_eq!(proto, PROTO_V2);
        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the source must be allocatable");
        };

        // The connection dies mid-lease: the v2 slot keeps the lease.
        coord.serve(Req::Gone {
            worker: 0,
            epoch: reg.epoch,
        });
        assert_eq!(coord.connected, 0);
        assert_eq!(coord.leases.len(), 1);
        assert_eq!(coord.failure_events, 0, "no spurious reallocation");
        assert_accounting(&coord);

        // Resume with the token: same slot, rotated token, lease back.
        let resumed = coord.register("a".into(), 1.0, PROTO_V2, Some(token.clone()));
        let Message::Welcome {
            worker,
            resume: Some(rotated),
            tasks: held,
            ..
        } = resumed.msg
        else {
            panic!("a valid resume token must be accepted");
        };
        assert_eq!(worker, 0);
        assert_ne!(rotated, token, "the token must rotate on resume");
        assert_eq!(held, tasks);
        assert_eq!((coord.resumes, coord.connected), (1, 1));

        // The spent token is dead; the old connection's Gone is stale.
        let replayed = coord.register("a".into(), 1.0, PROTO_V2, Some(token));
        assert!(
            matches!(replayed.msg, Message::Error { ref code, .. } if code == ERR_BAD_RESUME),
            "a spent token must be refused"
        );
        coord.serve(Req::Gone {
            worker: 0,
            epoch: reg.epoch,
        });
        assert_eq!(coord.connected, 1, "a stale-epoch Gone is ignored");
        assert_eq!(coord.leases.len(), 1);

        // Finish under the resumed lease; the trace replays clean.
        assert!(coord.report(0, held[0], true));
        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the child must be allocatable");
        };
        assert!(coord.report(0, tasks[0], true));
        assert!(coord.is_complete());
        let report = coord.into_report();
        assert_eq!((report.resumes, report.failures), (1, 0));
        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// The drain-barrier steal lifecycle: an idle v2 worker gets a
    /// speculative duplicate of the straggling lease, the first
    /// completion wins, the loser is revoked without a pool change, and
    /// the loser's late report is rejected without a trace event.
    #[test]
    fn speculative_duplicate_first_completion_wins() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(0)
            .steal_after(0)
            .build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        let a = coord.register("a".into(), 1.0, PROTO_V2, None);
        let b = coord.register("b".into(), 1.0, PROTO_V2, None);
        assert!(matches!(a.msg, Message::Welcome { .. }));
        assert!(matches!(b.msg, Message::Welcome { .. }));

        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the source must be allocatable");
        };
        assert_eq!(tasks, vec![0]);

        // Pool empty, a lease outstanding: worker 1 steals a duplicate.
        let Message::Assign { tasks: stolen } = coord.allocate_for(1, 1) else {
            panic!("the drain barrier must yield a speculative lease");
        };
        assert_eq!(stolen, vec![0]);
        assert_eq!(coord.leases.len(), 2);
        assert_eq!(coord.steals, 1);
        assert_accounting(&coord);

        let steps_before = coord.step;
        // Worker 1 finishes first: it wins, worker 0's lease is
        // revoked, the child enters the pool exactly once.
        assert!(coord.report(1, 0, true));
        assert_eq!((coord.revokes, coord.leases.len()), (1, 0));
        assert_eq!(coord.state.pool_len(), 1);
        assert_accounting(&coord);
        assert_eq!(coord.step, steps_before + 2, "completed + revoked");

        // The loser's late report finds no lease: rejected, no event.
        assert!(!coord.report(0, 0, true));
        assert_eq!(coord.step, steps_before + 2, "a late report emits nothing");

        // The loser learns via its next heartbeat: a v2 Revoke frame.
        let (tx, rx) = channel();
        coord.serve(Req::Beat {
            worker: 0,
            task: 0,
            reply: tx,
        });
        assert_eq!(rx.recv().unwrap(), Message::Revoke { task: 0 });

        let Message::Assign { tasks } = coord.allocate_for(0, 1) else {
            panic!("the child must be allocatable");
        };
        assert!(coord.report(0, tasks[0], true));
        assert!(coord.is_complete());
        let report = coord.into_report();
        assert_eq!((report.steals, report.revokes, report.failures), (1, 1, 0));
        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// Batched allocation follows the offline batch schedule: a lone
    /// v2 worker requesting `max` tasks per round executes exactly the
    /// rounds `ic_sched::batched::batches_with` computes, and the
    /// per-task trace still replays clean.
    #[test]
    fn batched_allocation_matches_the_offline_batch_schedule() {
        let g = from_arcs(7, &[(0, 2), (1, 2), (1, 3), (2, 4), (2, 5), (3, 6)]).unwrap();
        let policy = Policy::Fifo;
        let offline: Vec<Vec<u64>> = batches_with(&g, 3, &policy)
            .batches()
            .iter()
            .map(|round| round.iter().map(|v| v.index() as u64).collect())
            .collect();

        let cfg = ServerConfig::builder().lease_ms(10_000).batch(3).build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        let reg = coord.register("a".into(), 1.0, PROTO_V2, None);
        assert!(matches!(reg.msg, Message::Welcome { .. }));

        let mut online: Vec<Vec<u64>> = Vec::new();
        while !coord.is_complete() {
            let Message::Assign { tasks } = coord.allocate_for(0, 3) else {
                panic!("a lone worker never waits on a failure-free dag");
            };
            assert_accounting(&coord);
            for &t in &tasks {
                assert!(coord.report(0, t, true));
            }
            online.push(tasks);
        }
        assert_eq!(online, offline);

        // A v1 worker gets one task per assign no matter what it asks.
        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// Protocol gatekeeping: a hello below `min_proto` is refused with
    /// the typed `unsupported` error; a v1 worker on a default server
    /// is capped at one task per assign.
    #[test]
    fn min_proto_refuses_and_v1_is_never_batched() {
        let g = from_arcs(3, &[]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder().min_proto(PROTO_V2).build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        let refused = coord.register("old".into(), 1.0, PROTO_V1, None);
        assert!(
            matches!(refused.msg, Message::Error { ref code, .. } if code == ERR_UNSUPPORTED),
            "a v1 hello against a v2-only server gets the typed error"
        );
        assert_eq!(coord.workers.len(), 0, "a refused peer takes no slot");

        let cfg = ServerConfig::builder().batch(4).build();
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        let reg = coord.register("old".into(), 1.0, PROTO_V1, None);
        let Message::Welcome { proto, resume, .. } = reg.msg else {
            panic!("a v1 hello is welcome on a default server");
        };
        assert_eq!(proto, PROTO_V1);
        assert_eq!(resume, None, "v1 peers get no resume token");
        let Message::Assign { tasks } = coord.allocate_for(0, 4) else {
            panic!("sources are allocatable");
        };
        assert_eq!(tasks.len(), 1, "v1 workers are never batched");
    }
}
