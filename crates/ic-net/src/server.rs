//! The networked IC task server.
//!
//! [`Server`] is the live counterpart of the `ic-sim` event loop: it
//! listens on TCP, registers volatile workers, and allocates ELIGIBLE
//! tasks of one dag through any [`AllocationPolicy`] until the dag
//! completes. The volatile-client reality the paper's server faces
//! (§1: clients "may be slow, may die") is handled with five
//! mechanisms:
//!
//! * **leases** — an allocated task must be completed or heartbeat
//!   within `lease_ms`, or the server declares it lost and reallocates;
//! * **exponential-backoff reallocation** — a task failed `k` times
//!   waits `backoff_base_ms · 2^min(k-1, 6)` before re-entering the
//!   pool, so a poison task cannot monopolize allocations;
//! * **resumable leases** (v2) — each `welcome` carries a single-use
//!   resume token; a worker whose TCP connection drops mid-lease can
//!   reconnect with `hello{resume}` and keep its leases (heartbeat
//!   clocks restored). Lease expiry is the fallback: a worker that
//!   never resumes still forfeits on the usual clock;
//! * **straggler re-lease** (v2, opt-in via `steal_after_ms`) — when
//!   the pool is empty but leases are outstanding (the drain barrier),
//!   an idle worker is granted a *speculative* duplicate lease on the
//!   longest-outstanding task. First completion wins; the stale
//!   duplicates are revoked;
//! * **duplicate-result resolution** — a late or duplicate report (the
//!   lease already expired, or another worker already completed the
//!   task) is acknowledged with `accepted = false` and changes nothing.
//!
//! All of these semantics live in the *pure* transition function
//! [`crate::machine::LeaseMachine`]: the server here is a thin driver
//! that accepts connections, stamps each request with wall-clock
//! microseconds, feeds it to the machine as an
//! [`crate::machine::Event`], and performs the returned
//! [`crate::machine::Effect`]s — trace records into the
//! [`TraceSink`], wire frames back to the requesting connection. The
//! same machine is exhaustively model-checked by `ic-check`, so what
//! the checker verifies is exactly what this server runs.
//!
//! Every decision is emitted through the [`TraceSink`] event model in
//! server order, so a finished run's JSONL trace replays clean under
//! `ic-prio audit --schedule`: a lease expiry or failure report is a
//! `Failed` event (the task legally re-enters the pool only when its
//! *last* holder falls), a resume is a `resume` event per held lease, a
//! speculative grant is a `spec` event (the pool does not shrink — the
//! task was already allocated), a cancelled duplicate is a `revoke`
//! event after the winning completion, and rejected duplicate reports
//! emit nothing. The recorded pool size counts tasks waiting out their
//! backoff (they are ELIGIBLE and unallocated — exactly what the
//! auditor reconstructs).
//!
//! # Protocol versions
//!
//! `hello` carries the highest protocol version the worker speaks;
//! `welcome` answers with the negotiated version (the minimum of both
//! sides'). Resume tokens, batched assignment, and speculative leases
//! are only offered to v2 peers; a v1 peer sees exactly the v1 wire
//! surface. A peer below [`ServerConfig::min_proto`] is refused with a
//! typed `error{code: "unsupported"}` frame.
//!
//! # Architecture
//!
//! [`Server`] is the TCP *compatibility wrapper* around the
//! event-driven [`crate::reactor::Reactor`]: [`Server::run`] builds
//! the production [`crate::reactor::Driver`] (wall clock + nonblocking
//! TCP poller) and calls
//! [`Reactor::run_until_drain`](crate::reactor::Reactor::run_until_drain).
//! One thread owns every connection — there are no per-connection
//! threads, no channels, and the trace sink still needs neither `Send`
//! nor `'static`. Per-connection framing state lives in incremental
//! decoders, lease expiry rides a hierarchical timer wheel instead of
//! a per-lease scan, and each connection remembers the *epoch* of its
//! registration so a sever from a superseded connection (the worker
//! already resumed on a new socket) is ignored.

use std::io;
use std::net::{TcpListener, ToSocketAddrs};

use ic_dag::Dag;
use ic_sched::policy::AllocationPolicy;
use ic_sim::trace::TraceSink;

use crate::reactor::{Driver, Reactor};
use crate::wire::PROTO_V1;

/// Tunables of a serving run. Construct with [`ServerConfig::builder`]
/// (the struct is `#[non_exhaustive]`: new knobs may appear without a
/// breaking change).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Lease duration: a leased task neither completed nor heartbeat
    /// within this window is declared lost and reallocated.
    pub lease_ms: u64,
    /// Base backoff before a failed task re-enters the pool; doubles
    /// per failure up to `2^6` times this value.
    pub backoff_base_ms: u64,
    /// Registration barrier: serving (and the trace header) waits until
    /// this many workers have said hello, so the header records their
    /// declared parameters. `0` starts serving immediately — the header
    /// is then written before anyone registers, so it carries no worker
    /// parameters and replay timing from the header is unavailable
    /// (see [`ServeReport::late_workers`]).
    pub expect_workers: usize,
    /// Suggested retry delay sent with `Wait` replies.
    pub wait_ms: u64,
    /// Seed recorded in the trace header, and the source of resume
    /// tokens (the server draws no other randomness).
    pub seed: u64,
    /// Maximum tasks per `assign`. The actual batch is the minimum of
    /// this and the `max` the worker's `request` asked for; v1 workers
    /// always get one task.
    pub batch: usize,
    /// Straggler re-lease: when the pool is empty and a primary lease
    /// has been outstanding this long, an idle v2 worker gets a
    /// speculative duplicate of it. `None` (the default) disables
    /// stealing.
    pub steal_after_ms: Option<u64>,
    /// Lowest protocol version this server accepts; a `hello` below it
    /// is refused with a typed `error{code: "unsupported"}` frame.
    pub min_proto: u32,
    /// Upper bound on how long one reactor iteration may park waiting
    /// for I/O, in milliseconds. This caps the latency of timer
    /// processing (lease expiry, drain checks) when no frames arrive.
    pub poll_timeout_ms: u64,
    /// Shard count of the reactor's connection tables (rounded up to a
    /// power of two). Larger fleets benefit from more shards.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            lease_ms: 500,
            backoff_base_ms: 25,
            expect_workers: 0,
            wait_ms: 25,
            seed: 0x1C5EED,
            batch: 1,
            steal_after_ms: None,
            min_proto: PROTO_V1,
            poll_timeout_ms: 5,
            shards: 8,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]; every knob defaults as in
/// [`ServerConfig::default`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Lease duration in milliseconds.
    pub fn lease_ms(mut self, ms: u64) -> Self {
        self.cfg.lease_ms = ms;
        self
    }

    /// Base reallocation backoff in milliseconds.
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.cfg.backoff_base_ms = ms;
        self
    }

    /// Registration barrier (0 = serve immediately).
    pub fn expect_workers(mut self, n: usize) -> Self {
        self.cfg.expect_workers = n;
        self
    }

    /// Suggested retry delay for `Wait` replies, in milliseconds.
    pub fn wait_ms(mut self, ms: u64) -> Self {
        self.cfg.wait_ms = ms;
        self
    }

    /// Trace-header seed and resume-token source.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Maximum tasks per `assign` (clamped to at least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.cfg.batch = batch.max(1);
        self
    }

    /// Enable straggler re-lease after a lease has been outstanding
    /// `ms` milliseconds at the drain barrier.
    pub fn steal_after(mut self, ms: u64) -> Self {
        self.cfg.steal_after_ms = Some(ms);
        self
    }

    /// Lowest accepted protocol version.
    pub fn min_proto(mut self, proto: u32) -> Self {
        self.cfg.min_proto = proto;
        self
    }

    /// Reactor poll timeout in milliseconds (clamped to at least 1).
    pub fn poll_timeout(mut self, ms: u64) -> Self {
        self.cfg.poll_timeout_ms = ms.max(1);
        self
    }

    /// Connection-table shard count (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Finish the build.
    pub fn build(self) -> ServerConfig {
        self.cfg
    }
}

/// Summary of a completed serving run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeReport {
    /// Tasks completed (equals the dag's node count on success).
    pub completions: usize,
    /// Reallocation events: lease expiries, worker-reported failures,
    /// and mid-lease disconnects (including forfeited duplicates).
    pub failures: usize,
    /// Allocation decisions made (primary leases only; speculative
    /// duplicates count under [`ServeReport::steals`]).
    pub allocations: usize,
    /// Workers that registered over the run's lifetime.
    pub workers_registered: usize,
    /// Workers that registered *after* the trace header was written
    /// (always all of them when `expect_workers` is 0, since the header
    /// then goes out before serving). They appear in events but not in
    /// the header's `workers` list, so header-based replay timing is
    /// incomplete — set `expect_workers` to avoid this.
    pub late_workers: usize,
    /// Successful reconnects: a worker presented a valid resume token
    /// and kept its slot (and any held leases).
    pub resumes: usize,
    /// Speculative duplicate leases granted at the drain barrier.
    pub steals: usize,
    /// Stale duplicate leases cancelled after a winning completion.
    pub revokes: usize,
    /// Wall-clock seconds from serving start to dag completion.
    pub makespan: f64,
}

/// A bound, not-yet-running IC task server.
pub struct Server<'a> {
    dag: &'a Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: ServerConfig,
    listener: TcpListener,
}

impl<'a> Server<'a> {
    /// Bind a listener. The dag and policy are borrowed for the
    /// server's lifetime; [`Server::run`] drives everything inline.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dag: &'a Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: ServerConfig,
    ) -> io::Result<Server<'a>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            dag,
            policy,
            cfg,
            listener,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the dag completes, streaming every decision into
    /// `sink` (header first, then events in server order). Returns once
    /// all tasks are executed and connected workers have had a drain
    /// grace period to pick up their `Drain` replies.
    ///
    /// This is the compatibility wrapper around the event-driven core:
    /// it assembles the production [`Driver`] (wall clock, nonblocking
    /// TCP poller) and delegates to [`Reactor::run_until_drain`].
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`].
    pub fn run(self, sink: &mut dyn TraceSink) -> io::Result<ServeReport> {
        let driver = Driver::tcp(self.listener, &self.cfg)?;
        Reactor::new(self.dag, self.policy, self.cfg, driver).run_until_drain(sink)
    }
}
