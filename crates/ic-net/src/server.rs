//! The networked IC task server.
//!
//! [`Server`] is the live counterpart of the `ic-sim` event loop: it
//! listens on TCP, registers volatile workers, and allocates ELIGIBLE
//! tasks of one dag through any [`AllocationPolicy`] until the dag
//! completes. The volatile-client reality the paper's server faces
//! (§1: clients "may be slow, may die") is handled with three
//! mechanisms:
//!
//! * **leases** — an allocated task must be completed or heartbeat
//!   within `lease_ms`, or the server declares it lost and reallocates;
//! * **exponential-backoff reallocation** — a task failed `k` times
//!   waits `backoff_base_ms · 2^min(k-1, 6)` before re-entering the
//!   pool, so a poison task cannot monopolize allocations;
//! * **duplicate-result resolution** — a late or duplicate report (the
//!   lease already expired, or another worker already completed the
//!   task) is acknowledged with `accepted = false` and changes nothing.
//!
//! Every decision is emitted through the [`TraceSink`] event model in
//! server order, so a finished run's JSONL trace replays clean under
//! `ic-prio audit --schedule`: a lease expiry or failure report is a
//! `Failed` event (the task legally re-enters the pool), rejected
//! duplicates emit nothing, and the recorded pool size counts tasks
//! waiting out their backoff (they are ELIGIBLE and unallocated —
//! exactly what the auditor reconstructs).
//!
//! # Threading
//!
//! One handler thread per connection speaks the wire protocol and
//! forwards each request over an mpsc channel to the *coordinator*,
//! which runs inline in [`Server::run`] on the caller's thread (so the
//! trace sink needs neither `Send` nor `'static`). All scheduling
//! state — the [`ExecState`], the pool, leases, backoff queue — lives
//! only in the coordinator; handler threads are dumb pipes.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use ic_dag::{Dag, NodeId};
use ic_sched::eligibility::ExecState;
use ic_sched::policy::{AllocationPolicy, PolicyContext};
use ic_sim::trace::{TraceEvent, TraceHeader, TraceSink, WorkerParams};

use crate::wire::{read_msg, write_msg, Message};

/// Tunables of a serving run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Lease duration: a leased task neither completed nor heartbeat
    /// within this window is declared lost and reallocated.
    pub lease_ms: u64,
    /// Base backoff before a failed task re-enters the pool; doubles
    /// per failure up to `2^6` times this value.
    pub backoff_base_ms: u64,
    /// Registration barrier: serving (and the trace header) waits until
    /// this many workers have said hello, so the header records their
    /// declared parameters. `0` starts serving immediately — the header
    /// is then written before anyone registers, so it carries no worker
    /// parameters and replay timing from the header is unavailable
    /// (see [`ServeReport::late_workers`]).
    pub expect_workers: usize,
    /// Suggested retry delay sent with `Wait` replies.
    pub wait_ms: u64,
    /// Seed recorded in the trace header (the server itself draws no
    /// randomness).
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            lease_ms: 500,
            backoff_base_ms: 25,
            expect_workers: 0,
            wait_ms: 25,
            seed: 0x1C5EED,
        }
    }
}

/// Summary of a completed serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Tasks completed (equals the dag's node count on success).
    pub completions: usize,
    /// Reallocation events: lease expiries, worker-reported failures,
    /// and mid-lease disconnects.
    pub failures: usize,
    /// Allocation decisions made (`completions + failures`).
    pub allocations: usize,
    /// Workers that registered over the run's lifetime.
    pub workers_registered: usize,
    /// Workers that registered *after* the trace header was written
    /// (always all of them when `expect_workers` is 0, since the header
    /// then goes out before serving). They appear in events but not in
    /// the header's `workers` list, so header-based replay timing is
    /// incomplete — set `expect_workers` to avoid this.
    pub late_workers: usize,
    /// Wall-clock seconds from serving start to dag completion.
    pub makespan: f64,
}

/// What a handler thread asks the coordinator to do. Each carries a
/// reply channel; `Gone` is fire-and-forget.
enum Req {
    Register {
        id: String,
        speed: f64,
        reply: Sender<Message>,
    },
    Want {
        worker: usize,
        reply: Sender<Message>,
    },
    Done {
        worker: usize,
        task: u64,
        ok: bool,
        reply: Sender<Message>,
    },
    Beat {
        worker: usize,
        task: u64,
        reply: Sender<Message>,
    },
    Gone {
        worker: usize,
    },
}

/// A bound, not-yet-running IC task server.
pub struct Server<'a> {
    dag: &'a Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: ServerConfig,
    listener: TcpListener,
}

impl<'a> Server<'a> {
    /// Bind a listener. The dag and policy are borrowed for the
    /// server's lifetime; [`Server::run`] drives everything inline.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dag: &'a Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: ServerConfig,
    ) -> io::Result<Server<'a>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            dag,
            policy,
            cfg,
            listener,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the dag completes, streaming every decision into
    /// `sink` (header first, then events in server order). Returns once
    /// all tasks are executed and connected workers have had a drain
    /// grace period to pick up their `Drain` replies.
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`].
    pub fn run(self, sink: &mut dyn TraceSink) -> io::Result<ServeReport> {
        self.policy.prepare(self.dag);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = channel::<Req>();
        let mut coord = Coordinator::new(self.dag, self.policy, &self.cfg, sink);

        let read_timeout = Duration::from_millis(self.cfg.lease_ms.saturating_mul(4).max(2_000));
        let lease_ms = self.cfg.lease_ms;
        let drain_grace = Duration::from_millis(lease_ms.max(250));
        let mut done_at: Option<Instant> = None;

        loop {
            // Admit new connections (non-blocking).
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            handle_conn(stream, tx, read_timeout);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Serve queued requests; park briefly when idle.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(req) => {
                    coord.serve(req);
                    while let Ok(req) = rx.try_recv() {
                        coord.serve(req);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
            }

            coord.expire_leases();

            if coord.is_complete() {
                let now = Instant::now();
                let reached = *done_at.get_or_insert(now);
                if coord.connected == 0 || now.duration_since(reached) >= drain_grace {
                    break;
                }
            }
        }
        Ok(coord.into_report())
    }
}

/// Per-worker registration record.
struct Worker {
    id: String,
    speed: f64,
    /// Whether the worker's latest request already saw an empty pool
    /// (suppresses repeated `Idle` events while it polls).
    waiting: bool,
}

/// All scheduling state, single-threaded inside [`Server::run`].
struct Coordinator<'a, 'd> {
    dag: &'d Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: &'a ServerConfig,
    sink: &'a mut dyn TraceSink,
    /// Execution state; its dense pool holds the ELIGIBLE, unleased,
    /// not-backing-off tasks — allocatable now. Leased and deferred
    /// tasks are *claimed* (ELIGIBLE but out of the pool).
    state: ExecState<'d>,
    /// Failed tasks waiting out their backoff: `(ready_at, task)`.
    /// They stay claimed in `state` until promoted back to the pool.
    deferred: Vec<(Instant, NodeId)>,
    /// Active leases: worker → (task, deadline).
    leases: HashMap<usize, (NodeId, Instant)>,
    /// Per-node failure counts, surfaced to policies via
    /// [`PolicyContext::retries`].
    failures: Vec<u32>,
    workers: Vec<Worker>,
    connected: usize,
    late_workers: usize,
    header_written: bool,
    start: Instant,
    step: u64,
    allocation_steps: usize,
    completions: usize,
    failure_events: usize,
    completed_at: Option<Instant>,
}

impl<'a, 'd> Coordinator<'a, 'd> {
    fn new(
        dag: &'d Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: &'a ServerConfig,
        sink: &'a mut dyn TraceSink,
    ) -> Coordinator<'a, 'd> {
        let state = ExecState::new(dag);
        let mut coord = Coordinator {
            dag,
            policy,
            cfg,
            sink,
            state,
            deferred: Vec::new(),
            leases: HashMap::new(),
            failures: vec![0; dag.num_nodes()],
            workers: Vec::new(),
            connected: 0,
            late_workers: 0,
            header_written: false,
            start: Instant::now(),
            step: 0,
            allocation_steps: 0,
            completions: 0,
            failure_events: 0,
            completed_at: None,
        };
        if cfg.expect_workers == 0 {
            coord.write_header();
        }
        coord
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Pool size as the trace records it: allocatable now, plus tasks
    /// waiting out a backoff — both are ELIGIBLE and unallocated, which
    /// is what the auditor's replay reconstructs.
    fn recorded_pool(&self) -> usize {
        self.state.pool_len() + self.deferred.len()
    }

    fn is_complete(&self) -> bool {
        self.state.num_executed() == self.dag.num_nodes()
    }

    fn emit(&mut self, ev: TraceEvent) {
        debug_assert!(self.header_written, "events only after the header");
        self.sink.record(&ev);
        self.step += 1;
    }

    /// Write the trace header recording every worker registered so far
    /// with its declared parameters. Called when the registration
    /// barrier is met (or immediately with no barrier); workers joining
    /// later appear in events but not in the header.
    fn write_header(&mut self) {
        debug_assert!(!self.header_written);
        let params: Vec<WorkerParams> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerParams {
                client: i,
                id: w.id.clone(),
                speed: w.speed,
            })
            .collect();
        let clients = self.workers.len().max(self.cfg.expect_workers).max(1);
        let header = TraceHeader::for_run(self.dag, clients, self.cfg.seed, &self.policy.name())
            .with_workers(params);
        self.sink.header(&header);
        self.header_written = true;
        // Serving time starts when serving can actually start.
        self.start = Instant::now();
    }

    /// Move deferred tasks whose backoff elapsed back into the pool.
    /// Unclaiming stamps them as the pool's newest arrivals, so FIFO
    /// policies treat a reallocated task as freshly eligible.
    fn promote_deferred(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now {
                let (_, v) = self.deferred.swap_remove(i);
                self.state
                    .unclaim(v)
                    .expect("deferred tasks are claimed ELIGIBLE nodes");
            } else {
                i += 1;
            }
        }
    }

    /// Declare a leased task lost: emit `Failed`, bump its failure
    /// count, and park it in the backoff queue.
    fn lose_task(&mut self, worker: usize, v: NodeId) {
        self.failures[v.index()] += 1;
        let fails = self.failures[v.index()];
        let backoff = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1 << (fails - 1).min(6));
        self.deferred
            .push((Instant::now() + Duration::from_millis(backoff), v));
        self.failure_events += 1;
        let ev = TraceEvent::Failed {
            step: self.step,
            time: self.now(),
            client: worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(ev);
    }

    /// Reallocate every lease whose deadline passed.
    fn expire_leases(&mut self) {
        let now = Instant::now();
        let expired: Vec<(usize, NodeId)> = self
            .leases
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(&w, &(v, _))| (w, v))
            .collect();
        for (w, v) in expired {
            self.leases.remove(&w);
            self.lose_task(w, v);
        }
    }

    fn serve(&mut self, req: Req) {
        match req {
            Req::Register { id, speed, reply } => {
                let worker = self.workers.len();
                self.workers.push(Worker {
                    id,
                    speed,
                    waiting: false,
                });
                self.connected += 1;
                if self.header_written {
                    self.late_workers += 1;
                } else if self.workers.len() >= self.cfg.expect_workers {
                    self.write_header();
                }
                let _ = reply.send(Message::Welcome {
                    worker: worker as u64,
                    lease_ms: self.cfg.lease_ms,
                });
            }
            Req::Want { worker, reply } => {
                let msg = self.allocate_for(worker);
                let _ = reply.send(msg);
            }
            Req::Done {
                worker,
                task,
                ok,
                reply,
            } => {
                let accepted = self.report(worker, task, ok);
                let _ = reply.send(Message::Ack { task, accepted });
            }
            Req::Beat {
                worker,
                task,
                reply,
            } => {
                let accepted = match self.leases.get_mut(&worker) {
                    Some((v, deadline)) if v.index() as u64 == task => {
                        *deadline = Instant::now() + Duration::from_millis(self.cfg.lease_ms);
                        true
                    }
                    _ => false,
                };
                let _ = reply.send(Message::Ack { task, accepted });
            }
            Req::Gone { worker } => {
                self.connected = self.connected.saturating_sub(1);
                // A mid-lease disconnect is an immediate loss — no need
                // to wait out the lease.
                if let Some((v, _)) = self.leases.remove(&worker) {
                    self.lose_task(worker, v);
                }
            }
        }
    }

    /// Answer a work request: `Assign` when the pool has a task,
    /// `Drain` when the dag is complete, `Wait` otherwise.
    ///
    /// A worker requesting while it still holds a lease forfeits the
    /// leased task (same as a mid-lease disconnect) — otherwise the
    /// new lease would overwrite the map entry and the old task,
    /// belonging to no queue, could never be reallocated.
    fn allocate_for(&mut self, worker: usize) -> Message {
        if self.is_complete() {
            return Message::Drain;
        }
        if !self.header_written {
            // Registration barrier not met: no events before the header.
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        if let Some((abandoned, _)) = self.leases.remove(&worker) {
            self.lose_task(worker, abandoned);
        }
        self.promote_deferred();
        if self.state.pool_len() == 0 {
            // First unsatisfied request since this worker's last
            // allocation is a gridlock event; its polling retries are
            // not.
            if let Some(w) = self.workers.get_mut(worker) {
                if !w.waiting {
                    w.waiting = true;
                    let ev = TraceEvent::Idle {
                        step: self.step,
                        time: self.now(),
                        client: worker,
                    };
                    self.emit(ev);
                }
            }
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        let i = {
            let ctx = PolicyContext {
                dag: self.dag,
                state: &self.state,
                step: self.allocation_steps,
                retries: Some(&self.failures),
            };
            self.policy.choose(&ctx, self.state.pool())
        };
        assert!(
            i < self.state.pool_len(),
            "policy chose an out-of-range pool index"
        );
        // Claiming removes the task from the pool but keeps it ELIGIBLE
        // until the lease resolves (completion, failure, or expiry).
        let v = self.state.claim_at(i);
        self.allocation_steps += 1;
        self.leases.insert(
            worker,
            (v, Instant::now() + Duration::from_millis(self.cfg.lease_ms)),
        );
        if let Some(w) = self.workers.get_mut(worker) {
            w.waiting = false;
        }
        let ev = TraceEvent::Allocated {
            step: self.step,
            time: self.now(),
            client: worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(ev);
        Message::Assign {
            task: v.index() as u64,
        }
    }

    /// Apply a worker's outcome report. Returns whether it was
    /// accepted; late or duplicate reports are discarded without a
    /// trace event (the lease expiry already recorded the loss, or the
    /// task is already executed).
    fn report(&mut self, worker: usize, task: u64, ok: bool) -> bool {
        match self.leases.get(&worker) {
            Some(&(v, _)) if v.index() as u64 == task => {
                self.leases.remove(&worker);
                if ok {
                    // Newly ELIGIBLE children enter the pool inside
                    // `execute_counting` (in id order).
                    self.state
                        .execute_counting(v)
                        .expect("leased tasks are ELIGIBLE by construction");
                    self.completions += 1;
                    let ev = TraceEvent::Completed {
                        step: self.step,
                        time: self.now(),
                        client: worker,
                        task: v,
                        pool: Some(self.recorded_pool()),
                    };
                    self.emit(ev);
                    if self.is_complete() {
                        self.completed_at = Some(Instant::now());
                    }
                } else {
                    self.lose_task(worker, v);
                }
                true
            }
            _ => false,
        }
    }

    fn into_report(self) -> ServeReport {
        let makespan = self
            .completed_at
            .map_or_else(|| self.start.elapsed(), |t| t.duration_since(self.start))
            .as_secs_f64();
        ServeReport {
            completions: self.completions,
            failures: self.failure_events,
            allocations: self.allocation_steps,
            workers_registered: self.workers.len(),
            late_workers: self.late_workers,
            makespan,
        }
    }
}

/// Per-connection handler: speaks the wire protocol, forwards every
/// request to the coordinator, and relays the reply. Any protocol
/// violation gets an `Error` frame and closes the connection; EOF and
/// read timeouts count the worker as gone.
fn handle_conn(stream: TcpStream, tx: Sender<Req>, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(stream);
    let mut w = BufWriter::new(write_stream);
    let (reply_tx, reply_rx) = channel::<Message>();

    // The conversation must open with a registration.
    let worker = match read_msg(&mut r) {
        Ok(Message::Hello { id, speed }) if speed.is_finite() && speed > 0.0 => {
            if tx
                .send(Req::Register {
                    id,
                    speed,
                    reply: reply_tx.clone(),
                })
                .is_err()
            {
                return;
            }
            let Ok(welcome @ Message::Welcome { worker, .. }) = reply_rx.recv() else {
                return;
            };
            if write_msg(&mut w, &welcome).is_err() {
                // Registration already counted this worker as
                // connected; undo it so drain doesn't wait on a
                // connection that never got its welcome.
                let _ = tx.send(Req::Gone {
                    worker: worker as usize,
                });
                return;
            }
            worker as usize
        }
        Ok(_) => {
            let _ = write_msg(
                &mut w,
                &Message::Error {
                    msg: "expected hello with a positive finite speed".into(),
                },
            );
            return;
        }
        Err(_) => return,
    };

    loop {
        let req = match read_msg(&mut r) {
            Ok(Message::Request) => Req::Want {
                worker,
                reply: reply_tx.clone(),
            },
            Ok(Message::Done { task, ok }) => Req::Done {
                worker,
                task,
                ok,
                reply: reply_tx.clone(),
            },
            Ok(Message::Heartbeat { task }) => Req::Beat {
                worker,
                task,
                reply: reply_tx.clone(),
            },
            Ok(Message::Bye) | Err(_) => {
                let _ = tx.send(Req::Gone { worker });
                return;
            }
            Ok(_) => {
                let _ = write_msg(
                    &mut w,
                    &Message::Error {
                        msg: "unexpected server-side message from a worker".into(),
                    },
                );
                let _ = tx.send(Req::Gone { worker });
                return;
            }
        };
        if tx.send(req).is_err() {
            return;
        }
        let Ok(reply) = reply_rx.recv() else { return };
        let draining = reply == Message::Drain;
        if write_msg(&mut w, &reply).is_err() {
            let _ = tx.send(Req::Gone { worker });
            return;
        }
        if draining {
            let _ = tx.send(Req::Gone { worker });
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_audit::{audit_trace, Severity};
    use ic_dag::builder::from_arcs;
    use ic_sched::heuristics::Policy;
    use ic_sim::MemorySink;

    /// The coordinator's accounting invariant: every ELIGIBLE task is
    /// in exactly one place — the allocatable pool, the backoff queue,
    /// or out on a lease — and only pooled tasks are unclaimed.
    fn assert_accounting(coord: &Coordinator<'_, '_>) {
        let mut eligible = coord.state.eligible_nodes();
        eligible.sort_unstable_by_key(|v| v.0);
        let mut tracked: Vec<NodeId> = coord.state.pool().to_vec();
        tracked.extend(coord.deferred.iter().map(|&(_, v)| v));
        tracked.extend(coord.leases.values().map(|&(v, _)| v));
        tracked.sort_unstable_by_key(|v| v.0);
        assert_eq!(
            tracked, eligible,
            "pool ∪ deferred ∪ leased must equal the ELIGIBLE set"
        );
        for &(_, v) in &coord.deferred {
            assert!(!coord.state.is_pooled(v), "deferred task {v} stays claimed");
        }
        for &(v, _) in coord.leases.values() {
            assert!(!coord.state.is_pooled(v), "leased task {v} stays claimed");
        }
        assert_eq!(
            coord.recorded_pool(),
            coord.state.pool_len() + coord.deferred.len()
        );
    }

    /// Regression test for the failure-reallocation lifecycle: a task
    /// that is leased, forfeited, parked in backoff, and re-leased must
    /// keep the pool and `deferred` accounting consistent at every
    /// step, and the finished trace must replay clean.
    #[test]
    fn failure_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig {
            lease_ms: 10_000,
            backoff_base_ms: 15,
            expect_workers: 0,
            ..ServerConfig::default()
        };
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);
        assert_accounting(&coord);

        // Lease the lone source, then have the worker report failure:
        // the task parks in the backoff queue, still claimed.
        let Message::Assign { task } = coord.allocate_for(0) else {
            panic!("the source must be allocatable");
        };
        assert_eq!(task, 0);
        assert_accounting(&coord);
        assert!(coord.report(0, task, false));
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_eq!(
            coord.recorded_pool(),
            1,
            "a backing-off task still counts in the recorded pool"
        );
        assert_accounting(&coord);

        // While the backoff runs, the pool is empty: requests wait.
        assert!(matches!(coord.allocate_for(0), Message::Wait { .. }));
        assert_accounting(&coord);

        // After the backoff elapses the task is re-leased...
        std::thread::sleep(Duration::from_millis(30));
        let Message::Assign { task } = coord.allocate_for(0) else {
            panic!("the backoff elapsed; the task must be reallocatable");
        };
        assert_eq!(task, 0);
        assert_eq!(coord.failures[0], 1);
        assert_accounting(&coord);

        // ...and a request from a worker still holding a lease forfeits
        // it back into the backoff queue instead of leaking it.
        assert!(matches!(coord.allocate_for(0), Message::Wait { .. }));
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_eq!(coord.failures[0], 2);
        assert_accounting(&coord);

        // Wait out the doubled backoff and drive the dag to completion,
        // checking the invariant around every decision.
        std::thread::sleep(Duration::from_millis(60));
        let mut guard = 0;
        while !coord.is_complete() {
            match coord.allocate_for(0) {
                Message::Assign { task } => {
                    assert_accounting(&coord);
                    assert!(coord.report(0, task, true));
                }
                Message::Wait { .. } => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("unexpected reply mid-run: {other:?}"),
            }
            assert_accounting(&coord);
            guard += 1;
            assert!(guard < 1_000, "run failed to converge");
        }
        assert!(matches!(coord.allocate_for(0), Message::Drain));

        let report = coord.into_report();
        assert_eq!(report.completions, 4);
        assert_eq!(report.failures, 2);
        assert_eq!(report.allocations, 6);

        let trace = sink.into_trace().expect("header written");
        let errors: Vec<_> = audit_trace(&trace)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// A mid-lease disconnect reallocates the held task through the
    /// same claimed-while-deferred path as a failure report.
    #[test]
    fn disconnect_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig {
            lease_ms: 10_000,
            backoff_base_ms: 0,
            expect_workers: 0,
            ..ServerConfig::default()
        };
        let mut sink = MemorySink::new();
        let mut coord = Coordinator::new(&g, &policy, &cfg, &mut sink);

        let Message::Assign { task } = coord.allocate_for(0) else {
            panic!("the source must be allocatable");
        };
        assert_accounting(&coord);
        coord.serve(Req::Gone { worker: 0 });
        assert_eq!((coord.deferred.len(), coord.leases.len()), (1, 0));
        assert_accounting(&coord);

        // Zero backoff: another worker picks the task right back up.
        let Message::Assign { task: retry } = coord.allocate_for(1) else {
            panic!("the lost task must be immediately reallocatable");
        };
        assert_eq!(retry, task);
        assert_accounting(&coord);
        assert!(coord.report(1, retry, true));
        assert_eq!(coord.state.pool_len(), 2, "both children became ELIGIBLE");
        assert_accounting(&coord);
    }
}
