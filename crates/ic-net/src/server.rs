//! The networked IC task server.
//!
//! [`Server`] is the live counterpart of the `ic-sim` event loop: it
//! listens on TCP, registers volatile workers, and allocates ELIGIBLE
//! tasks of one dag through any [`AllocationPolicy`] until the dag
//! completes. The volatile-client reality the paper's server faces
//! (§1: clients "may be slow, may die") is handled with five
//! mechanisms:
//!
//! * **leases** — an allocated task must be completed or heartbeat
//!   within `lease_ms`, or the server declares it lost and reallocates;
//! * **exponential-backoff reallocation** — a task failed `k` times
//!   waits `backoff_base_ms · 2^min(k-1, 6)` before re-entering the
//!   pool, so a poison task cannot monopolize allocations;
//! * **resumable leases** (v2) — each `welcome` carries a single-use
//!   resume token; a worker whose TCP connection drops mid-lease can
//!   reconnect with `hello{resume}` and keep its leases (heartbeat
//!   clocks restored). Lease expiry is the fallback: a worker that
//!   never resumes still forfeits on the usual clock;
//! * **straggler re-lease** (v2, opt-in via `steal_after_ms`) — when
//!   the pool is empty but leases are outstanding (the drain barrier),
//!   an idle worker is granted a *speculative* duplicate lease on the
//!   longest-outstanding task. First completion wins; the stale
//!   duplicates are revoked;
//! * **duplicate-result resolution** — a late or duplicate report (the
//!   lease already expired, or another worker already completed the
//!   task) is acknowledged with `accepted = false` and changes nothing.
//!
//! All of these semantics live in the *pure* transition function
//! [`crate::machine::LeaseMachine`]: the server here is a thin driver
//! that accepts connections, stamps each request with wall-clock
//! microseconds, feeds it to the machine as an
//! [`crate::machine::Event`], and performs the returned
//! [`crate::machine::Effect`]s — trace records into the
//! [`TraceSink`], wire frames back to the requesting connection. The
//! same machine is exhaustively model-checked by `ic-check`, so what
//! the checker verifies is exactly what this server runs.
//!
//! Every decision is emitted through the [`TraceSink`] event model in
//! server order, so a finished run's JSONL trace replays clean under
//! `ic-prio audit --schedule`: a lease expiry or failure report is a
//! `Failed` event (the task legally re-enters the pool only when its
//! *last* holder falls), a resume is a `resume` event per held lease, a
//! speculative grant is a `spec` event (the pool does not shrink — the
//! task was already allocated), a cancelled duplicate is a `revoke`
//! event after the winning completion, and rejected duplicate reports
//! emit nothing. The recorded pool size counts tasks waiting out their
//! backoff (they are ELIGIBLE and unallocated — exactly what the
//! auditor reconstructs).
//!
//! # Protocol versions
//!
//! `hello` carries the highest protocol version the worker speaks;
//! `welcome` answers with the negotiated version (the minimum of both
//! sides'). Resume tokens, batched assignment, and speculative leases
//! are only offered to v2 peers; a v1 peer sees exactly the v1 wire
//! surface. A peer below [`ServerConfig::min_proto`] is refused with a
//! typed `error{code: "unsupported"}` frame.
//!
//! # Threading
//!
//! One handler thread per connection speaks the wire protocol and
//! forwards each request over an mpsc channel to the *coordinator*,
//! which runs inline in [`Server::run`] on the caller's thread (so the
//! trace sink needs neither `Send` nor `'static`). All scheduling
//! state lives only in the coordinator's [`LeaseMachine`]; handler
//! threads are dumb pipes. Each handler remembers the *epoch* of its
//! registration; a `Gone` from a superseded connection (the worker
//! already resumed on a new socket) is ignored.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use ic_dag::Dag;
use ic_sched::policy::AllocationPolicy;
use ic_sim::trace::TraceSink;

use crate::machine::{Effect, Event, LeaseMachine};
use crate::wire::{read_msg, write_msg, Message, PROTO_V1};

/// Tunables of a serving run. Construct with [`ServerConfig::builder`]
/// (the struct is `#[non_exhaustive]`: new knobs may appear without a
/// breaking change).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Lease duration: a leased task neither completed nor heartbeat
    /// within this window is declared lost and reallocated.
    pub lease_ms: u64,
    /// Base backoff before a failed task re-enters the pool; doubles
    /// per failure up to `2^6` times this value.
    pub backoff_base_ms: u64,
    /// Registration barrier: serving (and the trace header) waits until
    /// this many workers have said hello, so the header records their
    /// declared parameters. `0` starts serving immediately — the header
    /// is then written before anyone registers, so it carries no worker
    /// parameters and replay timing from the header is unavailable
    /// (see [`ServeReport::late_workers`]).
    pub expect_workers: usize,
    /// Suggested retry delay sent with `Wait` replies.
    pub wait_ms: u64,
    /// Seed recorded in the trace header, and the source of resume
    /// tokens (the server draws no other randomness).
    pub seed: u64,
    /// Maximum tasks per `assign`. The actual batch is the minimum of
    /// this and the `max` the worker's `request` asked for; v1 workers
    /// always get one task.
    pub batch: usize,
    /// Straggler re-lease: when the pool is empty and a primary lease
    /// has been outstanding this long, an idle v2 worker gets a
    /// speculative duplicate of it. `None` (the default) disables
    /// stealing.
    pub steal_after_ms: Option<u64>,
    /// Lowest protocol version this server accepts; a `hello` below it
    /// is refused with a typed `error{code: "unsupported"}` frame.
    pub min_proto: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            lease_ms: 500,
            backoff_base_ms: 25,
            expect_workers: 0,
            wait_ms: 25,
            seed: 0x1C5EED,
            batch: 1,
            steal_after_ms: None,
            min_proto: PROTO_V1,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]; every knob defaults as in
/// [`ServerConfig::default`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Lease duration in milliseconds.
    pub fn lease_ms(mut self, ms: u64) -> Self {
        self.cfg.lease_ms = ms;
        self
    }

    /// Base reallocation backoff in milliseconds.
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.cfg.backoff_base_ms = ms;
        self
    }

    /// Registration barrier (0 = serve immediately).
    pub fn expect_workers(mut self, n: usize) -> Self {
        self.cfg.expect_workers = n;
        self
    }

    /// Suggested retry delay for `Wait` replies, in milliseconds.
    pub fn wait_ms(mut self, ms: u64) -> Self {
        self.cfg.wait_ms = ms;
        self
    }

    /// Trace-header seed and resume-token source.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Maximum tasks per `assign` (clamped to at least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.cfg.batch = batch.max(1);
        self
    }

    /// Enable straggler re-lease after a lease has been outstanding
    /// `ms` milliseconds at the drain barrier.
    pub fn steal_after(mut self, ms: u64) -> Self {
        self.cfg.steal_after_ms = Some(ms);
        self
    }

    /// Lowest accepted protocol version.
    pub fn min_proto(mut self, proto: u32) -> Self {
        self.cfg.min_proto = proto;
        self
    }

    /// Finish the build.
    pub fn build(self) -> ServerConfig {
        self.cfg
    }
}

/// Summary of a completed serving run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeReport {
    /// Tasks completed (equals the dag's node count on success).
    pub completions: usize,
    /// Reallocation events: lease expiries, worker-reported failures,
    /// and mid-lease disconnects (including forfeited duplicates).
    pub failures: usize,
    /// Allocation decisions made (primary leases only; speculative
    /// duplicates count under [`ServeReport::steals`]).
    pub allocations: usize,
    /// Workers that registered over the run's lifetime.
    pub workers_registered: usize,
    /// Workers that registered *after* the trace header was written
    /// (always all of them when `expect_workers` is 0, since the header
    /// then goes out before serving). They appear in events but not in
    /// the header's `workers` list, so header-based replay timing is
    /// incomplete — set `expect_workers` to avoid this.
    pub late_workers: usize,
    /// Successful reconnects: a worker presented a valid resume token
    /// and kept its slot (and any held leases).
    pub resumes: usize,
    /// Speculative duplicate leases granted at the drain barrier.
    pub steals: usize,
    /// Stale duplicate leases cancelled after a winning completion.
    pub revokes: usize,
    /// Wall-clock seconds from serving start to dag completion.
    pub makespan: f64,
}

/// What the coordinator answers a registration with: the frame to
/// relay, plus the slot and epoch the handler needs for `Gone`.
struct Registered {
    msg: Message,
    worker: usize,
    epoch: u64,
}

/// What a handler thread asks the coordinator to do. Each carries a
/// reply channel; `Gone` is fire-and-forget.
enum Req {
    Register {
        id: String,
        speed: f64,
        proto: u32,
        resume: Option<String>,
        reply: Sender<Registered>,
    },
    Want {
        worker: usize,
        max: u64,
        reply: Sender<Message>,
    },
    Done {
        worker: usize,
        task: u64,
        ok: bool,
        reply: Sender<Message>,
    },
    Beat {
        worker: usize,
        task: u64,
        reply: Sender<Message>,
    },
    Gone {
        worker: usize,
        epoch: u64,
    },
}

/// A bound, not-yet-running IC task server.
pub struct Server<'a> {
    dag: &'a Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: ServerConfig,
    listener: TcpListener,
}

impl<'a> Server<'a> {
    /// Bind a listener. The dag and policy are borrowed for the
    /// server's lifetime; [`Server::run`] drives everything inline.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dag: &'a Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: ServerConfig,
    ) -> io::Result<Server<'a>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            dag,
            policy,
            cfg,
            listener,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the dag completes, streaming every decision into
    /// `sink` (header first, then events in server order). Returns once
    /// all tasks are executed and connected workers have had a drain
    /// grace period to pick up their `Drain` replies.
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`].
    pub fn run(self, sink: &mut dyn TraceSink) -> io::Result<ServeReport> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = channel::<Req>();
        let mut coord = Coordinator::new(self.dag, self.policy, &self.cfg, sink);

        let read_timeout = Duration::from_millis(self.cfg.lease_ms.saturating_mul(4).max(2_000));
        let lease_ms = self.cfg.lease_ms;
        let drain_grace = Duration::from_millis(lease_ms.max(250));
        let mut done_at: Option<Instant> = None;

        loop {
            // Admit new connections (non-blocking).
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            handle_conn(stream, tx, read_timeout);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Serve queued requests; park briefly when idle.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(req) => {
                    coord.serve(req);
                    while let Ok(req) = rx.try_recv() {
                        coord.serve(req);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // lint:allow — the coordinator itself holds `tx`.
                    unreachable!("coordinator holds a sender")
                }
            }

            coord.expire_leases();

            if coord.machine.is_complete() {
                let now = Instant::now();
                let reached = *done_at.get_or_insert(now);
                if coord.machine.connected() == 0 || now.duration_since(reached) >= drain_grace {
                    break;
                }
            }
        }
        Ok(coord.into_report())
    }
}

/// The thin driver around the pure [`LeaseMachine`]: stamps requests
/// with wall-clock microseconds, steps the machine, and performs the
/// returned effects (trace records to the sink, frames to the reply
/// channels). Single-threaded inside [`Server::run`].
struct Coordinator<'a, 'd> {
    machine: LeaseMachine<'a, 'd>,
    sink: &'a mut dyn TraceSink,
    /// The driver's time epoch; every event gets
    /// `epoch.elapsed()` microseconds as its `now_us`.
    epoch: Instant,
}

impl<'a, 'd> Coordinator<'a, 'd> {
    fn new(
        dag: &'d Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: &'a ServerConfig,
        sink: &'a mut dyn TraceSink,
    ) -> Coordinator<'a, 'd> {
        let mut coord = Coordinator {
            machine: LeaseMachine::new(dag, policy, cfg.clone()),
            sink,
            epoch: Instant::now(),
        };
        let fx = coord.machine.boot(0);
        coord.absorb(fx, None);
        coord
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Perform the machine's effects: header and trace records into
    /// the sink, reply frames (if any) to `reply`.
    fn absorb(&mut self, fx: Vec<Effect>, reply: Option<&Sender<Message>>) {
        for e in fx {
            match e {
                Effect::Header(h) => self.sink.header(&h),
                Effect::Trace(ev) => self.sink.record(&ev),
                Effect::Reply(msg) => {
                    if let Some(reply) = reply {
                        let _ = reply.send(msg);
                    }
                }
                Effect::Registered { .. } => {
                    debug_assert!(false, "only Hello answers with Registered");
                }
            }
        }
    }

    fn serve(&mut self, req: Req) {
        let now_us = self.now_us();
        match req {
            Req::Register {
                id,
                speed,
                proto,
                resume,
                reply,
            } => {
                for e in self.machine.step(Event::Hello {
                    id,
                    speed,
                    proto,
                    resume,
                    now_us,
                }) {
                    match e {
                        Effect::Header(h) => self.sink.header(&h),
                        Effect::Trace(ev) => self.sink.record(&ev),
                        Effect::Registered { msg, worker, epoch } => {
                            let _ = reply.send(Registered { msg, worker, epoch });
                        }
                        Effect::Reply(_) => {
                            debug_assert!(false, "Hello answers with Registered, not Reply");
                        }
                    }
                }
            }
            Req::Want { worker, max, reply } => {
                let fx = self.machine.step(Event::Request {
                    worker,
                    max,
                    now_us,
                });
                self.absorb(fx, Some(&reply));
            }
            Req::Done {
                worker,
                task,
                ok,
                reply,
            } => {
                let fx = self.machine.step(Event::Done {
                    worker,
                    task,
                    ok,
                    now_us,
                });
                self.absorb(fx, Some(&reply));
            }
            Req::Beat {
                worker,
                task,
                reply,
            } => {
                let fx = self.machine.step(Event::Heartbeat {
                    worker,
                    task,
                    now_us,
                });
                self.absorb(fx, Some(&reply));
            }
            Req::Gone { worker, epoch } => {
                let fx = self.machine.step(Event::Sever {
                    worker,
                    epoch,
                    now_us,
                });
                self.absorb(fx, None);
            }
        }
    }

    /// Turn the passage of time into `Expire` events: every lease
    /// whose heartbeat deadline passed is forfeited and reallocated.
    fn expire_leases(&mut self) {
        let now_us = self.now_us();
        for (worker, task) in self.machine.expired(now_us) {
            let fx = self.machine.step(Event::Expire {
                worker,
                task,
                now_us,
            });
            self.absorb(fx, None);
        }
    }

    fn into_report(self) -> ServeReport {
        let now_us = self.now_us();
        self.machine.summary(now_us)
    }
}

/// Per-connection handler: speaks the wire protocol, forwards every
/// request to the coordinator, and relays the reply. Any protocol
/// violation gets an `Error` frame and closes the connection; EOF and
/// read timeouts count the worker as gone (carrying the registration
/// epoch, so a resumed worker's old connection cannot disturb it).
fn handle_conn(stream: TcpStream, tx: Sender<Req>, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(stream);
    let mut w = BufWriter::new(write_stream);
    let (reply_tx, reply_rx) = channel::<Message>();

    // The conversation must open with a registration (fresh or resume).
    let (worker, epoch) = {
        let (reg_tx, reg_rx) = channel::<Registered>();
        match read_msg(&mut r) {
            Ok(Message::Hello {
                id,
                speed,
                proto,
                resume,
            }) if speed.is_finite() && speed > 0.0 => {
                if tx
                    .send(Req::Register {
                        id,
                        speed,
                        proto,
                        resume,
                        reply: reg_tx,
                    })
                    .is_err()
                {
                    return;
                }
                let Ok(reg) = reg_rx.recv() else {
                    return;
                };
                let accepted = matches!(reg.msg, Message::Welcome { .. });
                if write_msg(&mut w, &reg.msg).is_err() {
                    if accepted {
                        // Registration already counted this worker as
                        // connected; undo it so drain doesn't wait on a
                        // connection that never got its welcome.
                        let _ = tx.send(Req::Gone {
                            worker: reg.worker,
                            epoch: reg.epoch,
                        });
                    }
                    return;
                }
                if !accepted {
                    // A typed error frame (unsupported protocol, bad
                    // resume token) was delivered; close.
                    return;
                }
                (reg.worker, reg.epoch)
            }
            Ok(_) => {
                let _ = write_msg(
                    &mut w,
                    &Message::error("expected hello with a positive finite speed"),
                );
                return;
            }
            Err(_) => return,
        }
    };

    loop {
        let req = match read_msg(&mut r) {
            Ok(Message::Request { max }) => Req::Want {
                worker,
                max,
                reply: reply_tx.clone(),
            },
            Ok(Message::Done { task, ok }) => Req::Done {
                worker,
                task,
                ok,
                reply: reply_tx.clone(),
            },
            Ok(Message::Heartbeat { task }) => Req::Beat {
                worker,
                task,
                reply: reply_tx.clone(),
            },
            Ok(Message::Bye) | Err(_) => {
                let _ = tx.send(Req::Gone { worker, epoch });
                return;
            }
            Ok(_) => {
                let _ = write_msg(
                    &mut w,
                    &Message::error("unexpected server-side message from a worker"),
                );
                let _ = tx.send(Req::Gone { worker, epoch });
                return;
            }
        };
        if tx.send(req).is_err() {
            return;
        }
        let Ok(reply) = reply_rx.recv() else { return };
        let draining = reply == Message::Drain;
        if write_msg(&mut w, &reply).is_err() {
            let _ = tx.send(Req::Gone { worker, epoch });
            return;
        }
        if draining {
            let _ = tx.send(Req::Gone { worker, epoch });
            return;
        }
    }
}
