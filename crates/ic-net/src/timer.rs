//! A hierarchical timer wheel for lease expiry and wakeup deadlines.
//!
//! The blocking server checked every lease's deadline on every loop
//! iteration — an O(leases) scan per tick that the reactor replaces
//! with this wheel: O(1) amortized `schedule`, O(1) amortized
//! `advance` per elapsed tick, independent of how many timers are
//! pending.
//!
//! # Lazy (non-cancelable) timers
//!
//! The wheel deliberately has **no cancel operation**. The lease
//! machine's `Event::Expire { worker, task, now_us }` is a guarded
//! no-op unless a matching lease exists with `deadline_us <= now_us`
//! (see `machine.rs`), so a stale timer — one whose lease was since
//! completed, forfeited, revoked, or renewed — fires harmlessly. The
//! reactor's obligation is only ever to *add* timers: one per lease
//! grant and one per renewal, each at the new deadline. That keeps the
//! wheel a bag of `(deadline, item)` pairs with no back-pointers into
//! the lease table, which is what lets `LeaseMachine` stay untouched.
//!
//! # Shape
//!
//! Deadlines are bucketed at [`TICK_US`] (~1 ms) granularity into
//! [`LEVELS`] levels of [`SLOTS`] slots each. Level 0 holds timers due
//! within the next `SLOTS` ticks at exact-tick resolution; each higher
//! level covers `SLOTS` times the span of the one below at
//! correspondingly coarser resolution, with entries *cascading* down a
//! level when time crosses their slot boundary. Timers past the
//! highest level land in an overflow list that is re-filed on the rare
//! level-3 boundary. Four levels at 64 slots and ~1 ms ticks cover
//! ~4.8 hours before overflow.

/// Microseconds per wheel tick: a power of two (~1.024 ms) so the
/// tick-of-deadline computation is a shift, not a division.
pub const TICK_US: u64 = 1 << 10;

/// Slots per level (a power of two, indexed by 6-bit fields of the
/// tick number).
pub const SLOTS: usize = 64;

/// Number of hierarchical levels.
pub const LEVELS: usize = 4;

const SLOT_BITS: u32 = SLOTS.trailing_zeros();

/// One pending timer: the absolute tick it is due, and its payload.
#[derive(Debug)]
struct Entry<T> {
    tick: u64,
    item: T,
}

/// A hierarchical timer wheel holding `(deadline_us, T)` pairs. See
/// the module docs for the lazy-timer contract.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// The last tick fully processed by [`advance`](TimerWheel::advance).
    now_tick: u64,
    /// The last microsecond time observed (construction or `advance`);
    /// finer-grained than `now_tick`, it decides whether a freshly
    /// scheduled deadline is already due.
    now_us: u64,
    /// `levels[l][slot]`: timers due when time reaches their tick.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Timers beyond the top level's horizon.
    overflow: Vec<Entry<T>>,
    /// Timers scheduled at or before `now_tick`: fire on next advance.
    due: Vec<T>,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel whose "now" is `now_us`.
    pub fn new(now_us: u64) -> TimerWheel<T> {
        let levels = (0..LEVELS)
            .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
            .collect();
        TimerWheel {
            now_tick: now_us >> TICK_US.trailing_zeros(),
            now_us,
            levels,
            overflow: Vec::new(),
            due: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending timers (stale ones included — they leave the
    /// wheel only by firing).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` to fire once time reaches `deadline_us`.
    ///
    /// The deadline is rounded **up** to the next tick boundary, so
    /// when the timer fires the clock reads at least `deadline_us` —
    /// the lease machine must observe a real expiry, never an early
    /// one it would ignore (and that nobody would ever re-arm).
    pub fn schedule(&mut self, deadline_us: u64, item: T) {
        self.len += 1;
        // A deadline at or before the last observed time is already
        // due — it must fire on the next advance even if the clock
        // never moves again (a frozen deterministic driver).
        if deadline_us <= self.now_us {
            self.due.push(item);
            return;
        }
        let shift = TICK_US.trailing_zeros();
        // Ceiling division by the tick size, saturating at the top.
        // `deadline_us > now_us` guarantees the resulting tick is
        // strictly beyond `now_tick`.
        let tick = match deadline_us.checked_add(TICK_US - 1) {
            Some(v) => v >> shift,
            None => u64::MAX >> shift,
        };
        self.place(Entry { tick, item });
    }

    /// File an entry (strictly in the future) into the correct level.
    fn place(&mut self, e: Entry<T>) {
        debug_assert!(e.tick > self.now_tick);
        let delta = e.tick - self.now_tick;
        for level in 0..LEVELS {
            let span_bits = SLOT_BITS * (u32::try_from(level).unwrap_or(0) + 1);
            if span_bits < 64 && delta >> span_bits != 0 {
                continue;
            }
            let slot_bits = SLOT_BITS * u32::try_from(level).unwrap_or(0);
            let slot = usize::try_from((e.tick >> slot_bits) & (SLOTS as u64 - 1)).unwrap_or(0);
            self.levels[level][slot].push(e);
            return;
        }
        self.overflow.push(e);
    }

    /// Advance the wheel to `now_us`, appending every fired payload to
    /// `fired` in firing order (entries due at the same tick fire in
    /// insertion order). Clock regressions are ignored: the wheel only
    /// moves forward.
    pub fn advance(&mut self, now_us: u64, fired: &mut Vec<T>) {
        self.len -= self.due.len();
        fired.append(&mut self.due);

        self.now_us = self.now_us.max(now_us);
        let target = now_us >> TICK_US.trailing_zeros();
        while self.now_tick < target {
            let t = self.now_tick + 1;
            self.now_tick = t;
            // Everything in the level-0 slot for `t` is due exactly
            // now: level-0 entries are placed within SLOTS ticks, so
            // slot index collisions across wraps cannot occur.
            let slot = usize::try_from(t & (SLOTS as u64 - 1)).unwrap_or(0);
            for e in self.levels[0][slot].drain(..) {
                debug_assert!(e.tick == t);
                self.len -= 1;
                fired.push(e.item);
            }
            // Cascade a higher level's slot each time `t` crosses that
            // level's boundary: its entries are now within the span of
            // a lower level (or due immediately).
            for level in 1..LEVELS {
                let boundary_bits = SLOT_BITS * u32::try_from(level).unwrap_or(0);
                if t & ((1u64 << boundary_bits) - 1) != 0 {
                    break;
                }
                let slot = usize::try_from((t >> boundary_bits) & (SLOTS as u64 - 1)).unwrap_or(0);
                let moved: Vec<Entry<T>> = self.levels[level][slot].drain(..).collect();
                self.refile(moved, fired);
            }
            // The overflow list is re-filed on the top-level boundary.
            let top_bits = SLOT_BITS * u32::try_from(LEVELS).unwrap_or(0);
            if top_bits < 64 && t & ((1u64 << top_bits) - 1) == 0 {
                let moved: Vec<Entry<T>> = std::mem::take(&mut self.overflow);
                self.refile(moved, fired);
            }
        }
    }

    fn refile(&mut self, entries: Vec<Entry<T>>, fired: &mut Vec<T>) {
        for e in entries {
            if e.tick <= self.now_tick {
                self.len -= 1;
                fired.push(e.item);
            } else {
                self.place(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<u32>, now_us: u64) -> Vec<u32> {
        let mut fired = Vec::new();
        wheel.advance(now_us, &mut fired);
        fired
    }

    #[test]
    fn a_past_deadline_fires_on_the_next_advance_even_without_clock_motion() {
        let mut w = TimerWheel::new(10_000_000);
        w.schedule(5, 1); // long past
        w.schedule(10_000_000, 2); // exactly now
        assert_eq!(w.len(), 2);
        // The clock has not moved at all — a frozen ManualClock — yet
        // both timers must still fire.
        assert_eq!(drain(&mut w, 10_000_000), vec![1, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn fires_at_or_after_the_deadline_never_before() {
        let mut w = TimerWheel::new(0);
        let deadline = 3 * TICK_US + 17; // mid-tick
        w.schedule(deadline, 7);
        // One microsecond before the deadline: nothing.
        assert_eq!(drain(&mut w, deadline - 1), Vec::<u32>::new());
        // At the deadline's rounded-up tick: fires, and the observed
        // clock is >= the requested deadline.
        assert_eq!(drain(&mut w, 4 * TICK_US), vec![7]);
    }

    #[test]
    fn level0_slots_fire_in_tick_order() {
        let mut w = TimerWheel::new(0);
        for i in 1..=32u64 {
            w.schedule(i * TICK_US, u32::try_from(i).unwrap());
        }
        let fired = drain(&mut w, 32 * TICK_US);
        assert_eq!(fired, (1..=32).collect::<Vec<u32>>());
    }

    #[test]
    fn cascade_at_the_level1_boundary() {
        let mut w = TimerWheel::new(0);
        // Just inside level 0, exactly on the boundary, just beyond.
        w.schedule(63 * TICK_US, 63);
        w.schedule(64 * TICK_US, 64);
        w.schedule(65 * TICK_US, 65);
        assert_eq!(drain(&mut w, 62 * TICK_US), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 63 * TICK_US), vec![63]);
        assert_eq!(drain(&mut w, 64 * TICK_US), vec![64]);
        assert_eq!(drain(&mut w, 65 * TICK_US), vec![65]);
    }

    #[test]
    fn cascade_at_the_level2_boundary() {
        let span = 64 * 64; // ticks covered by levels 0+1
        let mut w = TimerWheel::new(0);
        w.schedule((span - 1) * TICK_US, 1);
        w.schedule(span * TICK_US, 2);
        w.schedule((span + 1) * TICK_US, 3);
        // A single big jump straight past all three.
        assert_eq!(drain(&mut w, (span + 1) * TICK_US), vec![1, 2, 3]);
    }

    #[test]
    fn overflow_beyond_the_top_level_still_fires() {
        let horizon = 64u64 * 64 * 64 * 64; // ticks beyond LEVELS
        let mut w = TimerWheel::new(0);
        w.schedule((horizon + 5) * TICK_US, 9);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, horizon * TICK_US), Vec::<u32>::new());
        assert_eq!(drain(&mut w, (horizon + 5) * TICK_US), vec![9]);
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_schedules_and_advances_never_lose_or_duplicate() {
        // Deterministic pseudo-random soak: every scheduled timer
        // fires exactly once, never before its deadline.
        let mut w = TimerWheel::new(0);
        let mut state = 0x1C5EEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        let mut scheduled: Vec<(u64, u32)> = Vec::new();
        let mut fired_at: Vec<(u64, u32)> = Vec::new();
        for i in 0..2_000u32 {
            let delay = rng() % (200 * TICK_US);
            let deadline = now + delay;
            w.schedule(deadline, i);
            scheduled.push((deadline, i));
            now += rng() % (8 * TICK_US);
            let mut fired = Vec::new();
            w.advance(now, &mut fired);
            fired_at.extend(fired.into_iter().map(|id| (now, id)));
        }
        let mut tail = Vec::new();
        now += 300 * TICK_US;
        w.advance(now, &mut tail);
        fired_at.extend(tail.into_iter().map(|id| (now, id)));
        assert!(w.is_empty());
        assert_eq!(fired_at.len(), scheduled.len());
        for (deadline, id) in scheduled {
            let (at, _) = fired_at
                .iter()
                .find(|(_, f)| *f == id)
                .copied()
                .unwrap_or((0, 0));
            assert!(at >= deadline, "timer {id} fired at {at} < {deadline}");
            // Never more than one tick late relative to when time
            // actually reached it (lateness from advance() being
            // called sparsely is the caller's poll granularity).
        }
    }

    #[test]
    fn renewal_races_are_resolved_by_laziness_not_cancellation() {
        // Model the expiry-vs-renewal race: a lease granted at t=0
        // with deadline d1 is renewed to d2 > d1. Both timers stay in
        // the wheel; the d1 firing is the stale one. The wheel's only
        // job is to deliver both, in order, at-or-after their
        // deadlines — the machine's `deadline_us <= now_us` guard does
        // the rest.
        let mut w = TimerWheel::new(0);
        let d1 = 10 * TICK_US;
        let d2 = 30 * TICK_US;
        w.schedule(d1, 1);
        w.schedule(d2, 1); // same payload: (worker, task) pair
        assert_eq!(drain(&mut w, d1), vec![1]); // stale fire: no-op upstream
        assert_eq!(drain(&mut w, d2), vec![1]); // real expiry
        assert!(w.is_empty());
    }
}
