//! The worker client: the volatile remote "client" of the paper.
//!
//! [`run_worker`] connects to a server, registers, and loops
//! request → compute → report until the server drains it. "Compute" is
//! simulated (a sleep scaled by the declared speed, with deterministic
//! jitter from the worker's seed); what matters to the server — and
//! what the fault plans exercise — is the *protocol* behaviour: a
//! worker may die without reporting, may stall past its lease, or may
//! honestly report a failure, and the server must reallocate in every
//! case.
//!
//! Long tasks heartbeat at a third of the lease interval so a slow but
//! healthy worker is never mistaken for a dead one.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ic_dag::rng::XorShift64;

use crate::wire::{read_msg, write_msg, Message, WireError};

/// How (whether) a worker misbehaves — the `--flaky` fault-injection
/// surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Reliable: computes every task and reports honestly.
    None,
    /// Before each task's report, dies with this probability (drops the
    /// connection without reporting, losing the work).
    Random(f64),
    /// Completes this many tasks, then dies on the next assignment.
    DieAfter(usize),
    /// Completes this many tasks, then holds its next task without
    /// reporting or heartbeating until the lease is long gone, then
    /// exits — the slow-silent failure mode leases exist for.
    StallAfter(usize),
}

/// Worker identity and behaviour.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display id sent at registration (recorded in the trace header).
    pub id: String,
    /// Declared speed factor: compute time is divided by this.
    pub speed: f64,
    /// Mean simulated compute per task, in milliseconds.
    pub mean_ms: u64,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Seed for the worker's private jitter/fault randomness.
    pub seed: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            id: "worker".into(),
            speed: 1.0,
            mean_ms: 10,
            fault: FaultPlan::None,
            seed: 1,
        }
    }
}

/// What a worker did before disconnecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The index the server assigned this worker (the `client` field of
    /// its trace events).
    pub worker: u64,
    /// Tasks completed and accepted.
    pub completed: usize,
    /// True when the worker exited through its fault plan rather than a
    /// server `Drain`.
    pub died: bool,
}

/// Connect to `addr`, register, and work until drained (or until the
/// fault plan kills the worker). Returns the worker's own account of
/// the run; a worker that dies *by plan* still returns `Ok` (with
/// `died = true`) — only transport and protocol errors are `Err`.
pub fn run_worker(addr: impl ToSocketAddrs, cfg: &WorkerConfig) -> io::Result<WorkerReport> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let write_stream = stream.try_clone()?;
    let mut r = BufReader::new(stream);
    let mut w = BufWriter::new(write_stream);
    let mut rng = XorShift64::new(cfg.seed);

    write_msg(
        &mut w,
        &Message::Hello {
            id: cfg.id.clone(),
            speed: cfg.speed,
        },
    )?;
    let (worker, lease_ms) = match read_msg(&mut r).map_err(to_io)? {
        Message::Welcome { worker, lease_ms } => (worker, lease_ms),
        Message::Error { msg } => return Err(io::Error::other(msg)),
        other => return Err(io::Error::other(format!("expected welcome, got {other:?}"))),
    };

    let mut completed = 0usize;
    loop {
        write_msg(&mut w, &Message::Request)?;
        match read_msg(&mut r).map_err(to_io)? {
            Message::Assign { task } => {
                match plan_action(cfg.fault, completed, &mut rng) {
                    Action::Die => {
                        // Drop the connection mid-lease: the server's
                        // lease (or the disconnect itself) reallocates.
                        return Ok(WorkerReport {
                            worker,
                            completed,
                            died: true,
                        });
                    }
                    Action::Stall => {
                        // Hold the task silently past several lease
                        // windows, then give up without reporting.
                        std::thread::sleep(Duration::from_millis(lease_ms.saturating_mul(4)));
                        let _ = write_msg(&mut w, &Message::Bye);
                        return Ok(WorkerReport {
                            worker,
                            completed,
                            died: true,
                        });
                    }
                    Action::Compute => {
                        compute(cfg, lease_ms, &mut rng, task, &mut r, &mut w)?;
                        match read_msg(&mut r).map_err(to_io)? {
                            Message::Ack { accepted, .. } => {
                                if accepted {
                                    completed += 1;
                                }
                            }
                            other => {
                                return Err(io::Error::other(format!(
                                    "expected ack, got {other:?}"
                                )))
                            }
                        }
                    }
                }
            }
            Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.max(1))),
            Message::Drain => {
                let _ = write_msg(&mut w, &Message::Bye);
                return Ok(WorkerReport {
                    worker,
                    completed,
                    died: false,
                });
            }
            Message::Error { msg } => return Err(io::Error::other(msg)),
            other => return Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }
}

enum Action {
    Compute,
    Die,
    Stall,
}

fn plan_action(fault: FaultPlan, completed: usize, rng: &mut XorShift64) -> Action {
    match fault {
        FaultPlan::None => Action::Compute,
        FaultPlan::Random(p) => {
            if rng.gen_bool(p) {
                Action::Die
            } else {
                Action::Compute
            }
        }
        FaultPlan::DieAfter(k) => {
            if completed >= k {
                Action::Die
            } else {
                Action::Compute
            }
        }
        FaultPlan::StallAfter(k) => {
            if completed >= k {
                Action::Stall
            } else {
                Action::Compute
            }
        }
    }
}

/// Simulate the task's compute time (jittered mean, scaled by declared
/// speed), heartbeating at a third of the lease so the server keeps the
/// lease alive, then report success.
fn compute(
    cfg: &WorkerConfig,
    lease_ms: u64,
    rng: &mut XorShift64,
    task: u64,
    r: &mut BufReader<TcpStream>,
    w: &mut BufWriter<TcpStream>,
) -> io::Result<()> {
    let jitter = 0.5 + rng.gen_f64(); // U[0.5, 1.5)
    let mut left = ((cfg.mean_ms as f64) * jitter / cfg.speed).round() as u64;
    let beat_every = (lease_ms / 3).max(1);
    while left > beat_every {
        std::thread::sleep(Duration::from_millis(beat_every));
        left -= beat_every;
        write_msg(w, &Message::Heartbeat { task })?;
        match read_msg(r).map_err(to_io)? {
            Message::Ack { .. } => {}
            other => return Err(io::Error::other(format!("expected ack, got {other:?}"))),
        }
    }
    std::thread::sleep(Duration::from_millis(left));
    write_msg(w, &Message::Done { task, ok: true })
}

fn to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}
