//! The worker client: the volatile remote "client" of the paper.
//!
//! [`run_worker`] connects to a server, registers, and loops
//! request → compute → report until the server drains it. "Compute" is
//! simulated (a sleep scaled by the declared speed, with deterministic
//! jitter from the worker's seed); what matters to the server — and
//! what the fault plans exercise — is the *protocol* behaviour: a
//! worker may die without reporting, may stall past its lease, may
//! honestly report a failure — or (v2) may lose its TCP connection
//! mid-lease and reconnect with the resume token from its `welcome`,
//! keeping its leases.
//!
//! A v2 worker may request up to [`WorkerConfig::batch`] tasks per
//! `request`; it computes them in assignment order, heartbeating
//! *every* held lease at a third of the lease interval so a slow but
//! healthy worker is never mistaken for a dead one. A `revoke` reply
//! to a heartbeat means another worker already completed that task
//! (the speculative-lease race was lost): the task is abandoned
//! without a report.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ic_dag::rng::XorShift64;

use crate::wire::{Decoder, Frame, Message, WireError, PROTO_CURRENT, PROTO_V2};

/// How (whether) a worker misbehaves — the `--flaky` fault-injection
/// surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Reliable: computes every task and reports honestly.
    None,
    /// Before each task's report, dies with this probability (drops the
    /// connection without reporting, losing the work).
    Random(f64),
    /// Completes this many tasks, then dies on the next assignment.
    DieAfter(usize),
    /// Completes this many tasks, then holds its next task without
    /// reporting or heartbeating until the lease is long gone, then
    /// exits — the slow-silent failure mode leases exist for.
    StallAfter(usize),
    /// Completes this many tasks, then severs its TCP connection while
    /// holding an assignment — and (if reconnecting is enabled and the
    /// server issued a resume token) reconnects with `hello{resume}`
    /// to pick its leases back up. The sever happens once.
    SeverAfter(usize),
}

/// Worker identity and behaviour. Construct with
/// [`WorkerConfig::builder`] (the struct is `#[non_exhaustive]`: new
/// knobs may appear without a breaking change).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WorkerConfig {
    /// Display id sent at registration (recorded in the trace header).
    pub id: String,
    /// Declared speed factor: compute time is divided by this.
    pub speed: f64,
    /// Mean simulated compute per task, in milliseconds.
    pub mean_ms: u64,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Seed for the worker's private jitter/fault randomness.
    pub seed: u64,
    /// Highest protocol version to offer in `hello`.
    pub proto: u32,
    /// Batch appetite: the `max` sent with each `request` (only
    /// honoured on v2 connections; clamped to at least 1).
    pub batch: u64,
    /// Whether a severed connection is re-established with the resume
    /// token. Disabled, [`FaultPlan::SeverAfter`] behaves like
    /// [`FaultPlan::DieAfter`].
    pub reconnect: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            id: "worker".into(),
            speed: 1.0,
            mean_ms: 10,
            fault: FaultPlan::None,
            seed: 1,
            proto: PROTO_CURRENT,
            batch: 1,
            reconnect: true,
        }
    }
}

impl WorkerConfig {
    /// A builder starting from [`WorkerConfig::default`].
    pub fn builder() -> WorkerConfigBuilder {
        WorkerConfigBuilder {
            cfg: WorkerConfig::default(),
        }
    }
}

/// Builder for [`WorkerConfig`]; every knob defaults as in
/// [`WorkerConfig::default`].
#[derive(Debug, Clone)]
pub struct WorkerConfigBuilder {
    cfg: WorkerConfig,
}

impl WorkerConfigBuilder {
    /// Display id sent at registration.
    pub fn id(mut self, id: impl Into<String>) -> Self {
        self.cfg.id = id.into();
        self
    }

    /// Declared speed factor.
    pub fn speed(mut self, speed: f64) -> Self {
        self.cfg.speed = speed;
        self
    }

    /// Mean simulated compute per task, in milliseconds.
    pub fn mean_ms(mut self, ms: u64) -> Self {
        self.cfg.mean_ms = ms;
        self
    }

    /// Fault injection plan.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.cfg.fault = fault;
        self
    }

    /// Jitter/fault seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Highest protocol version to offer.
    pub fn proto(mut self, proto: u32) -> Self {
        self.cfg.proto = proto;
        self
    }

    /// Batch appetite (clamped to at least 1).
    pub fn batch(mut self, batch: u64) -> Self {
        self.cfg.batch = batch.max(1);
        self
    }

    /// Whether to resume after a severed connection.
    pub fn reconnect(mut self, yes: bool) -> Self {
        self.cfg.reconnect = yes;
        self
    }

    /// Finish the build.
    pub fn build(self) -> WorkerConfig {
        self.cfg
    }
}

/// What a worker did before disconnecting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkerReport {
    /// The index the server assigned this worker (the `client` field of
    /// its trace events).
    pub worker: u64,
    /// Tasks completed and accepted.
    pub completed: usize,
    /// Successful resumes: connections re-established with the resume
    /// token, leases intact.
    pub resumes: usize,
    /// True when the worker exited through its fault plan rather than a
    /// server `Drain`.
    pub died: bool,
}

/// One live connection to the server (plus what its `welcome` said).
/// Framing goes through the buffer-oriented [`Frame`]/[`Decoder`]
/// path — the same code the reactor runs on its side of the wire.
struct Session {
    stream: TcpStream,
    dec: Decoder,
    /// Reusable encode buffer.
    wbuf: Vec<u8>,
    worker: u64,
    lease_ms: u64,
    /// Negotiated protocol version (the minimum of both sides').
    proto: u32,
    /// Resume token, when the (v2) server issued one.
    token: Option<String>,
}

impl Session {
    /// Encode and transmit one frame.
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.wbuf.clear();
        Frame::encode_into(msg, &mut self.wbuf);
        self.stream.write_all(&self.wbuf)
    }

    /// Block until the next complete frame arrives.
    fn recv(&mut self) -> io::Result<Message> {
        loop {
            if let Some(msg) = self.dec.next_msg().map_err(to_io)? {
                return Ok(msg);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.dec.feed(&chunk[..n]);
        }
    }
}

/// Connect and register (fresh or with a resume token). Returns the
/// session and the tasks the server says we still hold (non-empty only
/// on a resume).
fn open(
    addr: SocketAddr,
    cfg: &WorkerConfig,
    resume: Option<String>,
) -> io::Result<(Session, Vec<u64>)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut sess = Session {
        stream,
        dec: Decoder::new(),
        wbuf: Vec::new(),
        worker: 0,
        lease_ms: 0,
        proto: PROTO_CURRENT,
        token: None,
    };
    sess.send(&Message::Hello {
        id: cfg.id.clone(),
        speed: cfg.speed,
        proto: cfg.proto,
        resume,
    })?;
    match sess.recv()? {
        Message::Welcome {
            worker,
            lease_ms,
            proto,
            resume,
            tasks,
        } => {
            sess.worker = worker;
            sess.lease_ms = lease_ms;
            sess.proto = proto;
            sess.token = resume;
            Ok((sess, tasks))
        }
        Message::Error { code, msg } => Err(io::Error::other(if code.is_empty() {
            msg
        } else {
            format!("{code}: {msg}")
        })),
        other => Err(io::Error::other(format!("expected welcome, got {other:?}"))),
    }
}

/// Connect to `addr`, register, and work until drained (or until the
/// fault plan kills the worker). Returns the worker's own account of
/// the run; a worker that dies *by plan* still returns `Ok` (with
/// `died = true`) — only transport and protocol errors are `Err`.
pub fn run_worker(addr: impl ToSocketAddrs, cfg: &WorkerConfig) -> io::Result<WorkerReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
    let mut rng = XorShift64::new(cfg.seed);
    let (mut sess, held) = open(addr, cfg, None)?;
    let mut held: VecDeque<u64> = held.into();
    let mut completed = 0usize;
    let mut resumes = 0usize;
    let mut severed = false;

    loop {
        if held.is_empty() {
            let max = if sess.proto >= PROTO_V2 {
                cfg.batch.max(1)
            } else {
                1
            };
            sess.send(&Message::Request { max })?;
            match sess.recv()? {
                Message::Assign { tasks } => held.extend(tasks),
                Message::Wait { ms } => {
                    std::thread::sleep(Duration::from_millis(ms.max(1)));
                    continue;
                }
                Message::Drain => {
                    let _ = sess.send(&Message::Bye);
                    return Ok(WorkerReport {
                        worker: sess.worker,
                        completed,
                        resumes,
                        died: false,
                    });
                }
                Message::Error { msg, .. } => return Err(io::Error::other(msg)),
                other => return Err(io::Error::other(format!("unexpected reply {other:?}"))),
            }
        }

        match plan_action(cfg.fault, completed, severed, &mut rng) {
            Action::Die => {
                // Drop the connection mid-lease: the server's lease
                // (or the disconnect itself) reallocates.
                return Ok(WorkerReport {
                    worker: sess.worker,
                    completed,
                    resumes,
                    died: true,
                });
            }
            Action::Stall => {
                // Hold the task silently past several lease windows,
                // then give up without reporting.
                std::thread::sleep(Duration::from_millis(sess.lease_ms.saturating_mul(4)));
                let _ = sess.send(&Message::Bye);
                return Ok(WorkerReport {
                    worker: sess.worker,
                    completed,
                    resumes,
                    died: true,
                });
            }
            Action::Sever => {
                severed = true;
                let token = if cfg.reconnect {
                    sess.token.take()
                } else {
                    None
                };
                let Some(token) = token else {
                    // No token (v1 session) or reconnecting disabled:
                    // the sever is just a death.
                    return Ok(WorkerReport {
                        worker: sess.worker,
                        completed,
                        resumes,
                        died: true,
                    });
                };
                // Sever without a word — the leases stay with the
                // slot — then come back with the resume token.
                drop(sess);
                let (next, restored) = open(addr, cfg, Some(token))?;
                sess = next;
                resumes += 1;
                held = restored.into();
            }
            Action::Compute => match compute_front(cfg, &mut sess, &mut held, &mut rng)? {
                TaskOutcome::Accepted => completed += 1,
                TaskOutcome::Rejected | TaskOutcome::Revoked => {}
            },
        }
    }
}

enum Action {
    Compute,
    Die,
    Stall,
    Sever,
}

fn plan_action(fault: FaultPlan, completed: usize, severed: bool, rng: &mut XorShift64) -> Action {
    match fault {
        FaultPlan::None => Action::Compute,
        FaultPlan::Random(p) => {
            if rng.gen_bool(p) {
                Action::Die
            } else {
                Action::Compute
            }
        }
        FaultPlan::DieAfter(k) => {
            if completed >= k {
                Action::Die
            } else {
                Action::Compute
            }
        }
        FaultPlan::StallAfter(k) => {
            if completed >= k {
                Action::Stall
            } else {
                Action::Compute
            }
        }
        FaultPlan::SeverAfter(k) => {
            if completed >= k && !severed {
                Action::Sever
            } else {
                Action::Compute
            }
        }
    }
}

/// How computing one task ended.
enum TaskOutcome {
    /// Reported and accepted by the server.
    Accepted,
    /// Reported but rejected (late or duplicate).
    Rejected,
    /// Revoked mid-compute: another worker completed it first.
    Revoked,
}

/// Simulate the front task's compute time (jittered mean, scaled by
/// declared speed), heartbeating *every* held lease at a third of the
/// lease interval, then report success. A `revoke` reply drops that
/// task from the held queue; if the task being computed is revoked,
/// the work is abandoned without a report.
fn compute_front(
    cfg: &WorkerConfig,
    sess: &mut Session,
    held: &mut VecDeque<u64>,
    rng: &mut XorShift64,
) -> io::Result<TaskOutcome> {
    let task = held[0];
    let jitter = 0.5 + rng.gen_f64(); // U[0.5, 1.5)
    let mut left = ((cfg.mean_ms as f64) * jitter / cfg.speed).round() as u64;
    let beat_every = (sess.lease_ms / 3).max(1);
    while left > beat_every {
        std::thread::sleep(Duration::from_millis(beat_every));
        left -= beat_every;
        let mut i = 0;
        while i < held.len() {
            let t = held[i];
            sess.send(&Message::Heartbeat { task: t })?;
            match sess.recv()? {
                Message::Ack { .. } => i += 1,
                Message::Revoke { task: revoked } if revoked == t => {
                    held.remove(i);
                }
                other => return Err(io::Error::other(format!("expected ack, got {other:?}"))),
            }
        }
        if held.front() != Some(&task) {
            return Ok(TaskOutcome::Revoked);
        }
    }
    std::thread::sleep(Duration::from_millis(left));
    sess.send(&Message::Done { task, ok: true })?;
    held.pop_front();
    match sess.recv()? {
        Message::Ack { accepted, .. } => Ok(if accepted {
            TaskOutcome::Accepted
        } else {
            TaskOutcome::Rejected
        }),
        other => Err(io::Error::other(format!("expected ack, got {other:?}"))),
    }
}

fn to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}
