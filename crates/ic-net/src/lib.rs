//! # `ic-net` — the IC task server, for real this time
//!
//! The paper's entire setting is a server that allocates ELIGIBLE tasks
//! of a computation-dag to remote clients it does not control: they
//! may be slow, may die, and may never return results. `ic-sim`
//! studies that server in a discrete-event vacuum; this crate *is* the
//! server — a single-threaded event-driven TCP service (plus the
//! matching worker client) built entirely on `std::net`, keeping the
//! workspace's zero-external-dependency rule.
//!
//! * [`wire`] — the *versioned* length-prefixed JSON frame protocol,
//!   encoded with the in-repo parser ([`ic_sim::json`]); every decoding
//!   failure is a typed error, never a panic. `hello`/`welcome`
//!   negotiate the protocol version; v2 adds resume tokens, batched
//!   assignment, and lease revocation. The buffer-oriented
//!   [`wire::Frame`] / [`wire::Decoder`] pair is the one framing path
//!   shared by the reactor and the worker client.
//! * [`machine`] — the *pure* lease-protocol state machine:
//!   `LeaseMachine::step(Event) -> Vec<Effect>` with no clock, socket,
//!   or sink of its own, so the `ic-check` model checker can
//!   exhaustively enumerate event interleavings over the exact code
//!   the server runs.
//! * [`reactor`] — the event-driven core: one thread, a nonblocking
//!   [`reactor::Poller`], per-connection frame buffers, a hierarchical
//!   [`timer::TimerWheel`] for lease expiry, and an injectable
//!   [`reactor::Clock`]/[`reactor::Poller`] pair
//!   ([`reactor::Driver`]) so deterministic in-process drivers and the
//!   live TCP driver run the same code.
//! * [`timer`] — the lazy (never-cancelled) hierarchical timer wheel
//!   behind lease expiry and steal-deadline wakeups.
//! * [`server`] — the TCP compatibility wrapper over the reactor, and
//!   the shared [`server::ServerConfig`]: leases with heartbeat
//!   timeouts, exponential-backoff reallocation of lost tasks,
//!   resumable leases across reconnects, speculative straggler
//!   re-lease at the drain barrier, batched allocation,
//!   duplicate-result resolution, graceful drain, and allocation
//!   through any [`ic_sched::AllocationPolicy`] — an IC-optimal
//!   [`ic_sched::Schedule`] and the FIFO/greedy heuristics plug in
//!   interchangeably.
//! * [`worker`] — the volatile client, with fault-injection plans
//!   (random death, death after `k` tasks, silent stalls, severed
//!   connections that resume) for exercising the server's reallocation
//!   and resumption machinery.
//!
//! Every server decision streams through the [`ic_sim::trace`] event
//! model, so a finished run's JSONL trace replays clean under
//! `ic-prio audit --schedule` — the server, the trace format, and the
//! auditor form one closed loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod reactor;
pub mod server;
pub mod timer;
pub mod wire;
pub mod worker;

pub use machine::{Effect, Event, LeaseMachine, LeaseView};
pub use reactor::{
    loopback, Clock, ConnId, Deadline, Driver, IoEvent, LoopbackConn, LoopbackHandle,
    LoopbackPoller, ManualClock, MonotonicClock, Poller, Reactor, ShardedTable, TcpPoller,
};
pub use server::{ServeReport, Server, ServerConfig, ServerConfigBuilder};
pub use timer::TimerWheel;
#[allow(deprecated)]
pub use wire::{read_msg, write_msg};
pub use wire::{
    Decoder, Frame, Message, WireError, ERR_BAD_RESUME, ERR_UNSUPPORTED, MAX_FRAME, PROTO_CURRENT,
    PROTO_V1, PROTO_V2,
};
pub use worker::{run_worker, FaultPlan, WorkerConfig, WorkerConfigBuilder, WorkerReport};
