//! The length-prefixed JSON wire protocol.
//!
//! Every message on the wire is one *frame*: a 4-byte big-endian byte
//! length followed by that many bytes of UTF-8 JSON encoding a single
//! [`Message`]. Frames are bounded by [`MAX_FRAME`] so a corrupt or
//! hostile length prefix cannot make the peer allocate unbounded
//! memory; every decoding failure is a typed [`WireError`], never a
//! panic — a server must survive garbage from the network.
//!
//! The JSON layer is the workspace's own parser ([`ic_sim::json`]): the
//! protocol adds no external dependencies, and traces, frames, and CLI
//! output all share one encoder. Each message is an object whose
//! `"type"` field selects the variant, e.g.
//!
//! ```text
//! {"type":"hello","id":"worker-3","speed":2.0}
//! {"type":"assign","task":17}
//! ```

use std::io::{Read, Write};

use ic_sim::json::{self, json_string, Json};

/// Upper bound on a frame's JSON payload, in bytes (1 MiB). A length
/// prefix above this is rejected before any allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Every message either side may send. Client→server: [`Hello`],
/// [`Request`], [`Done`], [`Heartbeat`], [`Bye`]. Server→client:
/// [`Welcome`], [`Assign`], [`Wait`], [`Drain`], [`Ack`], [`Error`].
///
/// [`Hello`]: Message::Hello
/// [`Request`]: Message::Request
/// [`Done`]: Message::Done
/// [`Heartbeat`]: Message::Heartbeat
/// [`Bye`]: Message::Bye
/// [`Welcome`]: Message::Welcome
/// [`Assign`]: Message::Assign
/// [`Wait`]: Message::Wait
/// [`Drain`]: Message::Drain
/// [`Ack`]: Message::Ack
/// [`Error`]: Message::Error
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker registration: a display id and the worker's declared
    /// speed factor (recorded in the trace header).
    Hello {
        /// Worker-chosen display id.
        id: String,
        /// Declared speed factor (1.0 = baseline).
        speed: f64,
    },
    /// Worker asks for a task.
    Request,
    /// Worker reports the outcome of its leased task. `ok = false`
    /// voluntarily returns the task for reallocation.
    Done {
        /// The task's node index.
        task: u64,
        /// Whether the task was computed successfully.
        ok: bool,
    },
    /// Worker renews the lease on a long-running task.
    Heartbeat {
        /// The task's node index.
        task: u64,
    },
    /// Worker disconnects deliberately.
    Bye,
    /// Server accepts a registration.
    Welcome {
        /// The worker index the server assigned (the `client` field of
        /// subsequent trace events).
        worker: u64,
        /// Lease duration: a leased task whose worker neither reports
        /// nor heartbeats within this window is reallocated.
        lease_ms: u64,
    },
    /// Server allocates a task to the requesting worker.
    Assign {
        /// The task's node index.
        task: u64,
    },
    /// No task is allocatable right now; ask again after `ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        ms: u64,
    },
    /// The dag is complete (or completing without needing this worker);
    /// the worker should disconnect.
    Drain,
    /// Server acknowledges a `Done` or `Heartbeat`. `accepted = false`
    /// means the report was late or duplicate and was discarded.
    Ack {
        /// The task's node index.
        task: u64,
        /// Whether the report was applied.
        accepted: bool,
    },
    /// Protocol error; the server closes the connection after sending.
    Error {
        /// Human-readable reason.
        msg: String,
    },
}

impl Message {
    /// Encode as the JSON object body of a frame.
    pub fn to_json(&self) -> String {
        match self {
            Message::Hello { id, speed } => {
                format!(
                    "{{\"type\":\"hello\",\"id\":{},\"speed\":{}}}",
                    json_string(id),
                    fmt_f64(*speed)
                )
            }
            Message::Request => "{\"type\":\"request\"}".into(),
            Message::Done { task, ok } => {
                format!("{{\"type\":\"done\",\"task\":{task},\"ok\":{ok}}}")
            }
            Message::Heartbeat { task } => {
                format!("{{\"type\":\"heartbeat\",\"task\":{task}}}")
            }
            Message::Bye => "{\"type\":\"bye\"}".into(),
            Message::Welcome { worker, lease_ms } => {
                format!("{{\"type\":\"welcome\",\"worker\":{worker},\"lease_ms\":{lease_ms}}}")
            }
            Message::Assign { task } => format!("{{\"type\":\"assign\",\"task\":{task}}}"),
            Message::Wait { ms } => format!("{{\"type\":\"wait\",\"ms\":{ms}}}"),
            Message::Drain => "{\"type\":\"drain\"}".into(),
            Message::Ack { task, accepted } => {
                format!("{{\"type\":\"ack\",\"task\":{task},\"accepted\":{accepted}}}")
            }
            Message::Error { msg } => {
                format!("{{\"type\":\"error\",\"msg\":{}}}", json_string(msg))
            }
        }
    }

    /// Decode a frame body. Any structural problem — not an object, an
    /// unknown `"type"`, a missing or mistyped field — is
    /// [`WireError::Malformed`].
    pub fn from_json(v: &Json) -> Result<Message, WireError> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("message has no \"type\" field"))?;
        let task = || {
            v.get("task")
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed("missing numeric \"task\""))
        };
        match kind {
            "hello" => Ok(Message::Hello {
                id: v
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("hello without string \"id\""))?
                    .to_string(),
                speed: v
                    .get("speed")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed("hello without numeric \"speed\""))?,
            }),
            "request" => Ok(Message::Request),
            "done" => Ok(Message::Done {
                task: task()?,
                ok: match v.get("ok") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(malformed("done without boolean \"ok\"")),
                },
            }),
            "heartbeat" => Ok(Message::Heartbeat { task: task()? }),
            "bye" => Ok(Message::Bye),
            "welcome" => Ok(Message::Welcome {
                worker: v
                    .get("worker")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("welcome without numeric \"worker\""))?,
                lease_ms: v
                    .get("lease_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("welcome without numeric \"lease_ms\""))?,
            }),
            "assign" => Ok(Message::Assign { task: task()? }),
            "wait" => Ok(Message::Wait {
                ms: v
                    .get("ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("wait without numeric \"ms\""))?,
            }),
            "drain" => Ok(Message::Drain),
            "ack" => Ok(Message::Ack {
                task: task()?,
                accepted: match v.get("accepted") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(malformed("ack without boolean \"accepted\"")),
                },
            }),
            "error" => Ok(Message::Error {
                msg: v
                    .get("msg")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => Err(malformed(&format!("unknown message type \"{other}\""))),
        }
    }
}

/// `f64` in a form the JSON parser reads back exactly (Rust's shortest
/// round-trip `Display`, with a forced `.0` for integral values so the
/// output is unambiguously a number with a fraction).
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) || s == "NaN" || s.contains("inf") {
        // NaN/inf are not valid JSON; callers never send them (speeds
        // are validated positive finite), but keep the encoder total.
        if x.is_finite() {
            s
        } else {
            "0".into()
        }
    } else {
        format!("{s}.0")
    }
}

fn malformed(msg: &str) -> WireError {
    WireError::Malformed(msg.to_string())
}

/// Everything that can go wrong reading a frame. `Io` with
/// `UnexpectedEof` mid-frame means the peer hung up; the rest are
/// protocol violations the reader survives without panicking.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes truncation:
    /// `UnexpectedEof` inside a frame).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The payload is not valid JSON (or not valid UTF-8).
    Garbage(String),
    /// The payload is JSON but not a protocol message.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::Garbage(e) => write!(f, "frame is not JSON: {e}"),
            WireError::Malformed(e) => write!(f, "frame is not a protocol message: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error means the peer closed the connection cleanly
    /// between frames (EOF on the length prefix) — the normal end of a
    /// conversation, as opposed to a protocol violation.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

/// Write `msg` as one frame and flush it.
pub fn write_msg(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let body = msg.to_json();
    debug_assert!(body.len() <= MAX_FRAME, "outgoing frame within bounds");
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one frame and decode it. Never panics on hostile input: an
/// oversized prefix, a truncated body, non-UTF-8 bytes, broken JSON,
/// and well-formed-but-foreign JSON each map to their [`WireError`]
/// variant.
pub fn read_msg(r: &mut impl Read) -> Result<Message, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body).map_err(|e| WireError::Garbage(e.to_string()))?;
    let v = json::parse(&text).map_err(WireError::Garbage)?;
    Message::from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips_through_a_frame() {
        let msgs = [
            Message::Hello {
                id: "worker \"zero\"".into(),
                speed: 2.5,
            },
            Message::Request,
            Message::Done { task: 17, ok: true },
            Message::Done { task: 0, ok: false },
            Message::Heartbeat { task: 3 },
            Message::Bye,
            Message::Welcome {
                worker: 4,
                lease_ms: 500,
            },
            Message::Assign { task: 65 },
            Message::Wait { ms: 50 },
            Message::Drain,
            Message::Ack {
                task: 9,
                accepted: false,
            },
            Message::Error {
                msg: "tab\there".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(&read_msg(&mut r).unwrap(), m);
        }
        // And the stream is exactly consumed.
        assert!(read_msg(&mut r).unwrap_err().is_clean_eof());
    }

    #[test]
    fn integral_speed_survives_the_round_trip() {
        let m = Message::Hello {
            id: "w".into(),
            speed: 3.0,
        };
        let mut buf = Vec::new();
        write_msg(&mut buf, &m).unwrap();
        assert_eq!(read_msg(&mut &buf[..]).unwrap(), m);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        match read_msg(&mut &buf[..]) {
            Err(WireError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Message::Request).unwrap();
        buf.truncate(buf.len() - 2);
        match read_msg(&mut &buf[..]) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_a_garbage_error() {
        for body in [&b"not json"[..], b"{\"type\":", b"\xff\xfe"] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
            buf.extend_from_slice(body);
            assert!(
                matches!(read_msg(&mut &buf[..]), Err(WireError::Garbage(_))),
                "{body:?}"
            );
        }
    }

    #[test]
    fn foreign_json_is_malformed_not_a_panic() {
        for body in [
            "{\"type\":\"frobnicate\"}",
            "{\"no_type\":1}",
            "[1,2,3]",
            "{\"type\":\"assign\"}",
            "{\"type\":\"done\",\"task\":1}",
            "{\"type\":\"hello\",\"id\":7,\"speed\":1.0}",
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
            buf.extend_from_slice(body.as_bytes());
            assert!(
                matches!(read_msg(&mut &buf[..]), Err(WireError::Malformed(_))),
                "{body}"
            );
        }
    }
}
