//! The length-prefixed JSON wire protocol.
//!
//! Every message on the wire is one *frame*: a 4-byte big-endian byte
//! length followed by that many bytes of UTF-8 JSON encoding a single
//! [`Message`]. Frames are bounded by [`MAX_FRAME`] so a corrupt or
//! hostile length prefix cannot make the peer allocate unbounded
//! memory; every decoding failure is a typed [`WireError`], never a
//! panic — a server must survive garbage from the network.
//!
//! The JSON layer is the workspace's own parser ([`ic_sim::json`]): the
//! protocol adds no external dependencies, and traces, frames, and CLI
//! output all share one encoder. Each message is an object whose
//! `"type"` field selects the variant, e.g.
//!
//! ```text
//! {"type":"hello","id":"worker-3","speed":2.0,"proto":2}
//! {"type":"assign","task":17}
//! ```
//!
//! # Protocol versions
//!
//! The wire format is *versioned*, negotiated at registration: `hello`
//! carries the client's highest supported version ([`PROTO_CURRENT`]),
//! `welcome` answers with the negotiated one (the minimum of the two).
//! Version 1 is the original protocol; version 2 added
//!
//! * resume tokens (`hello.resume` / `welcome.resume`, and the
//!   `welcome.tasks` list of leases restored on a resume);
//! * batched allocation (`request.max`, multi-task `assign`);
//! * the `revoke` frame cancelling a speculative duplicate lease;
//! * the machine-readable `error.code` field.
//!
//! Every v2 field is *additive*: a v1 decoder that ignores unknown JSON
//! fields still parses v2 `hello`/`welcome` frames, and the encoder
//! emits a single-task `assign` in the v1 shape (`"task":N`). Frames a
//! v1 peer cannot express degrade safely: the decoder defaults
//! `proto` to 1, `request.max` to 1, and `error.code` to `""`.
//!
//! # Buffer-oriented API
//!
//! The reactor and the worker client share one framing path:
//! [`Frame::encode_into`] appends frames onto a caller-owned output
//! buffer (so one `write` can carry many frames), and the incremental
//! [`Decoder`] accepts transport bytes in whatever chunks the socket
//! yields ([`Decoder::feed`]) and hands back complete messages
//! ([`Decoder::next_msg`]). The older per-frame stream helpers
//! [`write_msg`]/[`read_msg`] are deprecated wrappers kept for
//! compatibility.

use std::io::{Read, Write};

use ic_sim::json::{self, json_string, Json};

/// Upper bound on a frame's JSON payload, in bytes (1 MiB). A length
/// prefix above this is rejected before any allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// The original wire protocol: single-task assigns, no resume, no
/// revoke.
pub const PROTO_V1: u32 = 1;

/// Protocol 2: resume tokens, batched `assign`, `revoke`, typed error
/// codes.
pub const PROTO_V2: u32 = 2;

/// The highest protocol version this build speaks.
pub const PROTO_CURRENT: u32 = PROTO_V2;

/// The machine-readable [`Message::Error`] code sent when version
/// negotiation fails (the peer's protocol is below the server's
/// minimum, or zero).
pub const ERR_UNSUPPORTED: &str = "unsupported";

/// The [`Message::Error`] code sent when a resume token is unknown or
/// already superseded — the worker must register fresh.
pub const ERR_BAD_RESUME: &str = "bad-resume";

/// Every message either side may send. Client→server: [`Hello`],
/// [`Request`], [`Done`], [`Heartbeat`], [`Bye`]. Server→client:
/// [`Welcome`], [`Assign`], [`Wait`], [`Drain`], [`Ack`], [`Revoke`],
/// [`Error`].
///
/// [`Hello`]: Message::Hello
/// [`Request`]: Message::Request
/// [`Done`]: Message::Done
/// [`Heartbeat`]: Message::Heartbeat
/// [`Bye`]: Message::Bye
/// [`Welcome`]: Message::Welcome
/// [`Assign`]: Message::Assign
/// [`Wait`]: Message::Wait
/// [`Drain`]: Message::Drain
/// [`Ack`]: Message::Ack
/// [`Revoke`]: Message::Revoke
/// [`Error`]: Message::Error
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker registration: a display id and the worker's declared
    /// speed factor (recorded in the trace header).
    Hello {
        /// Worker-chosen display id.
        id: String,
        /// Declared speed factor (1.0 = baseline).
        speed: f64,
        /// Highest protocol version the worker speaks. Decodes as
        /// [`PROTO_V1`] when absent, so v1 peers need no change.
        proto: u32,
        /// Resume token from a previous `welcome`: reconnect to the
        /// same worker slot, keeping its leases (v2).
        resume: Option<String>,
    },
    /// Worker asks for work.
    Request {
        /// Maximum number of tasks the worker will accept in one
        /// `assign` (its batch appetite). Decodes as 1 when absent; a
        /// server never sends a multi-task `assign` unless the worker
        /// asked for more than one.
        max: u64,
    },
    /// Worker reports the outcome of one leased task. `ok = false`
    /// voluntarily returns the task for reallocation.
    Done {
        /// The task's node index.
        task: u64,
        /// Whether the task was computed successfully.
        ok: bool,
    },
    /// Worker renews the lease on a long-running task.
    Heartbeat {
        /// The task's node index.
        task: u64,
    },
    /// Worker disconnects deliberately.
    Bye,
    /// Server accepts a registration (or a resume).
    Welcome {
        /// The worker index the server assigned (the `client` field of
        /// subsequent trace events).
        worker: u64,
        /// Lease duration: a leased task whose worker neither reports
        /// nor heartbeats within this window is reallocated.
        lease_ms: u64,
        /// Negotiated protocol version (min of both sides'). Decodes
        /// as [`PROTO_V1`] when absent.
        proto: u32,
        /// Fresh resume token for this connection (v2; rotated on
        /// every reconnect, so a stale token cannot hijack the slot).
        resume: Option<String>,
        /// On a resume: the tasks this worker still holds leases on
        /// (heartbeat clocks restored). Empty on a fresh registration.
        tasks: Vec<u64>,
    },
    /// Server allocates one or more tasks to the requesting worker. A
    /// single task is encoded in the v1 shape (`"task":N`); more than
    /// one uses the v2 `"tasks":[...]` list and is only ever sent to a
    /// worker that requested `max > 1`.
    Assign {
        /// The leased tasks' node indices (never empty).
        tasks: Vec<u64>,
    },
    /// No task is allocatable right now; ask again after `ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        ms: u64,
    },
    /// The dag is complete (or completing without needing this worker);
    /// the worker should disconnect.
    Drain,
    /// Server acknowledges a `Done` or `Heartbeat`. `accepted = false`
    /// means the report was late or duplicate and was discarded.
    Ack {
        /// The task's node index.
        task: u64,
        /// Whether the report was applied.
        accepted: bool,
    },
    /// Server cancels the worker's (speculative) lease on `task`:
    /// another worker already completed it. The worker abandons the
    /// task without reporting (v2 only).
    Revoke {
        /// The task's node index.
        task: u64,
    },
    /// Protocol error; the server closes the connection after sending.
    Error {
        /// Machine-readable code (e.g. [`ERR_UNSUPPORTED`]); empty for
        /// generic protocol violations and on frames from v1 peers.
        code: String,
        /// Human-readable reason.
        msg: String,
    },
}

impl Message {
    /// A v1-compatible `hello` (current protocol, no resume token).
    pub fn hello(id: impl Into<String>, speed: f64) -> Message {
        Message::Hello {
            id: id.into(),
            speed,
            proto: PROTO_CURRENT,
            resume: None,
        }
    }

    /// A single-task `request` (every protocol version).
    pub fn request() -> Message {
        Message::Request { max: 1 }
    }

    /// A single-task `assign` (encoded in the v1 wire shape).
    pub fn assign(task: u64) -> Message {
        Message::Assign { tasks: vec![task] }
    }

    /// An `error` frame with no machine-readable code.
    pub fn error(msg: impl Into<String>) -> Message {
        Message::Error {
            code: String::new(),
            msg: msg.into(),
        }
    }

    /// Encode as the JSON object body of a frame.
    pub fn to_json(&self) -> String {
        match self {
            Message::Hello {
                id,
                speed,
                proto,
                resume,
            } => {
                let mut s = format!(
                    "{{\"type\":\"hello\",\"id\":{},\"speed\":{}",
                    json_string(id),
                    fmt_f64(*speed)
                );
                // Omitting `proto` at 1 keeps the v1 frame byte-stable.
                if *proto != PROTO_V1 {
                    s.push_str(&format!(",\"proto\":{proto}"));
                }
                if let Some(tok) = resume {
                    s.push_str(&format!(",\"resume\":{}", json_string(tok)));
                }
                s.push('}');
                s
            }
            Message::Request { max } => {
                if *max <= 1 {
                    "{\"type\":\"request\"}".into()
                } else {
                    format!("{{\"type\":\"request\",\"max\":{max}}}")
                }
            }
            Message::Done { task, ok } => {
                format!("{{\"type\":\"done\",\"task\":{task},\"ok\":{ok}}}")
            }
            Message::Heartbeat { task } => {
                format!("{{\"type\":\"heartbeat\",\"task\":{task}}}")
            }
            Message::Bye => "{\"type\":\"bye\"}".into(),
            Message::Welcome {
                worker,
                lease_ms,
                proto,
                resume,
                tasks,
            } => {
                let mut s =
                    format!("{{\"type\":\"welcome\",\"worker\":{worker},\"lease_ms\":{lease_ms}");
                if *proto != PROTO_V1 {
                    s.push_str(&format!(",\"proto\":{proto}"));
                }
                if let Some(tok) = resume {
                    s.push_str(&format!(",\"resume\":{}", json_string(tok)));
                }
                if !tasks.is_empty() {
                    s.push_str(",\"tasks\":[");
                    for (i, t) in tasks.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&t.to_string());
                    }
                    s.push(']');
                }
                s.push('}');
                s
            }
            Message::Assign { tasks } => {
                debug_assert!(!tasks.is_empty(), "assign carries at least one task");
                if tasks.len() == 1 {
                    format!("{{\"type\":\"assign\",\"task\":{}}}", tasks[0])
                } else {
                    let list = tasks
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("{{\"type\":\"assign\",\"tasks\":[{list}]}}")
                }
            }
            Message::Wait { ms } => format!("{{\"type\":\"wait\",\"ms\":{ms}}}"),
            Message::Drain => "{\"type\":\"drain\"}".into(),
            Message::Ack { task, accepted } => {
                format!("{{\"type\":\"ack\",\"task\":{task},\"accepted\":{accepted}}}")
            }
            Message::Revoke { task } => format!("{{\"type\":\"revoke\",\"task\":{task}}}"),
            Message::Error { code, msg } => {
                if code.is_empty() {
                    format!("{{\"type\":\"error\",\"msg\":{}}}", json_string(msg))
                } else {
                    format!(
                        "{{\"type\":\"error\",\"code\":{},\"msg\":{}}}",
                        json_string(code),
                        json_string(msg)
                    )
                }
            }
        }
    }

    /// Decode a frame body. Any structural problem — not an object, an
    /// unknown `"type"`, a missing or mistyped field — is
    /// [`WireError::Malformed`]. Optional v2 fields default to their
    /// v1 meaning when absent.
    pub fn from_json(v: &Json) -> Result<Message, WireError> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("message has no \"type\" field"))?;
        let task = || {
            v.get("task")
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed("missing numeric \"task\""))
        };
        // Optional `proto`: absent means v1; present but mistyped is
        // malformed (a peer that writes the field must write it right).
        let proto = || match v.get("proto") {
            None => Ok(PROTO_V1),
            Some(p) => p
                .as_u64()
                .and_then(|p| u32::try_from(p).ok())
                .ok_or_else(|| malformed("non-numeric \"proto\"")),
        };
        let resume = || match v.get("resume") {
            None => Ok(None),
            Some(t) => t
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| malformed("non-string \"resume\"")),
        };
        match kind {
            "hello" => Ok(Message::Hello {
                id: v
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("hello without string \"id\""))?
                    .to_string(),
                speed: v
                    .get("speed")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed("hello without numeric \"speed\""))?,
                proto: proto()?,
                resume: resume()?,
            }),
            "request" => Ok(Message::Request {
                max: match v.get("max") {
                    None => 1,
                    Some(m) => m
                        .as_u64()
                        .filter(|&m| m >= 1)
                        .ok_or_else(|| malformed("request with invalid \"max\""))?,
                },
            }),
            "done" => Ok(Message::Done {
                task: task()?,
                ok: match v.get("ok") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(malformed("done without boolean \"ok\"")),
                },
            }),
            "heartbeat" => Ok(Message::Heartbeat { task: task()? }),
            "bye" => Ok(Message::Bye),
            "welcome" => Ok(Message::Welcome {
                worker: v
                    .get("worker")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("welcome without numeric \"worker\""))?,
                lease_ms: v
                    .get("lease_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("welcome without numeric \"lease_ms\""))?,
                proto: proto()?,
                resume: resume()?,
                tasks: match v.get("tasks") {
                    None => Vec::new(),
                    Some(list) => task_list(list)?,
                },
            }),
            "assign" => {
                // One task in the v1 shape, or a non-empty v2 list;
                // both at once is ambiguous and rejected.
                match (v.get("task"), v.get("tasks")) {
                    (Some(t), None) => Ok(Message::Assign {
                        tasks: vec![t
                            .as_u64()
                            .ok_or_else(|| malformed("missing numeric \"task\""))?],
                    }),
                    (None, Some(list)) => {
                        let tasks = task_list(list)?;
                        if tasks.is_empty() {
                            return Err(malformed("assign with an empty \"tasks\" list"));
                        }
                        Ok(Message::Assign { tasks })
                    }
                    _ => Err(malformed("assign needs \"task\" or a \"tasks\" list")),
                }
            }
            "wait" => Ok(Message::Wait {
                ms: v
                    .get("ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("wait without numeric \"ms\""))?,
            }),
            "drain" => Ok(Message::Drain),
            "ack" => Ok(Message::Ack {
                task: task()?,
                accepted: match v.get("accepted") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(malformed("ack without boolean \"accepted\"")),
                },
            }),
            "revoke" => Ok(Message::Revoke { task: task()? }),
            "error" => Ok(Message::Error {
                code: v
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                msg: v
                    .get("msg")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => Err(malformed(&format!("unknown message type \"{other}\""))),
        }
    }
}

fn task_list(list: &Json) -> Result<Vec<u64>, WireError> {
    list.as_arr()
        .ok_or_else(|| malformed("\"tasks\" is not a list"))?
        .iter()
        .map(|t| {
            t.as_u64()
                .ok_or_else(|| malformed("non-numeric entry in \"tasks\""))
        })
        .collect()
}

/// `f64` in a form the JSON parser reads back exactly (Rust's shortest
/// round-trip `Display`, with a forced `.0` for integral values so the
/// output is unambiguously a number with a fraction).
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) || s == "NaN" || s.contains("inf") {
        // NaN/inf are not valid JSON; callers never send them (speeds
        // are validated positive finite), but keep the encoder total.
        if x.is_finite() {
            s
        } else {
            "0".into()
        }
    } else {
        format!("{s}.0")
    }
}

fn malformed(msg: &str) -> WireError {
    WireError::Malformed(msg.to_string())
}

/// Everything that can go wrong reading a frame. `Io` with
/// `UnexpectedEof` mid-frame means the peer hung up; the rest are
/// protocol violations the reader survives without panicking.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes truncation:
    /// `UnexpectedEof` inside a frame).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The payload is not valid JSON (or not valid UTF-8).
    Garbage(String),
    /// The payload is JSON but not a protocol message.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::Garbage(e) => write!(f, "frame is not JSON: {e}"),
            WireError::Malformed(e) => write!(f, "frame is not a protocol message: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error means the peer closed the connection cleanly
    /// between frames (EOF on the length prefix) — the normal end of a
    /// conversation, as opposed to a protocol violation.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

/// Buffer-oriented frame encoder: the namespace for appending frames
/// onto a caller-owned byte buffer instead of writing (and flushing)
/// one stream frame at a time. The reactor batches every reply due on
/// a connection into one buffer and hands it to the poller whole; the
/// worker client encodes into its session buffer and writes once.
pub struct Frame;

impl Frame {
    /// Append `msg` as one length-prefixed frame onto `out` and return
    /// the number of bytes appended. Nothing is appended (returning 0)
    /// in the unrepresentable case of a body above `u32::MAX` bytes —
    /// callers keep bodies within [`MAX_FRAME`], which is
    /// debug-asserted here exactly as [`write_msg`] always did.
    pub fn encode_into(msg: &Message, out: &mut Vec<u8>) -> usize {
        let body = msg.to_json();
        debug_assert!(body.len() <= MAX_FRAME, "outgoing frame within bounds");
        let Ok(len) = u32::try_from(body.len()) else {
            return 0;
        };
        out.reserve(4 + body.len());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(body.as_bytes());
        4 + body.len()
    }
}

/// Incremental frame decoder for nonblocking transports: [`feed`] it
/// whatever byte chunks the socket yields — partial frames, many
/// frames at once, a length prefix split across reads — and drain
/// complete messages with [`next_msg`]. An oversized length prefix is
/// rejected as soon as its 4 bytes arrive, before any body is
/// buffered, preserving [`read_msg`]'s allocation bound.
///
/// [`feed`]: Decoder::feed
/// [`next_msg`]: Decoder::next_msg
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    start: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append raw transport bytes. Consumed frames are compacted away
    /// lazily, so long-lived connections do not grow the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet decoded into a message.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// * `Ok(Some(msg))` — one frame consumed; call again, a single
    ///   `feed` may have delivered several.
    /// * `Ok(None)` — no complete frame yet; feed more bytes.
    /// * `Err(_)` — the prefix was oversized or the payload was not a
    ///   protocol message. The broken frame is consumed, but on a
    ///   protocol as fragile as length-prefixed JSON the only safe
    ///   reaction is to drop the connection, exactly as the blocking
    ///   reader's callers always did.
    pub fn next_msg(&mut self) -> Result<Option<Message>, WireError> {
        let avail = &self.buf[self.start..];
        let Some(len_buf) = avail.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*len_buf) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized(len));
        }
        let Some(body) = avail.get(4..4 + len) else {
            return Ok(None);
        };
        let parsed = std::str::from_utf8(body)
            .map_err(|e| WireError::Garbage(e.to_string()))
            .and_then(|text| json::parse(text).map_err(WireError::Garbage))
            .and_then(|v| Message::from_json(&v));
        self.start += 4 + len;
        parsed.map(Some)
    }
}

/// Write `msg` as one frame and flush it.
#[deprecated(
    since = "0.1.0",
    note = "encode with `Frame::encode_into` and write the buffer; \
            the reactor and the worker client share that path"
)]
pub fn write_msg(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut frame = Vec::new();
    if Frame::encode_into(msg, &mut frame) == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds u32 length",
        ));
    }
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame and decode it. Never panics on hostile input: an
/// oversized prefix, a truncated body, non-UTF-8 bytes, broken JSON,
/// and well-formed-but-foreign JSON each map to their [`WireError`]
/// variant.
#[deprecated(
    since = "0.1.0",
    note = "feed transport bytes to `Decoder::feed` and drain `Decoder::next_msg`"
)]
pub fn read_msg(r: &mut impl Read) -> Result<Message, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut dec = Decoder::new();
    dec.feed(&len_buf);
    dec.feed(&body);
    match dec.next_msg() {
        Ok(Some(msg)) => Ok(msg),
        // Unreachable: the full frame was fed. Kept total for safety.
        Ok(None) => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    // The deprecated stream helpers stay pinned by these tests until
    // they are removed.
    #![allow(deprecated)]

    use super::*;

    #[test]
    fn decoder_reassembles_frames_from_arbitrary_chunks() {
        let msgs = [
            Message::hello("worker \"zero\"", 2.5),
            Message::Request { max: 4 },
            Message::Assign {
                tasks: vec![1, 2, 3],
            },
            Message::Drain,
            Message::Error {
                code: ERR_BAD_RESUME.into(),
                msg: "stale".into(),
            },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            assert!(Frame::encode_into(m, &mut stream) > 0);
        }
        // Feed the whole stream one byte at a time: every frame must
        // come out exactly once, in order, across split length
        // prefixes and split bodies.
        for chunk in [1usize, 3, 7, stream.len()] {
            let mut dec = Decoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.feed(piece);
                while let Some(m) = dec.next_msg().unwrap() {
                    got.push(m);
                }
            }
            assert_eq!(got, msgs, "chunk size {chunk}");
            assert_eq!(dec.pending(), 0, "chunk size {chunk}");
        }
    }

    #[test]
    fn decoder_rejects_an_oversized_prefix_before_the_body_arrives() {
        let mut dec = Decoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_be_bytes());
        match dec.next_msg() {
            Err(WireError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn decoder_consumes_a_garbage_frame_and_reports_it() {
        let mut dec = Decoder::new();
        let body = b"not json";
        dec.feed(&(body.len() as u32).to_be_bytes());
        dec.feed(body);
        assert!(matches!(dec.next_msg(), Err(WireError::Garbage(_))));
        // The broken frame was consumed; the buffer is clean.
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = Decoder::new();
        let mut frame = Vec::new();
        Frame::encode_into(&Message::request(), &mut frame);
        for _ in 0..2048 {
            dec.feed(&frame);
            assert!(matches!(dec.next_msg(), Ok(Some(Message::Request { .. }))));
        }
        // Thousands of consumed frames must not accumulate: the lazy
        // compaction keeps the internal buffer bounded by the
        // compaction threshold plus one frame.
        assert!(dec.buf.len() < 4096 + frame.len());
    }

    #[test]
    fn stream_helpers_and_buffer_path_produce_identical_bytes() {
        let msg = Message::Welcome {
            worker: 3,
            lease_ms: 500,
            proto: PROTO_V2,
            resume: Some("tok".into()),
            tasks: vec![5],
        };
        let mut streamed = Vec::new();
        write_msg(&mut streamed, &msg).unwrap();
        let mut buffered = Vec::new();
        let n = Frame::encode_into(&msg, &mut buffered);
        assert_eq!(streamed, buffered);
        assert_eq!(n, buffered.len());
    }

    #[test]
    fn every_variant_round_trips_through_a_frame() {
        let msgs = [
            Message::Hello {
                id: "worker \"zero\"".into(),
                speed: 2.5,
                proto: PROTO_V2,
                resume: Some("tok-42".into()),
            },
            Message::hello("plain", 1.0),
            Message::request(),
            Message::Request { max: 4 },
            Message::Done { task: 17, ok: true },
            Message::Done { task: 0, ok: false },
            Message::Heartbeat { task: 3 },
            Message::Bye,
            Message::Welcome {
                worker: 4,
                lease_ms: 500,
                proto: PROTO_V2,
                resume: Some("tok \"x\"".into()),
                tasks: vec![7, 9],
            },
            Message::Welcome {
                worker: 0,
                lease_ms: 250,
                proto: PROTO_V1,
                resume: None,
                tasks: Vec::new(),
            },
            Message::assign(65),
            Message::Assign {
                tasks: vec![1, 2, 3, 4],
            },
            Message::Wait { ms: 50 },
            Message::Drain,
            Message::Ack {
                task: 9,
                accepted: false,
            },
            Message::Revoke { task: 12 },
            Message::Error {
                code: ERR_UNSUPPORTED.into(),
                msg: "tab\there".into(),
            },
            Message::error("no code"),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(&read_msg(&mut r).unwrap(), m);
        }
        // And the stream is exactly consumed.
        assert!(read_msg(&mut r).unwrap_err().is_clean_eof());
    }

    #[test]
    fn v1_frames_decode_with_default_v2_fields() {
        // Frames as a v1 peer writes them: no proto, no max, no code.
        let cases: &[(&str, Message)] = &[
            (
                "{\"type\":\"hello\",\"id\":\"w\",\"speed\":1.0}",
                Message::Hello {
                    id: "w".into(),
                    speed: 1.0,
                    proto: PROTO_V1,
                    resume: None,
                },
            ),
            ("{\"type\":\"request\"}", Message::request()),
            (
                "{\"type\":\"welcome\",\"worker\":2,\"lease_ms\":500}",
                Message::Welcome {
                    worker: 2,
                    lease_ms: 500,
                    proto: PROTO_V1,
                    resume: None,
                    tasks: Vec::new(),
                },
            ),
            ("{\"type\":\"assign\",\"task\":5}", Message::assign(5)),
            (
                "{\"type\":\"error\",\"msg\":\"boom\"}",
                Message::error("boom"),
            ),
        ];
        for (body, want) in cases {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
            buf.extend_from_slice(body.as_bytes());
            assert_eq!(&read_msg(&mut &buf[..]).unwrap(), want, "{body}");
        }
    }

    #[test]
    fn single_task_assign_keeps_the_v1_wire_shape() {
        assert_eq!(
            Message::assign(5).to_json(),
            "{\"type\":\"assign\",\"task\":5}"
        );
        // So does a default request and a plain hello.
        assert_eq!(Message::request().to_json(), "{\"type\":\"request\"}");
        assert!(!Message::request().to_json().contains("max"));
    }

    #[test]
    fn integral_speed_survives_the_round_trip() {
        let m = Message::hello("w", 3.0);
        let mut buf = Vec::new();
        write_msg(&mut buf, &m).unwrap();
        assert_eq!(read_msg(&mut &buf[..]).unwrap(), m);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        match read_msg(&mut &buf[..]) {
            Err(WireError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn the_frame_cap_boundary_is_exact() {
        // A body of exactly MAX_FRAME bytes round-trips: the cap is
        // inclusive. Pad a hello id until the encoded body lands on
        // the boundary (each ASCII byte of id is one body byte).
        let base = Message::hello("", 1.0).to_json().len();
        let msg = Message::hello("a".repeat(MAX_FRAME - base), 1.0);
        assert_eq!(msg.to_json().len(), MAX_FRAME);
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        assert_eq!(read_msg(&mut &buf[..]).unwrap(), msg);

        // One byte past the cap is rejected with the exact length,
        // before the body is read. Framed by hand: `write_msg` itself
        // debug-asserts the bound.
        let over = Message::hello("a".repeat(MAX_FRAME - base + 1), 1.0).to_json();
        assert_eq!(over.len(), MAX_FRAME + 1);
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::try_from(over.len()).unwrap().to_be_bytes());
        buf.extend_from_slice(over.as_bytes());
        match read_msg(&mut &buf[..]) {
            Err(WireError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Message::request()).unwrap();
        buf.truncate(buf.len() - 2);
        match read_msg(&mut &buf[..]) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_a_garbage_error() {
        for body in [&b"not json"[..], b"{\"type\":", b"\xff\xfe"] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
            buf.extend_from_slice(body);
            assert!(
                matches!(read_msg(&mut &buf[..]), Err(WireError::Garbage(_))),
                "{body:?}"
            );
        }
    }

    #[test]
    fn foreign_json_is_malformed_not_a_panic() {
        for body in [
            "{\"type\":\"frobnicate\"}",
            "{\"no_type\":1}",
            "[1,2,3]",
            "{\"type\":\"assign\"}",
            "{\"type\":\"assign\",\"tasks\":[]}",
            "{\"type\":\"assign\",\"task\":1,\"tasks\":[2]}",
            "{\"type\":\"assign\",\"tasks\":[1,\"two\"]}",
            "{\"type\":\"done\",\"task\":1}",
            "{\"type\":\"hello\",\"id\":7,\"speed\":1.0}",
            "{\"type\":\"hello\",\"id\":\"w\",\"speed\":1.0,\"proto\":\"two\"}",
            "{\"type\":\"hello\",\"id\":\"w\",\"speed\":1.0,\"resume\":7}",
            "{\"type\":\"request\",\"max\":0}",
            "{\"type\":\"revoke\"}",
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
            buf.extend_from_slice(body.as_bytes());
            assert!(
                matches!(read_msg(&mut &buf[..]), Err(WireError::Malformed(_))),
                "{body}"
            );
        }
    }
}
