//! The pure lease-protocol state machine behind the TCP server.
//!
//! [`LeaseMachine`] is the coordinator of [`crate::server`] with every
//! side effect factored out: one call to [`LeaseMachine::step`] applies
//! one [`Event`] and returns the complete list of [`Effect`]s the
//! caller must perform — trace records to sink, wire frames to send.
//! The machine itself touches no clock, no socket, and no sink:
//!
//! * **time** is a `u64` microsecond count carried *in* each event
//!   (`now_us`), interpreted against whatever epoch the driver chose.
//!   The TCP driver feeds wall-clock micros; the `ic-check` model
//!   checker freezes the clock at zero and drives lease expiry with
//!   explicit [`Event::Expire`] events instead;
//! * **randomness** is the one seeded [`XorShift64`] stream the old
//!   coordinator already used (resume tokens only), so a machine is a
//!   deterministic function of its config and event sequence;
//! * **observability** is the returned effect list: [`Effect::Trace`]
//!   in server order (the JSONL trace replays clean under
//!   `ic-prio audit`), [`Effect::Reply`] for the requesting
//!   connection, [`Effect::Registered`] answering a `hello`, and
//!   [`Effect::Header`] exactly once when the registration barrier is
//!   met.
//!
//! The protocol semantics — leases, exponential-backoff reallocation,
//! resume tokens, epoch-guarded `Gone`, speculative straggler
//! re-lease, duplicate-result resolution — are documented on
//! [`crate::server`] and unchanged here; this module only separates
//! *deciding* from *doing*. Because the machine is `Clone` and its
//! [`LeaseMachine::fingerprint`] hashes exactly the
//! scheduling-relevant state, `ic-check` can DFS-enumerate event
//! interleavings over it directly.

use std::hash::{Hash, Hasher};

use ic_dag::rng::XorShift64;
use ic_dag::{Dag, NodeId};
use ic_sched::batched::fill_round;
use ic_sched::eligibility::ExecState;
use ic_sched::policy::AllocationPolicy;
use ic_sim::trace::{TraceEvent, TraceHeader, WorkerParams};

use crate::server::{ServeReport, ServerConfig};
use crate::wire::{Message, ERR_BAD_RESUME, ERR_UNSUPPORTED, PROTO_CURRENT, PROTO_V2};

/// One input to the machine. Times are microseconds on the driver's
/// clock; the machine never reads a clock of its own.
///
/// The wire surface maps onto events as follows: `hello` (fresh or
/// with a resume token) is [`Event::Hello`]; `request` is
/// [`Event::Request`] (a `Drain` reply is the machine saying the dag
/// is complete — drain is an *output*, not an input); `done` is
/// [`Event::Done`]; `heartbeat` is [`Event::Heartbeat`]; a dropped
/// connection is [`Event::Sever`]. Lease expiry and the steal timer
/// are not messages at all — the driver turns the passage of time into
/// [`Event::Expire`] events (see [`LeaseMachine::expired`]), and the
/// steal timer is evaluated inside [`Event::Request`] against the
/// event's own `now_us`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A worker registers — fresh, or resuming a slot with a token.
    Hello {
        /// Self-reported worker id (informational).
        id: String,
        /// Self-reported relative speed (recorded in the header).
        speed: f64,
        /// Highest protocol version the worker speaks.
        proto: u32,
        /// Resume token from a previous `welcome`, if reconnecting.
        resume: Option<String>,
        /// Event time in driver microseconds.
        now_us: u64,
    },
    /// A registered worker asks for up to `max` tasks.
    Request {
        /// The worker's slot index.
        worker: usize,
        /// Most tasks the worker will accept in one `assign`.
        max: u64,
        /// Event time in driver microseconds.
        now_us: u64,
    },
    /// A worker reports the outcome of a leased task.
    Done {
        /// The worker's slot index.
        worker: usize,
        /// The task id being reported.
        task: u64,
        /// Whether the task succeeded.
        ok: bool,
        /// Event time in driver microseconds.
        now_us: u64,
    },
    /// A worker heartbeats a lease to extend its deadline.
    Heartbeat {
        /// The worker's slot index.
        worker: usize,
        /// The task id being heartbeat.
        task: u64,
        /// Event time in driver microseconds.
        now_us: u64,
    },
    /// A worker's connection is gone (EOF, timeout, `bye`). Carries
    /// the registration epoch so a superseded connection — the worker
    /// already resumed on a new socket — cannot disturb the slot.
    Sever {
        /// The worker's slot index.
        worker: usize,
        /// The registration epoch of the closing connection.
        epoch: u64,
        /// Event time in driver microseconds.
        now_us: u64,
    },
    /// A specific lease's heartbeat deadline has passed. Only a lease
    /// on `(worker, task)` whose recorded deadline is `<= now_us` is
    /// forfeited; otherwise the event is a no-op (the lease was
    /// renewed, resolved, or never existed).
    Expire {
        /// The lease holder's slot index.
        worker: usize,
        /// The leased task id.
        task: u64,
        /// Event time in driver microseconds.
        now_us: u64,
    },
}

/// One output of [`LeaseMachine::step`]: something the driver must do,
/// in order.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Write the trace header (emitted exactly once, before any
    /// [`Effect::Trace`]).
    Header(TraceHeader),
    /// Record a trace event (server order; replays clean under audit).
    Trace(TraceEvent),
    /// Send this frame to the connection that raised the event.
    Reply(Message),
    /// Answer a [`Event::Hello`]: the frame to relay plus the slot and
    /// epoch the connection handler needs for its eventual
    /// [`Event::Sever`]. `worker` is `usize::MAX` when refused.
    Registered {
        /// The `welcome` or typed `error` frame.
        msg: Message,
        /// The slot index granted (or `usize::MAX` if refused).
        worker: usize,
        /// The slot's registration epoch.
        epoch: u64,
    },
}

/// Deliberately re-introducible historical bugs, used by the
/// `ic-check` negative suite to prove the checker catches each one
/// with a stable diagnostic code and a minimal counterexample. All
/// flags default to off; production drivers never set them. (They are
/// runtime flags rather than `#[cfg(test)]` items because the negative
/// suite lives in another crate — the same reasoning that makes
/// [`crate::worker::FaultPlan`] a runtime value.)
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeededBugs {
    /// PR 3's orphaning bug: a request from a worker still holding
    /// leases silently discards them instead of forfeiting them, so
    /// the held tasks — claimed, but on no queue — can never be
    /// reallocated. Caught as IC0506 (eligible-partition violation).
    pub orphan_on_request: bool,
    /// Accept a duplicate `done` for an already-executed task and emit
    /// a second `Completed` trace event. Caught as IC0502.
    pub double_completion_event: bool,
    /// Skip the epoch guard on [`Event::Sever`], so a stale `Gone`
    /// from a superseded connection disturbs the resumed slot. Caught
    /// as IC0504.
    pub honor_stale_gone: bool,
}

/// Per-worker registration record. The slot outlives its TCP
/// connection: a v2 worker that disconnects mid-lease can reclaim it
/// with the resume token.
#[derive(Debug, Clone)]
struct WorkerSlot {
    id: String,
    speed: f64,
    /// Whether the worker's latest request already saw an empty pool
    /// (suppresses repeated `Idle` events while it polls).
    waiting: bool,
    /// Negotiated protocol version for this slot's current connection.
    proto: u32,
    /// Current resume token (v2 slots only; rotated on every resume so
    /// a stale token cannot hijack the slot).
    token: Option<String>,
    /// Bumped on every resume; a `Sever` carrying an older epoch comes
    /// from a superseded connection and is ignored.
    epoch: u64,
    /// Whether a live connection currently owns the slot.
    connected: bool,
}

/// One entry of the lease table. A task can appear in several entries
/// at once: one primary lease plus speculative duplicates granted at
/// the drain barrier.
#[derive(Debug, Clone, Copy)]
struct Lease {
    worker: usize,
    task: NodeId,
    /// Heartbeat deadline in driver microseconds; passing it forfeits
    /// the lease.
    deadline_us: u64,
    /// Grant time in driver microseconds — the straggler clock for
    /// stealing.
    granted_us: u64,
    /// A duplicate granted at the drain barrier (loses ties: its
    /// completion only counts if it arrives first).
    speculative: bool,
}

/// A read-only view of one lease-table entry, for drivers, tests, and
/// the model checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseView {
    /// The holding worker's slot index.
    pub worker: usize,
    /// The leased task.
    pub task: NodeId,
    /// Whether this is a speculative drain-barrier duplicate.
    pub speculative: bool,
}

/// The pure lease-protocol coordinator: all scheduling state, no side
/// effects. See the [module docs](self) for the contract.
#[derive(Clone)]
pub struct LeaseMachine<'a, 'd> {
    dag: &'d Dag,
    policy: &'a dyn AllocationPolicy,
    cfg: ServerConfig,
    /// Execution state; its dense pool holds the ELIGIBLE, unleased,
    /// not-backing-off tasks — allocatable now. Leased and deferred
    /// tasks are *claimed* (ELIGIBLE but out of the pool).
    state: ExecState<'d>,
    /// Failed tasks waiting out their backoff: `(ready_at_us, task)`.
    /// They stay claimed in `state` until promoted back to the pool.
    deferred: Vec<(u64, NodeId)>,
    /// The lease table. Linear scans throughout: the table never holds
    /// more entries than there are connected workers.
    leases: Vec<Lease>,
    /// Per-node failure counts, surfaced to policies via
    /// [`ic_sched::policy::PolicyContext::retries`].
    failures: Vec<u32>,
    workers: Vec<WorkerSlot>,
    connected: usize,
    late_workers: usize,
    header_written: bool,
    /// Driver time when the header was written; trace timestamps and
    /// the makespan count from here.
    origin_us: u64,
    step: u64,
    allocation_steps: usize,
    completions: usize,
    failure_events: usize,
    resumes: usize,
    steals: usize,
    revokes: usize,
    completed_at_us: Option<u64>,
    /// Resume-token source, seeded from the config (keeps the machine
    /// deterministic given its inputs).
    rng: XorShift64,
    bugs: SeededBugs,
}

impl<'a, 'd> LeaseMachine<'a, 'd> {
    /// Build a machine over `dag` allocating through `policy`.
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`].
    pub fn new(dag: &'d Dag, policy: &'a dyn AllocationPolicy, cfg: ServerConfig) -> Self {
        policy.prepare(dag);
        let state = ExecState::new(dag);
        let failures = vec![0; dag.num_nodes()];
        let rng = XorShift64::new(cfg.seed ^ 0x7EA5_E0CE);
        LeaseMachine {
            dag,
            policy,
            cfg,
            state,
            deferred: Vec::new(),
            leases: Vec::new(),
            failures,
            workers: Vec::new(),
            connected: 0,
            late_workers: 0,
            header_written: false,
            origin_us: 0,
            step: 0,
            allocation_steps: 0,
            completions: 0,
            failure_events: 0,
            resumes: 0,
            steals: 0,
            revokes: 0,
            completed_at_us: None,
            rng,
            bugs: SeededBugs::default(),
        }
    }

    /// Start the run: with no registration barrier
    /// (`expect_workers == 0`) the trace header goes out immediately,
    /// before anyone registers. With a barrier this is a no-op — the
    /// header is emitted by the `Hello` that meets the barrier.
    pub fn boot(&mut self, now_us: u64) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.cfg.expect_workers == 0 && !self.header_written {
            self.write_header(now_us, &mut fx);
        }
        fx
    }

    /// Re-introduce a seeded historical bug (negative testing only).
    #[doc(hidden)]
    pub fn seed_bugs(&mut self, bugs: SeededBugs) {
        self.bugs = bugs;
    }

    /// Apply one event, returning the effects in the order the driver
    /// must perform them.
    pub fn step(&mut self, ev: Event) -> Vec<Effect> {
        let mut fx = Vec::new();
        match ev {
            Event::Hello {
                id,
                speed,
                proto,
                resume,
                now_us,
            } => self.register(id, speed, proto, resume, now_us, &mut fx),
            Event::Request {
                worker,
                max,
                now_us,
            } => {
                let msg = self.allocate_for(worker, max, now_us, &mut fx);
                fx.push(Effect::Reply(msg));
            }
            Event::Done {
                worker,
                task,
                ok,
                now_us,
            } => {
                let accepted = self.report(worker, task, ok, now_us, &mut fx);
                fx.push(Effect::Reply(Message::Ack { task, accepted }));
            }
            Event::Heartbeat {
                worker,
                task,
                now_us,
            } => {
                let deadline = self.lease_deadline(now_us);
                let mut held = false;
                for l in self
                    .leases
                    .iter_mut()
                    .filter(|l| l.worker == worker && l.task.index() as u64 == task)
                {
                    l.deadline_us = deadline;
                    held = true;
                }
                let msg = if held {
                    Message::Ack {
                        task,
                        accepted: true,
                    }
                } else if self.worker_proto(worker) >= PROTO_V2 {
                    // The lease is gone (expired, forfeited, or revoked
                    // after a losing race): tell a v2 worker to abandon
                    // the task instead of finishing doomed work.
                    Message::Revoke { task }
                } else {
                    Message::Ack {
                        task,
                        accepted: false,
                    }
                };
                fx.push(Effect::Reply(msg));
            }
            Event::Sever {
                worker,
                epoch,
                now_us,
            } => self.sever(worker, epoch, now_us, &mut fx),
            Event::Expire {
                worker,
                task,
                now_us,
            } => {
                if let Some(pos) = self.leases.iter().position(|l| {
                    l.worker == worker && l.task.index() as u64 == task && l.deadline_us <= now_us
                }) {
                    let lease = self.leases.swap_remove(pos);
                    self.lose_lease(lease, now_us, &mut fx);
                }
            }
        }
        fx
    }

    /// Every lease whose heartbeat deadline has passed at `now_us`, as
    /// `(worker, task)` pairs ready to feed back as [`Event::Expire`].
    pub fn expired(&self, now_us: u64) -> Vec<(usize, u64)> {
        self.leases
            .iter()
            .filter(|l| l.deadline_us <= now_us)
            .map(|l| (l.worker, l.task.index() as u64))
            .collect()
    }

    /// Whether every task of the dag has executed.
    pub fn is_complete(&self) -> bool {
        self.state.num_executed() == self.dag.num_nodes()
    }

    /// Workers with a live connection right now.
    pub fn connected(&self) -> usize {
        self.connected
    }

    /// Pool size as the trace records it: allocatable now, plus tasks
    /// waiting out a backoff — both are ELIGIBLE and unallocated,
    /// which is what the auditor's replay reconstructs.
    pub fn recorded_pool(&self) -> usize {
        self.state.pool_len() + self.deferred.len()
    }

    /// The execution state (read-only).
    pub fn exec(&self) -> &ExecState<'d> {
        &self.state
    }

    /// The lease table (read-only views, in table order).
    pub fn lease_views(&self) -> Vec<LeaseView> {
        self.leases
            .iter()
            .map(|l| LeaseView {
                worker: l.worker,
                task: l.task,
                speculative: l.speculative,
            })
            .collect()
    }

    /// Tasks parked in the backoff queue (unordered).
    pub fn deferred_tasks(&self) -> Vec<NodeId> {
        self.deferred.iter().map(|&(_, v)| v).collect()
    }

    /// How many workers ever registered.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// A slot's current registration epoch, if the slot exists.
    pub fn worker_epoch(&self, worker: usize) -> Option<u64> {
        self.workers.get(worker).map(|w| w.epoch)
    }

    /// Whether a live connection currently owns the slot.
    pub fn worker_connected(&self, worker: usize) -> bool {
        self.workers.get(worker).is_some_and(|w| w.connected)
    }

    /// Failure count of one task (lease expiries, forfeits, reported
    /// failures).
    pub fn failure_count(&self, v: NodeId) -> u32 {
        self.failures.get(v.index()).copied().unwrap_or(0)
    }

    /// Trace events emitted so far.
    pub fn trace_steps(&self) -> u64 {
        self.step
    }

    /// Summarize the run as the driver's [`ServeReport`]; `now_us` is
    /// the fallback makespan endpoint if the dag never completed.
    pub fn summary(&self, now_us: u64) -> ServeReport {
        let end = self.completed_at_us.unwrap_or(now_us);
        let makespan = end.saturating_sub(self.origin_us) as f64 * 1e-6;
        ServeReport {
            completions: self.completions,
            failures: self.failure_events,
            allocations: self.allocation_steps,
            workers_registered: self.workers.len(),
            late_workers: self.late_workers,
            resumes: self.resumes,
            steals: self.steals,
            revokes: self.revokes,
            makespan,
        }
    }

    /// Hash the scheduling-relevant state: executed set, pool (in
    /// arrival order — FIFO policies depend on it), backoff queue,
    /// lease table (sorted; grant times and deadlines excluded), slot
    /// states, and failure counts. Token strings, the rng, trace step
    /// counters, and all timestamps are excluded, so two states that
    /// can only diverge in timing or cosmetics collide — exactly what
    /// a frozen-clock model checker wants for its visited set.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// [`LeaseMachine::fingerprint`] into a caller-chosen hasher.
    pub fn fingerprint_into(&self, h: &mut impl Hasher) {
        self.header_written.hash(h);
        for v in self.dag.node_ids() {
            self.state.is_executed(v).hash(h);
        }
        let mut pool: Vec<NodeId> = self.state.pool().to_vec();
        pool.sort_unstable_by_key(|&v| self.state.pool_seq(v));
        0xA1u8.hash(h);
        for v in &pool {
            v.index().hash(h);
        }
        0xA2u8.hash(h);
        for &(_, v) in &self.deferred {
            v.index().hash(h);
        }
        0xA3u8.hash(h);
        let mut leases: Vec<(usize, usize, bool)> = self
            .leases
            .iter()
            .map(|l| (l.worker, l.task.index(), l.speculative))
            .collect();
        leases.sort_unstable();
        for l in &leases {
            l.hash(h);
        }
        0xA4u8.hash(h);
        for w in &self.workers {
            (w.proto, w.epoch, w.connected, w.waiting, w.token.is_some()).hash(h);
        }
        0xA5u8.hash(h);
        self.failures.hash(h);
    }

    // ------------------------------------------------------------------
    // Internals (straight ports of the old coordinator, with `Instant`
    // arithmetic replaced by event-supplied microseconds).
    // ------------------------------------------------------------------

    /// Trace timestamp for an event happening at `now_us`.
    fn t(&self, now_us: u64) -> f64 {
        now_us.saturating_sub(self.origin_us) as f64 * 1e-6
    }

    fn emit(&mut self, fx: &mut Vec<Effect>, ev: TraceEvent) {
        debug_assert!(self.header_written, "events only after the header");
        fx.push(Effect::Trace(ev));
        self.step += 1;
    }

    /// Write the trace header recording every worker registered so far
    /// with its declared parameters. Called when the registration
    /// barrier is met (or at boot with no barrier); workers joining
    /// later appear in events but not in the header.
    fn write_header(&mut self, now_us: u64, fx: &mut Vec<Effect>) {
        debug_assert!(!self.header_written);
        let params: Vec<WorkerParams> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerParams {
                client: i,
                id: w.id.clone(),
                speed: w.speed,
            })
            .collect();
        let clients = self.workers.len().max(self.cfg.expect_workers).max(1);
        let header = TraceHeader::for_run(self.dag, clients, self.cfg.seed, &self.policy.name())
            .with_workers(params);
        fx.push(Effect::Header(header));
        self.header_written = true;
        // Serving time starts when serving can actually start.
        self.origin_us = now_us;
    }

    /// Move deferred tasks whose backoff elapsed back into the pool.
    /// Unclaiming stamps them as the pool's newest arrivals, so FIFO
    /// policies treat a reallocated task as freshly eligible.
    fn promote_deferred(&mut self, now_us: u64) {
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now_us {
                let (_, v) = self.deferred.swap_remove(i);
                let unclaimed = self.state.unclaim(v).is_ok();
                debug_assert!(unclaimed, "deferred tasks are claimed ELIGIBLE nodes");
            } else {
                i += 1;
            }
        }
    }

    fn fresh_token(&mut self) -> String {
        format!("{:016x}{:016x}", self.rng.next_u64(), self.rng.next_u64())
    }

    /// Lease deadline for a grant or renewal at `now_us`.
    fn lease_deadline(&self, now_us: u64) -> u64 {
        now_us.saturating_add(self.cfg.lease_ms.saturating_mul(1_000))
    }

    /// Declare a (removed) lease lost: emit `Failed` and bump the
    /// task's failure count. Only when the *last* holder falls does
    /// the task park in the backoff queue — while duplicates remain,
    /// the task is still in flight and must not re-enter the pool.
    fn lose_lease(&mut self, lease: Lease, now_us: u64, fx: &mut Vec<Effect>) {
        let v = lease.task;
        self.failures[v.index()] += 1;
        let last_holder = !self.leases.iter().any(|l| l.task == v);
        if last_holder {
            let fails = self.failures[v.index()];
            let backoff_us = self
                .cfg
                .backoff_base_ms
                .saturating_mul(1 << (fails - 1).min(6))
                .saturating_mul(1_000);
            self.deferred.push((now_us.saturating_add(backoff_us), v));
        }
        self.failure_events += 1;
        let ev = TraceEvent::Failed {
            step: self.step,
            time: self.t(now_us),
            client: lease.worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(fx, ev);
    }

    /// Remove and lose every lease held by `worker`.
    fn drop_worker_leases(&mut self, worker: usize, now_us: u64, fx: &mut Vec<Effect>) {
        let mut i = 0;
        while i < self.leases.len() {
            if self.leases[i].worker == worker {
                let lease = self.leases.swap_remove(i);
                self.lose_lease(lease, now_us, fx);
            } else {
                i += 1;
            }
        }
    }

    /// Register a fresh worker or resume an existing slot; pushes the
    /// [`Effect::Registered`] answer (after any header or trace
    /// effects the registration itself produced).
    fn register(
        &mut self,
        id: String,
        speed: f64,
        proto: u32,
        resume: Option<String>,
        now_us: u64,
        fx: &mut Vec<Effect>,
    ) {
        let refused = |fx: &mut Vec<Effect>, msg: Message| {
            fx.push(Effect::Registered {
                msg,
                worker: usize::MAX,
                epoch: 0,
            });
        };
        if proto < self.cfg.min_proto {
            return refused(
                fx,
                Message::Error {
                    code: ERR_UNSUPPORTED.into(),
                    msg: format!(
                        "protocol {proto} not supported: this server requires at least {}",
                        self.cfg.min_proto
                    ),
                },
            );
        }
        let negotiated = proto.min(PROTO_CURRENT);
        if let Some(token) = resume {
            if negotiated < PROTO_V2 {
                return refused(
                    fx,
                    Message::Error {
                        code: ERR_UNSUPPORTED.into(),
                        msg: "resume requires protocol 2".into(),
                    },
                );
            }
            return self.resume_slot(&token, negotiated, now_us, fx);
        }
        let worker = self.workers.len();
        let token = (negotiated >= PROTO_V2).then(|| self.fresh_token());
        self.workers.push(WorkerSlot {
            id,
            speed,
            waiting: false,
            proto: negotiated,
            token: token.clone(),
            epoch: 0,
            connected: true,
        });
        self.connected += 1;
        if self.header_written {
            self.late_workers += 1;
        } else if self.workers.len() >= self.cfg.expect_workers {
            self.write_header(now_us, fx);
        }
        fx.push(Effect::Registered {
            msg: Message::Welcome {
                worker: worker as u64,
                lease_ms: self.cfg.lease_ms,
                proto: negotiated,
                resume: token,
                tasks: Vec::new(),
            },
            worker,
            epoch: 0,
        });
    }

    /// Reattach a reconnecting worker to its slot: rotate the token,
    /// bump the epoch (so the dead connection's `Sever` is ignored),
    /// and restore the heartbeat clock of every lease it still holds.
    fn resume_slot(&mut self, token: &str, negotiated: u32, now_us: u64, fx: &mut Vec<Effect>) {
        let Some(worker) = self
            .workers
            .iter()
            .position(|w| w.token.as_deref() == Some(token))
        else {
            fx.push(Effect::Registered {
                msg: Message::Error {
                    code: ERR_BAD_RESUME.into(),
                    msg: "unknown or stale resume token".into(),
                },
                worker: usize::MAX,
                epoch: 0,
            });
            return;
        };
        let fresh = self.fresh_token();
        let deadline = self.lease_deadline(now_us);
        let slot = &mut self.workers[worker];
        slot.epoch += 1;
        slot.token = Some(fresh.clone());
        slot.proto = negotiated;
        slot.waiting = false;
        if !slot.connected {
            slot.connected = true;
            self.connected += 1;
        }
        let epoch = slot.epoch;
        let mut held: Vec<NodeId> = Vec::new();
        for l in self.leases.iter_mut().filter(|l| l.worker == worker) {
            l.deadline_us = deadline;
            held.push(l.task);
        }
        self.resumes += 1;
        for &v in &held {
            let ev = TraceEvent::Resumed {
                step: self.step,
                time: self.t(now_us),
                client: worker,
                task: v,
            };
            self.emit(fx, ev);
        }
        fx.push(Effect::Registered {
            msg: Message::Welcome {
                worker: worker as u64,
                lease_ms: self.cfg.lease_ms,
                proto: negotiated,
                resume: Some(fresh),
                tasks: held.iter().map(|v| v.index() as u64).collect(),
            },
            worker,
            epoch,
        });
    }

    /// A worker's connection dropped (with its registration epoch).
    fn sever(&mut self, worker: usize, epoch: u64, now_us: u64, fx: &mut Vec<Effect>) {
        match self.workers.get_mut(worker) {
            Some(slot) => {
                if slot.epoch != epoch && !self.bugs.honor_stale_gone {
                    // A superseded connection: the worker already
                    // resumed on a new socket.
                    return;
                }
                if slot.connected {
                    slot.connected = false;
                    self.connected = self.connected.saturating_sub(1);
                }
                if slot.proto >= PROTO_V2 && slot.token.is_some() {
                    // v2: keep the leases — the worker may resume.
                    // Lease expiry is the fallback if it never does.
                } else {
                    self.drop_worker_leases(worker, now_us, fx);
                }
            }
            None => {
                // Never fully registered (e.g. the welcome write
                // failed): v1 semantics, lose everything.
                self.connected = self.connected.saturating_sub(1);
                self.drop_worker_leases(worker, now_us, fx);
            }
        }
    }

    fn worker_proto(&self, worker: usize) -> u32 {
        self.workers
            .get(worker)
            .map_or(crate::wire::PROTO_V1, |w| w.proto)
    }

    /// Answer a work request: `Assign` when the pool has tasks,
    /// `Drain` when the dag is complete, a speculative duplicate at
    /// the drain barrier if stealing is enabled, `Wait` otherwise.
    ///
    /// A worker requesting while it still holds leases forfeits them
    /// (same as a mid-lease disconnect) — otherwise the held tasks,
    /// belonging to no queue, could never be reallocated.
    fn allocate_for(
        &mut self,
        worker: usize,
        max: u64,
        now_us: u64,
        fx: &mut Vec<Effect>,
    ) -> Message {
        if self.is_complete() {
            return Message::Drain;
        }
        if !self.header_written {
            // Registration barrier not met: no events before the header.
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        if self.bugs.orphan_on_request {
            // The seeded PR 3 bug: silently discard the held leases —
            // their tasks stay claimed but belong to no queue.
            self.leases.retain(|l| l.worker != worker);
        } else {
            self.drop_worker_leases(worker, now_us, fx);
        }
        self.promote_deferred(now_us);
        if self.state.pool_len() == 0 {
            if let Some(msg) = self.try_steal(worker, now_us, fx) {
                return msg;
            }
            // First unsatisfied request since this worker's last
            // allocation is a gridlock event; its polling retries are
            // not.
            if let Some(w) = self.workers.get_mut(worker) {
                if !w.waiting {
                    w.waiting = true;
                    let ev = TraceEvent::Idle {
                        step: self.step,
                        time: self.t(now_us),
                        client: worker,
                    };
                    self.emit(fx, ev);
                }
            }
            return Message::Wait {
                ms: self.cfg.wait_ms,
            };
        }
        let width = if self.worker_proto(worker) >= PROTO_V2 {
            max.clamp(1, self.cfg.batch.max(1) as u64) as usize
        } else {
            1
        };
        // Claiming removes each task from the pool but keeps it
        // ELIGIBLE until the lease resolves (completion, failure, or
        // expiry). The round is chosen exactly as the offline
        // `ic_sched::batched::batches_with` would choose it.
        let tasks = fill_round(
            &mut self.state,
            self.dag,
            self.policy,
            width,
            self.allocation_steps,
            Some(&self.failures),
        );
        self.allocation_steps += tasks.len();
        let deadline = self.lease_deadline(now_us);
        // The trace shows one `alloc` per task; event `i` of `k`
        // records the pool as it stood after that single allocation.
        let base = self.recorded_pool();
        let k = tasks.len();
        for (i, &v) in tasks.iter().enumerate() {
            self.leases.push(Lease {
                worker,
                task: v,
                deadline_us: deadline,
                granted_us: now_us,
                speculative: false,
            });
            let ev = TraceEvent::Allocated {
                step: self.step,
                time: self.t(now_us),
                client: worker,
                task: v,
                pool: Some(base + (k - 1 - i)),
            };
            self.emit(fx, ev);
        }
        if let Some(w) = self.workers.get_mut(worker) {
            w.waiting = false;
        }
        Message::Assign {
            tasks: tasks.iter().map(|v| v.index() as u64).collect(),
        }
    }

    /// At the drain barrier (empty pool, nothing deferred, leases
    /// outstanding), grant an idle v2 worker a speculative duplicate
    /// of the longest-outstanding primary lease — if stealing is
    /// enabled, that lease is old enough, and the task has no
    /// duplicate yet.
    fn try_steal(&mut self, worker: usize, now_us: u64, fx: &mut Vec<Effect>) -> Option<Message> {
        let after_us = self.cfg.steal_after_ms?.saturating_mul(1_000);
        if !self.deferred.is_empty() || self.worker_proto(worker) < PROTO_V2 {
            return None;
        }
        let mut straggler: Option<(u64, NodeId)> = None;
        for l in &self.leases {
            if l.speculative || l.worker == worker {
                continue;
            }
            if now_us.saturating_sub(l.granted_us) < after_us {
                continue;
            }
            let task = l.task;
            if self.leases.iter().any(|x| x.task == task && x.speculative) {
                continue;
            }
            if straggler.is_none_or(|(g, _)| l.granted_us < g) {
                straggler = Some((l.granted_us, task));
            }
        }
        let (_, v) = straggler?;
        self.steals += 1;
        self.leases.push(Lease {
            worker,
            task: v,
            deadline_us: self.lease_deadline(now_us),
            granted_us: now_us,
            speculative: true,
        });
        // The pool does not shrink: the task was already allocated.
        let ev = TraceEvent::Speculated {
            step: self.step,
            time: self.t(now_us),
            client: worker,
            task: v,
            pool: Some(self.recorded_pool()),
        };
        self.emit(fx, ev);
        if let Some(w) = self.workers.get_mut(worker) {
            w.waiting = false;
        }
        Some(Message::assign(v.index() as u64))
    }

    /// Apply a worker's outcome report. Returns whether it was
    /// accepted; late or duplicate reports are discarded without a
    /// trace event (the lease expiry already recorded the loss, or the
    /// task is already executed).
    ///
    /// First completion wins: the winner's `Completed` is followed by
    /// a `Revoked` for every remaining duplicate holder, whose
    /// eventual report then finds no lease and is rejected.
    fn report(
        &mut self,
        worker: usize,
        task: u64,
        ok: bool,
        now_us: u64,
        fx: &mut Vec<Effect>,
    ) -> bool {
        let Some(pos) = self
            .leases
            .iter()
            .position(|l| l.worker == worker && l.task.index() as u64 == task)
        else {
            if self.bugs.double_completion_event && ok {
                // The seeded duplicate-completion bug: a late report
                // for an already-executed task is accepted again and
                // re-emits `Completed`.
                if let Some(v) = self.dag.node_ids().find(|v| v.index() as u64 == task) {
                    if self.state.is_executed(v) {
                        self.completions += 1;
                        let ev = TraceEvent::Completed {
                            step: self.step,
                            time: self.t(now_us),
                            client: worker,
                            task: v,
                            pool: Some(self.recorded_pool()),
                        };
                        self.emit(fx, ev);
                        return true;
                    }
                }
            }
            return false;
        };
        let lease = self.leases.swap_remove(pos);
        let v = lease.task;
        if ok {
            // Newly ELIGIBLE children enter the pool inside
            // `execute_counting` (in id order). A leased task is
            // ELIGIBLE by construction — `ic-check` proves exactly
            // this invariant exhaustively — so failure is refused
            // defensively rather than unwrapped.
            if self.state.execute_counting(v).is_err() {
                debug_assert!(false, "leased task {v} was not ELIGIBLE");
                self.leases.push(lease);
                return false;
            }
            self.completions += 1;
            let ev = TraceEvent::Completed {
                step: self.step,
                time: self.t(now_us),
                client: worker,
                task: v,
                pool: Some(self.recorded_pool()),
            };
            self.emit(fx, ev);
            // Cancel the stale duplicates (if any): their leases are
            // removed now; their workers learn via the `Revoke` reply
            // to their next heartbeat or the rejected `Done`.
            let mut i = 0;
            while i < self.leases.len() {
                if self.leases[i].task == v {
                    let dup = self.leases.swap_remove(i);
                    self.revokes += 1;
                    let ev = TraceEvent::Revoked {
                        step: self.step,
                        time: self.t(now_us),
                        client: dup.worker,
                        task: dup.task,
                    };
                    self.emit(fx, ev);
                } else {
                    i += 1;
                }
            }
            if self.is_complete() {
                self.completed_at_us = Some(now_us);
            }
        } else {
            self.lose_lease(lease, now_us, fx);
        }
        true
    }
}

impl std::fmt::Debug for LeaseMachine<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseMachine")
            .field("executed", &self.state.num_executed())
            .field("pool", &self.state.pool_len())
            .field("deferred", &self.deferred.len())
            .field("leases", &self.leases.len())
            .field("workers", &self.workers.len())
            .field("connected", &self.connected)
            .field("complete", &self.is_complete())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PROTO_V1;
    use ic_audit::{audit_trace, Severity};
    use ic_dag::builder::from_arcs;
    use ic_sched::batched::batches_with;
    use ic_sched::heuristics::Policy;
    use ic_sim::trace::TraceSink;
    use ic_sim::MemorySink;

    /// Feed one event, route trace effects into the sink, and return
    /// the wire-visible replies (both `Reply` and `Registered` frames).
    fn drive(m: &mut LeaseMachine<'_, '_>, sink: &mut MemorySink, ev: Event) -> Vec<Message> {
        let mut replies = Vec::new();
        for e in m.step(ev) {
            match e {
                Effect::Header(h) => sink.header(&h),
                Effect::Trace(t) => sink.record(&t),
                Effect::Reply(msg) => replies.push(msg),
                Effect::Registered { msg, .. } => replies.push(msg),
            }
        }
        replies
    }

    fn boot(m: &mut LeaseMachine<'_, '_>, sink: &mut MemorySink) {
        for e in m.boot(0) {
            match e {
                Effect::Header(h) => sink.header(&h),
                Effect::Trace(t) => sink.record(&t),
                _ => panic!("boot only writes the header"),
            }
        }
    }

    fn request(
        m: &mut LeaseMachine<'_, '_>,
        sink: &mut MemorySink,
        worker: usize,
        max: u64,
        now_us: u64,
    ) -> Message {
        let mut replies = drive(
            m,
            sink,
            Event::Request {
                worker,
                max,
                now_us,
            },
        );
        assert_eq!(replies.len(), 1, "a request has exactly one reply");
        replies.remove(0)
    }

    fn done(
        m: &mut LeaseMachine<'_, '_>,
        sink: &mut MemorySink,
        worker: usize,
        task: u64,
        ok: bool,
        now_us: u64,
    ) -> bool {
        let mut replies = drive(
            m,
            sink,
            Event::Done {
                worker,
                task,
                ok,
                now_us,
            },
        );
        assert_eq!(replies.len(), 1);
        match replies.remove(0) {
            Message::Ack { accepted, .. } => accepted,
            other => panic!("done answers with ack, got {other:?}"),
        }
    }

    /// The machine's accounting invariant: every ELIGIBLE task is in
    /// exactly one place — the allocatable pool, the backoff queue, or
    /// out on (one or more) leases — and only pooled tasks are
    /// unclaimed.
    fn assert_accounting(m: &LeaseMachine<'_, '_>) {
        let mut eligible = m.exec().eligible_nodes();
        eligible.sort_unstable_by_key(|v| v.index());
        let mut tracked: Vec<NodeId> = m.exec().pool().to_vec();
        tracked.extend(m.deferred_tasks());
        let mut leased: Vec<NodeId> = m.lease_views().iter().map(|l| l.task).collect();
        leased.sort_unstable_by_key(|v| v.index());
        leased.dedup();
        tracked.extend(leased);
        tracked.sort_unstable_by_key(|v| v.index());
        assert_eq!(
            tracked, eligible,
            "pool ∪ deferred ∪ leased must equal the ELIGIBLE set"
        );
        for v in m.deferred_tasks() {
            assert!(!m.exec().is_pooled(v), "deferred task {v} stays claimed");
        }
        for l in m.lease_views() {
            assert!(
                !m.exec().is_pooled(l.task),
                "leased task {} stays claimed",
                l.task
            );
        }
        assert_eq!(
            m.recorded_pool(),
            m.exec().pool_len() + m.deferred_tasks().len()
        );
    }

    fn audit_errors(sink: MemorySink) -> Vec<ic_audit::Diagnostic> {
        let trace = sink.into_trace().expect("header written");
        audit_trace(&trace)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Regression test for the failure-reallocation lifecycle, now on
    /// the machine's virtual clock (no sleeps): a task that is leased,
    /// forfeited, parked in backoff, and re-leased must keep the pool
    /// and backoff accounting consistent at every step, and the
    /// finished trace must replay clean.
    #[test]
    fn failure_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(15)
            .build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        assert_accounting(&m);

        // Lease the lone source, then have the worker report failure:
        // the task parks in the backoff queue, still claimed.
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the source must be allocatable");
        };
        assert_eq!(tasks, vec![0]);
        assert_accounting(&m);
        assert!(done(&mut m, &mut sink, 0, 0, false, 0));
        assert_eq!((m.deferred_tasks().len(), m.lease_views().len()), (1, 0));
        assert_eq!(
            m.recorded_pool(),
            1,
            "a backing-off task still counts in the recorded pool"
        );
        assert_accounting(&m);

        // While the 15 ms backoff runs, the pool is empty: requests
        // wait.
        assert!(matches!(
            request(&mut m, &mut sink, 0, 1, 10_000),
            Message::Wait { .. }
        ));
        assert_accounting(&m);

        // After the backoff elapses the task is re-leased...
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 20_000) else {
            panic!("the backoff elapsed; the task must be reallocatable");
        };
        assert_eq!(tasks, vec![0]);
        assert_eq!(m.failure_count(NodeId(0)), 1);
        assert_accounting(&m);

        // ...and a request from a worker still holding a lease
        // forfeits it back into the backoff queue (now 30 ms) instead
        // of leaking it.
        assert!(matches!(
            request(&mut m, &mut sink, 0, 1, 20_000),
            Message::Wait { .. }
        ));
        assert_eq!((m.deferred_tasks().len(), m.lease_views().len()), (1, 0));
        assert_eq!(m.failure_count(NodeId(0)), 2);
        assert_accounting(&m);

        // Jump past the doubled backoff and drive the dag to
        // completion, checking the invariant around every decision.
        let mut now = 60_000;
        let mut guard = 0;
        while !m.is_complete() {
            match request(&mut m, &mut sink, 0, 1, now) {
                Message::Assign { tasks } => {
                    assert_accounting(&m);
                    assert!(done(&mut m, &mut sink, 0, tasks[0], true, now));
                }
                Message::Wait { .. } => now += 5_000,
                other => panic!("unexpected reply mid-run: {other:?}"),
            }
            assert_accounting(&m);
            guard += 1;
            assert!(guard < 1_000, "run failed to converge");
        }
        assert!(matches!(
            request(&mut m, &mut sink, 0, 1, now),
            Message::Drain
        ));

        let report = m.summary(now);
        assert_eq!(report.completions, 4);
        assert_eq!(report.failures, 2);
        assert_eq!(report.allocations, 6);

        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// A mid-lease disconnect of a v1 (or never-registered) worker
    /// reallocates the held task through the same claimed-while-
    /// deferred path as a failure report.
    #[test]
    fn disconnect_reallocation_keeps_pool_accounting_consistent() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(0)
            .build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);

        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the source must be allocatable");
        };
        assert_accounting(&m);
        drive(
            &mut m,
            &mut sink,
            Event::Sever {
                worker: 0,
                epoch: 0,
                now_us: 0,
            },
        );
        assert_eq!((m.deferred_tasks().len(), m.lease_views().len()), (1, 0));
        assert_accounting(&m);

        // Zero backoff: another worker picks the task right back up.
        let Message::Assign { tasks: retry } = request(&mut m, &mut sink, 1, 1, 0) else {
            panic!("the lost task must be immediately reallocatable");
        };
        assert_eq!(retry, tasks);
        assert_accounting(&m);
        assert!(done(&mut m, &mut sink, 1, retry[0], true, 0));
        assert_eq!(m.exec().pool_len(), 2, "both children became ELIGIBLE");
        assert_accounting(&m);
    }

    /// The resume lifecycle on the machine: a v2 worker that
    /// disconnects mid-lease keeps the lease, reclaims its slot with
    /// the token (rotated, so the old token dies), and the dead
    /// connection's stale `Sever` cannot disturb the resumed slot.
    #[test]
    fn resume_restores_leases_and_rotates_the_token() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder().lease_ms(10_000).build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);

        let mut replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "a".into(),
                speed: 1.0,
                proto: PROTO_V2,
                resume: None,
                now_us: 0,
            },
        );
        let Message::Welcome {
            resume: Some(token),
            proto,
            ..
        } = replies.remove(0)
        else {
            panic!("a v2 hello must be welcomed with a resume token");
        };
        assert_eq!(proto, PROTO_V2);
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the source must be allocatable");
        };

        // The connection dies mid-lease: the v2 slot keeps the lease.
        drive(
            &mut m,
            &mut sink,
            Event::Sever {
                worker: 0,
                epoch: 0,
                now_us: 0,
            },
        );
        assert_eq!(m.connected(), 0);
        assert_eq!(m.lease_views().len(), 1);
        assert_eq!(m.summary(0).failures, 0, "no spurious reallocation");
        assert_accounting(&m);

        // Resume with the token: same slot, rotated token, lease back.
        let mut replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "a".into(),
                speed: 1.0,
                proto: PROTO_V2,
                resume: Some(token.clone()),
                now_us: 0,
            },
        );
        let Message::Welcome {
            worker,
            resume: Some(rotated),
            tasks: held,
            ..
        } = replies.remove(0)
        else {
            panic!("a valid resume token must be accepted");
        };
        assert_eq!(worker, 0);
        assert_ne!(rotated, token, "the token must rotate on resume");
        assert_eq!(held, tasks);
        assert_eq!((m.summary(0).resumes, m.connected()), (1, 1));
        assert_eq!(m.worker_epoch(0), Some(1));

        // The spent token is dead; the old connection's Sever is stale.
        let mut replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "a".into(),
                speed: 1.0,
                proto: PROTO_V2,
                resume: Some(token),
                now_us: 0,
            },
        );
        assert!(
            matches!(replies.remove(0), Message::Error { ref code, .. } if code == ERR_BAD_RESUME),
            "a spent token must be refused"
        );
        drive(
            &mut m,
            &mut sink,
            Event::Sever {
                worker: 0,
                epoch: 0,
                now_us: 0,
            },
        );
        assert_eq!(m.connected(), 1, "a stale-epoch Sever is ignored");
        assert_eq!(m.lease_views().len(), 1);

        // Finish under the resumed lease; the trace replays clean.
        assert!(done(&mut m, &mut sink, 0, held[0], true, 0));
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the child must be allocatable");
        };
        assert!(done(&mut m, &mut sink, 0, tasks[0], true, 0));
        assert!(m.is_complete());
        let report = m.summary(0);
        assert_eq!((report.resumes, report.failures), (1, 0));
        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// The drain-barrier steal lifecycle: an idle v2 worker gets a
    /// speculative duplicate of the straggling lease, the first
    /// completion wins, the loser is revoked without a pool change,
    /// and the loser's late report is rejected without a trace event.
    #[test]
    fn speculative_duplicate_first_completion_wins() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10_000)
            .backoff_base_ms(0)
            .steal_after(0)
            .build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        for id in ["a", "b"] {
            let replies = drive(
                &mut m,
                &mut sink,
                Event::Hello {
                    id: id.into(),
                    speed: 1.0,
                    proto: PROTO_V2,
                    resume: None,
                    now_us: 0,
                },
            );
            assert!(matches!(replies[0], Message::Welcome { .. }));
        }

        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the source must be allocatable");
        };
        assert_eq!(tasks, vec![0]);

        // Pool empty, a lease outstanding: worker 1 steals a duplicate.
        let Message::Assign { tasks: stolen } = request(&mut m, &mut sink, 1, 1, 0) else {
            panic!("the drain barrier must yield a speculative lease");
        };
        assert_eq!(stolen, vec![0]);
        assert_eq!(m.lease_views().len(), 2);
        assert_eq!(m.summary(0).steals, 1);
        assert_accounting(&m);

        let steps_before = m.trace_steps();
        // Worker 1 finishes first: it wins, worker 0's lease is
        // revoked, the child enters the pool exactly once.
        assert!(done(&mut m, &mut sink, 1, 0, true, 0));
        assert_eq!((m.summary(0).revokes, m.lease_views().len()), (1, 0));
        assert_eq!(m.exec().pool_len(), 1);
        assert_accounting(&m);
        assert_eq!(m.trace_steps(), steps_before + 2, "completed + revoked");

        // The loser's late report finds no lease: rejected, no event.
        assert!(!done(&mut m, &mut sink, 0, 0, true, 0));
        assert_eq!(
            m.trace_steps(),
            steps_before + 2,
            "a late report emits nothing"
        );

        // The loser learns via its next heartbeat: a v2 Revoke frame.
        let replies = drive(
            &mut m,
            &mut sink,
            Event::Heartbeat {
                worker: 0,
                task: 0,
                now_us: 0,
            },
        );
        assert_eq!(replies, vec![Message::Revoke { task: 0 }]);

        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the child must be allocatable");
        };
        assert!(done(&mut m, &mut sink, 0, tasks[0], true, 0));
        assert!(m.is_complete());
        let report = m.summary(0);
        assert_eq!((report.steals, report.revokes, report.failures), (1, 1, 0));
        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// Batched allocation follows the offline batch schedule: a lone
    /// v2 worker requesting `max` tasks per round executes exactly the
    /// rounds `ic_sched::batched::batches_with` computes, and the
    /// per-task trace still replays clean.
    #[test]
    fn batched_allocation_matches_the_offline_batch_schedule() {
        let g = from_arcs(7, &[(0, 2), (1, 2), (1, 3), (2, 4), (2, 5), (3, 6)]).unwrap();
        let policy = Policy::Fifo;
        let offline: Vec<Vec<u64>> = batches_with(&g, 3, &policy)
            .batches()
            .iter()
            .map(|round| round.iter().map(|v| v.index() as u64).collect())
            .collect();

        let cfg = ServerConfig::builder().lease_ms(10_000).batch(3).build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        let replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "a".into(),
                speed: 1.0,
                proto: PROTO_V2,
                resume: None,
                now_us: 0,
            },
        );
        assert!(matches!(replies[0], Message::Welcome { .. }));

        let mut online: Vec<Vec<u64>> = Vec::new();
        while !m.is_complete() {
            let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 3, 0) else {
                panic!("a lone worker never waits on a failure-free dag");
            };
            assert_accounting(&m);
            for &t in &tasks {
                assert!(done(&mut m, &mut sink, 0, t, true, 0));
            }
            online.push(tasks);
        }
        assert_eq!(online, offline);

        let errors = audit_errors(sink);
        assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
    }

    /// Protocol gatekeeping: a hello below `min_proto` is refused with
    /// the typed `unsupported` error; a v1 worker on a default server
    /// is capped at one task per assign.
    #[test]
    fn min_proto_refuses_and_v1_is_never_batched() {
        let g = from_arcs(3, &[]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder().min_proto(PROTO_V2).build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        let replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "old".into(),
                speed: 1.0,
                proto: PROTO_V1,
                resume: None,
                now_us: 0,
            },
        );
        assert!(
            matches!(replies[0], Message::Error { ref code, .. } if code == ERR_UNSUPPORTED),
            "a v1 hello against a v2-only server gets the typed error"
        );
        assert_eq!(m.num_workers(), 0, "a refused peer takes no slot");

        let cfg = ServerConfig::builder().batch(4).build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        let mut replies = drive(
            &mut m,
            &mut sink,
            Event::Hello {
                id: "old".into(),
                speed: 1.0,
                proto: PROTO_V1,
                resume: None,
                now_us: 0,
            },
        );
        let Message::Welcome { proto, resume, .. } = replies.remove(0) else {
            panic!("a v1 hello is welcome on a default server");
        };
        assert_eq!(proto, PROTO_V1);
        assert_eq!(resume, None, "v1 peers get no resume token");
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 4, 0) else {
            panic!("sources are allocatable");
        };
        assert_eq!(tasks.len(), 1, "v1 workers are never batched");
    }

    /// Targeted expiry: an `Expire` whose deadline has not passed is a
    /// no-op; one whose deadline has passed forfeits exactly that
    /// lease. The driver's `expired()` scan and the event agree.
    #[test]
    fn targeted_expiry_honors_the_deadline() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder()
            .lease_ms(10) // 10 ms = 10_000 µs
            .backoff_base_ms(0)
            .build();
        let mut sink = MemorySink::new();
        let mut m = LeaseMachine::new(&g, &policy, cfg);
        boot(&mut m, &mut sink);
        let Message::Assign { tasks } = request(&mut m, &mut sink, 0, 1, 0) else {
            panic!("the source must be allocatable");
        };

        // Too early: nothing is expired, the event is a no-op.
        assert!(m.expired(5_000).is_empty());
        drive(
            &mut m,
            &mut sink,
            Event::Expire {
                worker: 0,
                task: tasks[0],
                now_us: 5_000,
            },
        );
        assert_eq!(m.lease_views().len(), 1);

        // A heartbeat at 5 ms pushes the deadline to 15 ms.
        drive(
            &mut m,
            &mut sink,
            Event::Heartbeat {
                worker: 0,
                task: tasks[0],
                now_us: 5_000,
            },
        );
        assert!(
            m.expired(12_000).is_empty(),
            "the heartbeat renewed the lease"
        );

        // Past the renewed deadline the lease is forfeited.
        let due = m.expired(15_000);
        assert_eq!(due, vec![(0, tasks[0])]);
        drive(
            &mut m,
            &mut sink,
            Event::Expire {
                worker: 0,
                task: tasks[0],
                now_us: 15_000,
            },
        );
        assert_eq!(m.lease_views().len(), 0);
        assert_eq!(m.failure_count(NodeId(0)), 1);
        assert_accounting(&m);
    }

    /// The fingerprint is insensitive to trace-step counters and
    /// timing, but sensitive to scheduling state.
    #[test]
    fn fingerprint_tracks_scheduling_state_only() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let policy = Policy::Fifo;
        let cfg = ServerConfig::builder().lease_ms(10_000).build();
        let mut sink = MemorySink::new();

        let mut a = LeaseMachine::new(&g, &policy, cfg.clone());
        boot(&mut a, &mut sink);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Same decision at different times: same fingerprint.
        let Message::Assign { .. } = request(&mut a, &mut sink, 0, 1, 0) else {
            panic!("allocatable");
        };
        let Message::Assign { .. } = request(&mut b, &mut sink, 0, 1, 99_000) else {
            panic!("allocatable");
        };
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Diverging decisions: different fingerprints.
        assert!(done(&mut a, &mut sink, 0, 0, true, 0));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
