//! The event-driven reactor core of the IC task server.
//!
//! [`Reactor`] replaces the thread-per-connection server loop: one
//! thread owns every connection, a nonblocking [`Poller`] surfaces
//! transport readiness as [`IoEvent`]s, per-connection frame state
//! lives in an incremental [`crate::wire::Decoder`], and lease expiry
//! rides a hierarchical [`TimerWheel`] instead of a per-lease scan.
//! All protocol semantics stay in the *pure*
//! [`LeaseMachine`](crate::machine::LeaseMachine) — the reactor, like
//! the blocking driver before it, only stamps events with clock
//! microseconds and performs the returned effects. `LeaseMachine`
//! itself is untouched by this redesign, so everything `ic-check`
//! proves about it (invariants IC0501–IC0507) carries over verbatim.
//!
//! # Injectable clock and poller
//!
//! The reactor is generic over a [`Clock`] and a [`Poller`], injected
//! together as a [`Driver`]:
//!
//! * the live TCP server uses [`MonotonicClock`] + [`TcpPoller`]
//!   (std-only nonblocking sockets — the workspace has no `libc`, no
//!   `unsafe`, and therefore no raw `epoll`; the poller compensates
//!   with an adaptive idle backoff);
//! * deterministic drivers — the in-process load harness and the
//!   ic-check-style lockstep tests — use [`ManualClock`] +
//!   [`LoopbackPoller`], where time only moves when the test says so
//!   and "sockets" are in-process channels.
//!
//! Both paths execute the *same* reactor code, so what the
//! deterministic tests exercise is exactly what production runs.
//!
//! # Timers are lazy
//!
//! The wheel is never cancelled (see [`crate::timer`]): every lease
//! grant, resume, and heartbeat renewal schedules a fresh
//! [`Deadline::Lease`] at its new deadline, and a firing whose lease
//! was meanwhile completed, forfeited, renewed, or revoked steps an
//! `Event::Expire` that the machine ignores by its
//! `deadline_us <= now_us` guard. Stale firings are cheap no-ops;
//! missed expiries are impossible as long as every grant path
//! schedules — assigns (primary and speculative), heartbeat renewals,
//! and resume welcomes all re-arm the wheel.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ic_dag::Dag;
use ic_sched::policy::AllocationPolicy;
use ic_sim::trace::TraceSink;

use crate::machine::{Effect, Event, LeaseMachine};
use crate::server::{ServeReport, ServerConfig};
use crate::timer::TimerWheel;
use crate::wire::{Decoder, Frame, Message, WireError};

/// A source of driver time, in microseconds. The reactor stamps every
/// machine event with `now_us()`; nothing else in the system reads a
/// clock, which is what makes lockstep tests deterministic.
pub trait Clock {
    /// Current driver time in microseconds. Must be monotonic.
    fn now_us(&self) -> u64;
}

/// Wall-clock [`Clock`]: microseconds since construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked [`Clock`] for deterministic drivers: time moves only
/// through [`advance`](ManualClock::advance) /
/// [`set`](ManualClock::set). Clones share the same underlying time,
/// so a test keeps one handle while the reactor owns another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A manual clock starting at `start_us`.
    pub fn new(start_us: u64) -> ManualClock {
        ManualClock(Arc::new(AtomicU64::new(start_us)))
    }

    /// Move time forward by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.0.fetch_add(us, Ordering::SeqCst);
    }

    /// Jump to an absolute time (ignored if it would move backwards).
    pub fn set(&self, us: u64) {
        self.0.fetch_max(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Identifier of one transport connection, assigned by the poller.
pub type ConnId = u64;

/// One unit of transport readiness, surfaced by [`Poller::poll`].
#[derive(Debug)]
pub enum IoEvent {
    /// A new connection was accepted.
    Open(ConnId),
    /// Bytes arrived on a connection (any chunking; the reactor's
    /// per-connection [`Decoder`] reassembles frames).
    Data(ConnId, Vec<u8>),
    /// The connection is gone: EOF, transport error, or a failed send.
    /// Not emitted for connections the *reactor* closed.
    Closed(ConnId),
}

/// A nonblocking transport the reactor drives. Implementations own the
/// sockets (or channels) and all write buffering; the reactor never
/// blocks on I/O — `poll` is its only wait point.
pub trait Poller {
    /// Gather readiness events, waiting at most `timeout` when idle.
    /// Events are appended to `out` (which the reactor hands back
    /// empty).
    fn poll(&mut self, timeout: Duration, out: &mut Vec<IoEvent>) -> io::Result<()>;

    /// Queue `bytes` on a connection, transmitting as much as the
    /// transport accepts now and the rest as it drains. A send to a
    /// dead connection must surface as a later
    /// [`IoEvent::Closed`], never as an error here.
    fn send(&mut self, conn: ConnId, bytes: &[u8]);

    /// Close a connection after flushing its pending output. No
    /// [`IoEvent::Closed`] is reported for it.
    fn close(&mut self, conn: ConnId);
}

/// A sharded hash table keyed by [`ConnId`], used for the reactor's
/// connection state and the TCP poller's socket table. Sharding keeps
/// each underlying map small (cheaper rehashing at 10k-connection
/// scale) and gives iteration a natural batch structure; the shard
/// count is a [`ServerConfig::shards`] knob.
#[derive(Debug)]
pub struct ShardedTable<V> {
    shards: Vec<HashMap<ConnId, V>>,
    mask: u64,
}

impl<V> ShardedTable<V> {
    /// A table with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> ShardedTable<V> {
        let n = shards.max(1).next_power_of_two();
        ShardedTable {
            shards: (0..n).map(|_| HashMap::new()).collect(),
            mask: (n as u64) - 1,
        }
    }

    fn shard(&self, id: ConnId) -> usize {
        usize::try_from(id & self.mask).unwrap_or(0)
    }

    /// Insert (or replace) the value for `id`.
    pub fn insert(&mut self, id: ConnId, v: V) -> Option<V> {
        let s = self.shard(id);
        self.shards[s].insert(id, v)
    }

    /// Shared access to the value for `id`.
    pub fn get(&self, id: ConnId) -> Option<&V> {
        self.shards[self.shard(id)].get(&id)
    }

    /// Mutable access to the value for `id`.
    pub fn get_mut(&mut self, id: ConnId) -> Option<&mut V> {
        let s = self.shard(id);
        self.shards[s].get_mut(&id)
    }

    /// Remove and return the value for `id`.
    pub fn remove(&mut self, id: ConnId) -> Option<V> {
        let s = self.shard(id);
        self.shards[s].remove(&id)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Append every live id to `out` (callers reuse the scratch vec
    /// across polls to avoid per-iteration allocation).
    pub fn collect_ids(&self, out: &mut Vec<ConnId>) {
        for shard in &self.shards {
            out.extend(shard.keys().copied());
        }
    }
}

/// What a wheel timer means when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// A lease's heartbeat deadline: step `Event::Expire` (a no-op if
    /// the lease was renewed or resolved — timers are lazy).
    Lease {
        /// The lease holder's slot index.
        worker: usize,
        /// The leased task id.
        task: u64,
    },
    /// A plain wakeup (steal deadline at the drain barrier): forces a
    /// loop iteration so time-dependent state is re-examined promptly
    /// even if no I/O arrives.
    Wake,
}

/// The injectable pair a [`Reactor`] runs on: where time comes from
/// and where bytes go. [`Driver::tcp`] builds the production pair;
/// tests and harnesses compose their own from [`ManualClock`] /
/// [`LoopbackPoller`].
pub struct Driver {
    clock: Box<dyn Clock>,
    poller: Box<dyn Poller>,
}

impl Driver {
    /// A driver from any clock/poller pair.
    pub fn new(clock: Box<dyn Clock>, poller: Box<dyn Poller>) -> Driver {
        Driver { clock, poller }
    }

    /// The production driver: wall-clock time over nonblocking TCP.
    pub fn tcp(listener: TcpListener, cfg: &ServerConfig) -> io::Result<Driver> {
        Ok(Driver {
            clock: Box::new(MonotonicClock::new()),
            poller: Box::new(TcpPoller::new(listener, cfg.shards)?),
        })
    }
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver").finish_non_exhaustive()
    }
}

/// Per-connection reactor state: frame reassembly plus the worker slot
/// and registration epoch once the connection has said hello.
#[derive(Debug, Default)]
struct ConnState {
    dec: Decoder,
    /// `Some((worker, epoch))` once registered.
    reg: Option<(usize, u64)>,
}

/// The event-driven IC task server core. Construct with
/// [`Reactor::new`], drive with [`Reactor::run_until_drain`];
/// [`crate::Server::run`] is the TCP compatibility wrapper around
/// exactly this.
pub struct Reactor<'a> {
    machine: LeaseMachine<'a, 'a>,
    clock: Box<dyn Clock>,
    poller: Box<dyn Poller>,
    wheel: TimerWheel<Deadline>,
    conns: ShardedTable<ConnState>,
    cfg: ServerConfig,
    /// Scratch encode buffer, reused across replies.
    out: Vec<u8>,
}

impl<'a> Reactor<'a> {
    /// A reactor serving `dag` under `policy` with the given config,
    /// on the injected driver.
    ///
    /// # Panics
    /// Panics if the policy rejects the dag in
    /// [`AllocationPolicy::prepare`] (exactly as the blocking server
    /// did).
    pub fn new(
        dag: &'a Dag,
        policy: &'a dyn AllocationPolicy,
        cfg: ServerConfig,
        driver: Driver,
    ) -> Reactor<'a> {
        let now = driver.clock.now_us();
        Reactor {
            machine: LeaseMachine::new(dag, policy, cfg.clone()),
            clock: driver.clock,
            poller: driver.poller,
            wheel: TimerWheel::new(now),
            conns: ShardedTable::new(cfg.shards),
            cfg,
            out: Vec::new(),
        }
    }

    /// Serve until the dag completes and the drain grace expires (or
    /// every connection is gone), streaming every decision into
    /// `sink`. Semantics are identical to the blocking
    /// [`crate::Server::run`]: same machine, same trace order, same
    /// drain rule.
    pub fn run_until_drain(&mut self, sink: &mut dyn TraceSink) -> io::Result<ServeReport> {
        let fx = self.machine.boot(self.clock.now_us());
        self.perform(fx, None, sink);

        let poll_timeout = Duration::from_millis(self.cfg.poll_timeout_ms.max(1));
        let drain_grace_us = self.cfg.lease_ms.max(250).saturating_mul(1000);
        let mut done_at: Option<u64> = None;
        let mut events: Vec<IoEvent> = Vec::new();
        let mut fired: Vec<Deadline> = Vec::new();

        loop {
            events.clear();
            self.poller.poll(poll_timeout, &mut events)?;
            for ev in events.drain(..) {
                match ev {
                    IoEvent::Open(id) => {
                        self.conns.insert(id, ConnState::default());
                    }
                    IoEvent::Data(id, bytes) => self.on_data(id, &bytes, sink),
                    IoEvent::Closed(id) => {
                        if let Some(st) = self.conns.remove(id) {
                            if let Some((worker, epoch)) = st.reg {
                                self.sever(worker, epoch, sink);
                            }
                        }
                    }
                }
            }

            fired.clear();
            let now = self.clock.now_us();
            self.wheel.advance(now, &mut fired);
            for d in fired.drain(..) {
                if let Deadline::Lease { worker, task } = d {
                    let fx = self.machine.step(Event::Expire {
                        worker,
                        task,
                        now_us: now,
                    });
                    self.perform(fx, None, sink);
                }
            }

            if self.machine.is_complete() {
                let now = self.clock.now_us();
                let reached = *done_at.get_or_insert(now);
                if self.machine.connected() == 0 || now.saturating_sub(reached) >= drain_grace_us {
                    break;
                }
            }
        }
        Ok(self.machine.summary(self.clock.now_us()))
    }

    /// Feed arrived bytes to the connection's decoder and dispatch
    /// every complete frame. A decode error (oversized prefix, garbage
    /// payload, foreign JSON) drops the connection, as the blocking
    /// handler always did.
    fn on_data(&mut self, id: ConnId, bytes: &[u8], sink: &mut dyn TraceSink) {
        if let Some(st) = self.conns.get_mut(id) {
            st.dec.feed(bytes);
        }
        loop {
            // Decode with the short-lived borrow, dispatch without it:
            // dispatch may remove the connection (drain, bye, error),
            // at which point `get_mut` misses and the loop ends.
            let msg = match self.conns.get_mut(id).map(|st| st.dec.next_msg()) {
                None | Some(Ok(None)) => break,
                Some(Ok(Some(msg))) => msg,
                Some(Err(_)) => {
                    self.drop_conn(id, sink);
                    break;
                }
            };
            match self.conns.get(id).and_then(|st| st.reg) {
                None => self.dispatch_unregistered(id, msg, sink),
                Some((worker, epoch)) => self.dispatch_registered(id, worker, epoch, msg, sink),
            }
        }
    }

    /// First frame on a connection: a valid `hello` registers (fresh
    /// or resume); anything else is a protocol error.
    fn dispatch_unregistered(&mut self, id: ConnId, msg: Message, sink: &mut dyn TraceSink) {
        let now_us = self.clock.now_us();
        match msg {
            Message::Hello {
                id: wid,
                speed,
                proto,
                resume,
            } if speed.is_finite() && speed > 0.0 => {
                let fx = self.machine.step(Event::Hello {
                    id: wid,
                    speed,
                    proto,
                    resume,
                    now_us,
                });
                for e in fx {
                    match e {
                        Effect::Header(h) => sink.header(&h),
                        Effect::Trace(ev) => sink.record(&ev),
                        Effect::Registered { msg, worker, epoch } => {
                            let accepted = matches!(msg, Message::Welcome { .. });
                            // A resume's welcome restores held leases
                            // with renewed clocks: re-arm each one.
                            if let Message::Welcome { ref tasks, .. } = msg {
                                for &task in tasks {
                                    self.arm_lease(worker, task, now_us);
                                }
                            }
                            self.send_msg(id, &msg);
                            if accepted {
                                if let Some(st) = self.conns.get_mut(id) {
                                    st.reg = Some((worker, epoch));
                                }
                            } else {
                                // Refused (unsupported proto, bad
                                // resume): the typed error frame is on
                                // its way out; close.
                                self.conns.remove(id);
                                self.poller.close(id);
                            }
                        }
                        Effect::Reply(_) => {
                            debug_assert!(false, "Hello answers with Registered, not Reply");
                        }
                    }
                }
            }
            _ => {
                self.send_msg(
                    id,
                    &Message::error("expected hello with a positive finite speed"),
                );
                self.conns.remove(id);
                self.poller.close(id);
            }
        }
    }

    /// A frame from a registered worker.
    fn dispatch_registered(
        &mut self,
        id: ConnId,
        worker: usize,
        epoch: u64,
        msg: Message,
        sink: &mut dyn TraceSink,
    ) {
        let now_us = self.clock.now_us();
        let event = match msg {
            Message::Request { max } => Event::Request {
                worker,
                max,
                now_us,
            },
            Message::Done { task, ok } => Event::Done {
                worker,
                task,
                ok,
                now_us,
            },
            Message::Heartbeat { task } => Event::Heartbeat {
                worker,
                task,
                now_us,
            },
            Message::Bye => {
                self.conns.remove(id);
                self.sever(worker, epoch, sink);
                self.poller.close(id);
                return;
            }
            _ => {
                self.send_msg(
                    id,
                    &Message::error("unexpected server-side message from a worker"),
                );
                self.conns.remove(id);
                self.sever(worker, epoch, sink);
                self.poller.close(id);
                return;
            }
        };
        let fx = self.machine.step(event);
        let mut draining = false;
        for e in fx {
            match e {
                Effect::Header(h) => sink.header(&h),
                Effect::Trace(ev) => sink.record(&ev),
                Effect::Reply(msg) => {
                    match &msg {
                        // Every grant path re-arms the wheel: primary
                        // and speculative assigns here, heartbeat
                        // renewals below, resumes at registration.
                        Message::Assign { tasks } => {
                            for &task in tasks {
                                self.arm_lease(worker, task, now_us);
                            }
                        }
                        Message::Ack {
                            task,
                            accepted: true,
                        } => {
                            // Only heartbeats renew; a done's ack has
                            // no lease left to time. Arming on both is
                            // harmless (lazy timers), arming on
                            // heartbeat is required.
                            self.arm_lease(worker, *task, now_us);
                        }
                        Message::Wait { .. } => {
                            // At the drain barrier a steal deadline
                            // may be pending: wake the loop by then
                            // even if no I/O arrives.
                            if let Some(steal_ms) = self.cfg.steal_after_ms {
                                self.wheel.schedule(
                                    now_us.saturating_add(steal_ms.saturating_mul(1000)),
                                    Deadline::Wake,
                                );
                            }
                        }
                        Message::Drain => draining = true,
                        _ => {}
                    }
                    self.send_msg(id, &msg);
                }
                Effect::Registered { .. } => {
                    debug_assert!(false, "only Hello answers with Registered");
                }
            }
        }
        if draining {
            // The worker got its drain frame; its part is over. Sever
            // now and close after the frame flushes, exactly like the
            // blocking handler's drain path.
            self.conns.remove(id);
            self.sever(worker, epoch, sink);
            self.poller.close(id);
        }
    }

    /// Schedule the expiry timer for a lease granted or renewed at
    /// `now_us` — the machine computed `now_us + lease_ms` as its
    /// deadline, and the wheel rounds up, so the firing can never be
    /// early.
    fn arm_lease(&mut self, worker: usize, task: u64, now_us: u64) {
        let deadline = now_us.saturating_add(self.cfg.lease_ms.saturating_mul(1000));
        self.wheel
            .schedule(deadline, Deadline::Lease { worker, task });
    }

    /// Step a `Sever` for a registered connection that is gone.
    fn sever(&mut self, worker: usize, epoch: u64, sink: &mut dyn TraceSink) {
        let now_us = self.clock.now_us();
        let fx = self.machine.step(Event::Sever {
            worker,
            epoch,
            now_us,
        });
        self.perform(fx, None, sink);
    }

    /// Drop a connection after a decode error: sever if registered,
    /// close the transport.
    fn drop_conn(&mut self, id: ConnId, sink: &mut dyn TraceSink) {
        if let Some(st) = self.conns.remove(id) {
            if let Some((worker, epoch)) = st.reg {
                self.sever(worker, epoch, sink);
            }
        }
        self.poller.close(id);
    }

    /// Perform effects outside a connection's request context (boot,
    /// expiry, sever): sink records, plus replies when a connection is
    /// given.
    fn perform(&mut self, fx: Vec<Effect>, reply_to: Option<ConnId>, sink: &mut dyn TraceSink) {
        for e in fx {
            match e {
                Effect::Header(h) => sink.header(&h),
                Effect::Trace(ev) => sink.record(&ev),
                Effect::Reply(msg) => {
                    if let Some(id) = reply_to {
                        self.send_msg(id, &msg);
                    }
                }
                Effect::Registered { .. } => {
                    debug_assert!(false, "only Hello answers with Registered");
                }
            }
        }
    }

    /// Encode one frame into the scratch buffer and hand it to the
    /// poller.
    fn send_msg(&mut self, id: ConnId, msg: &Message) {
        self.out.clear();
        Frame::encode_into(msg, &mut self.out);
        self.poller.send(id, &self.out);
    }
}

impl std::fmt::Debug for Reactor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("conns", &self.conns.len())
            .field("timers", &self.wheel.len())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// TCP poller
// ---------------------------------------------------------------------

/// Read-buffer size per scan pass.
const READ_CHUNK: usize = 64 * 1024;

/// Idle backoff bounds for the scan poller: after activity the scan
/// re-runs almost immediately; a quiet server decays toward the poll
/// timeout so it costs ~no CPU.
const NAP_MIN: Duration = Duration::from_micros(50);

/// The production [`Poller`]: a nonblocking `TcpListener` plus a
/// sharded table of nonblocking streams with per-connection write
/// buffers.
///
/// The workspace forbids `unsafe` and external crates, so there is no
/// raw `epoll` to block on; instead each `poll` scans the (sharded)
/// connection table with nonblocking reads and sleeps an *adaptive*
/// backoff when nothing is ready — microseconds under load, decaying
/// to the configured poll timeout when idle. At harness scale
/// (thousands of connections, most with pending frames) the scan is
/// the same work epoll would have delivered; the backoff only matters
/// at the quiet tail.
pub struct TcpPoller {
    listener: TcpListener,
    conns: ShardedTable<TcpConn>,
    next_id: ConnId,
    nap: Duration,
    /// Scratch id list reused across polls.
    scan: Vec<ConnId>,
    /// Scratch read buffer.
    rbuf: Vec<u8>,
    /// Events synthesized outside `poll` (failed sends).
    pending: Vec<IoEvent>,
}

struct TcpConn {
    stream: TcpStream,
    wbuf: Vec<u8>,
    /// Reactor asked to close once `wbuf` drains.
    closing: bool,
}

impl TcpPoller {
    /// Wrap a bound listener; `shards` sizes the connection table.
    pub fn new(listener: TcpListener, shards: usize) -> io::Result<TcpPoller> {
        listener.set_nonblocking(true)?;
        Ok(TcpPoller {
            listener,
            conns: ShardedTable::new(shards),
            next_id: 0,
            nap: NAP_MIN,
            scan: Vec::new(),
            rbuf: vec![0u8; READ_CHUNK],
            pending: Vec::new(),
        })
    }

    /// One accept+scan pass; returns having appended any events.
    fn pass(&mut self, out: &mut Vec<IoEvent>) -> io::Result<()> {
        out.append(&mut self.pending);

        // Admit new connections.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(
                        id,
                        TcpConn {
                            stream,
                            wbuf: Vec::new(),
                            closing: false,
                        },
                    );
                    out.push(IoEvent::Open(id));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        // Scan every connection: drain write buffers, then read.
        self.scan.clear();
        self.conns.collect_ids(&mut self.scan);
        let ids = std::mem::take(&mut self.scan);
        for &id in &ids {
            let mut gathered: Vec<u8> = Vec::new();
            let fate = {
                let Some(conn) = self.conns.get_mut(id) else {
                    continue;
                };
                Self::service(conn, &mut self.rbuf, &mut gathered)
            };
            if !gathered.is_empty() {
                out.push(IoEvent::Data(id, gathered));
            }
            match fate {
                Fate::Keep => {}
                Fate::DropSilent => {
                    self.conns.remove(id);
                }
                Fate::DropClosed => {
                    self.conns.remove(id);
                    out.push(IoEvent::Closed(id));
                }
            }
        }
        self.scan = ids;
        Ok(())
    }

    /// Flush then read one connection. Appends read bytes to
    /// `gathered`; the verdict says whether (and how) to drop it.
    fn service(conn: &mut TcpConn, rbuf: &mut [u8], gathered: &mut Vec<u8>) -> Fate {
        let on_error = |conn: &TcpConn| {
            if conn.closing {
                Fate::DropSilent
            } else {
                Fate::DropClosed
            }
        };
        // Flush pending output.
        while !conn.wbuf.is_empty() {
            match conn.stream.write(&conn.wbuf) {
                Ok(0) => return on_error(conn),
                Ok(n) => {
                    conn.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return on_error(conn),
            }
        }
        if conn.closing {
            // The reactor already forgot this connection; it lives only
            // until its farewell frame drains.
            return if conn.wbuf.is_empty() {
                Fate::DropSilent
            } else {
                Fate::Keep
            };
        }
        // Read whatever is ready.
        loop {
            match conn.stream.read(rbuf) {
                Ok(0) => return Fate::DropClosed,
                Ok(n) => {
                    gathered.extend_from_slice(&rbuf[..n]);
                    if n < rbuf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::DropClosed,
            }
        }
        Fate::Keep
    }
}

/// Verdict of one [`TcpPoller`] connection scan.
enum Fate {
    Keep,
    /// Drop without a `Closed` event (reactor-initiated close).
    DropSilent,
    /// Drop and report `Closed`.
    DropClosed,
}

impl Poller for TcpPoller {
    fn poll(&mut self, timeout: Duration, out: &mut Vec<IoEvent>) -> io::Result<()> {
        let before = out.len();
        self.pass(out)?;
        if out.len() == before && !timeout.is_zero() {
            std::thread::sleep(self.nap.min(timeout));
            self.pass(out)?;
        }
        if out.len() == before {
            self.nap = (self.nap * 2).min(timeout.max(NAP_MIN));
        } else {
            self.nap = NAP_MIN;
        }
        Ok(())
    }

    fn send(&mut self, conn: ConnId, bytes: &[u8]) {
        let failed = {
            let Some(c) = self.conns.get_mut(conn) else {
                return;
            };
            c.wbuf.extend_from_slice(bytes);
            // Transmit eagerly: most replies fit the socket buffer
            // whole, so the common case leaves no buffered residue.
            let mut failed = false;
            while !c.wbuf.is_empty() {
                match c.stream.write(&c.wbuf) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        c.wbuf.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            failed
        };
        if failed {
            if let Some(c) = self.conns.remove(conn) {
                if !c.closing {
                    self.pending.push(IoEvent::Closed(conn));
                }
            }
        }
    }

    fn close(&mut self, conn: ConnId) {
        let empty = match self.conns.get_mut(conn) {
            Some(c) => {
                // Keep the socket until the farewell frame drains.
                c.closing = true;
                c.wbuf.is_empty()
            }
            None => return,
        };
        if empty {
            self.conns.remove(conn);
        }
    }
}

// ---------------------------------------------------------------------
// Loopback poller (deterministic / in-process driver)
// ---------------------------------------------------------------------

/// Commands a [`LoopbackConn`] sends to its poller.
enum LoopCmd {
    Connect { id: ConnId, peer: Sender<Vec<u8>> },
    Data { id: ConnId, bytes: Vec<u8> },
    Close { id: ConnId },
}

/// An in-process [`Poller`] over channels: the deterministic driver
/// used by the load harness and the lockstep reactor tests. Clients
/// obtain [`LoopbackConn`]s from the paired [`LoopbackHandle`]; bytes
/// flow through `mpsc` channels instead of sockets, so a single-client
/// script observes a fully deterministic event order.
pub struct LoopbackPoller {
    rx: Receiver<LoopCmd>,
    peers: ShardedTable<Sender<Vec<u8>>>,
    pending: Vec<IoEvent>,
}

/// Connection factory for a [`LoopbackPoller`]; clone one per client
/// thread.
#[derive(Clone)]
pub struct LoopbackHandle {
    tx: Sender<LoopCmd>,
    next: Arc<AtomicU64>,
}

/// A paired loopback poller and its connection factory; `shards`
/// mirrors [`ServerConfig::shards`].
pub fn loopback(shards: usize) -> (LoopbackPoller, LoopbackHandle) {
    let (tx, rx) = channel();
    (
        LoopbackPoller {
            rx,
            peers: ShardedTable::new(shards),
            pending: Vec::new(),
        },
        LoopbackHandle {
            tx,
            next: Arc::new(AtomicU64::new(0)),
        },
    )
}

impl LoopbackPoller {
    fn apply(&mut self, cmd: LoopCmd, out: &mut Vec<IoEvent>) {
        match cmd {
            LoopCmd::Connect { id, peer } => {
                self.peers.insert(id, peer);
                out.push(IoEvent::Open(id));
            }
            LoopCmd::Data { id, bytes } => {
                if self.peers.get(id).is_some() {
                    out.push(IoEvent::Data(id, bytes));
                }
            }
            LoopCmd::Close { id } => {
                if self.peers.remove(id).is_some() {
                    out.push(IoEvent::Closed(id));
                }
            }
        }
    }
}

impl Poller for LoopbackPoller {
    fn poll(&mut self, timeout: Duration, out: &mut Vec<IoEvent>) -> io::Result<()> {
        out.append(&mut self.pending);
        if out.is_empty() {
            match self.rx.recv_timeout(timeout) {
                Ok(cmd) => self.apply(cmd, out),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every handle and client is gone; the reactor's
                    // completion check will end the run.
                    std::thread::sleep(timeout.min(Duration::from_millis(1)));
                }
            }
        }
        while let Ok(cmd) = self.rx.try_recv() {
            self.apply(cmd, out);
        }
        Ok(())
    }

    fn send(&mut self, conn: ConnId, bytes: &[u8]) {
        let dead = match self.peers.get(conn) {
            Some(peer) => peer.send(bytes.to_vec()).is_err(),
            None => false,
        };
        if dead {
            self.peers.remove(conn);
            self.pending.push(IoEvent::Closed(conn));
        }
    }

    fn close(&mut self, conn: ConnId) {
        // Dropping the sender EOFs the client after it drains what was
        // already delivered.
        self.peers.remove(conn);
    }
}

impl LoopbackHandle {
    /// Open a new in-process connection to the poller.
    pub fn connect(&self) -> LoopbackConn {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let (peer, rx) = channel();
        let _ = self.tx.send(LoopCmd::Connect { id, peer });
        LoopbackConn {
            id,
            tx: self.tx.clone(),
            rx,
            dec: Decoder::new(),
            closed: false,
        }
    }
}

/// The client end of one loopback connection: send [`Message`]s to the
/// reactor, receive its frames through an incremental decoder —
/// exactly the shape of a TCP worker session, minus the sockets.
pub struct LoopbackConn {
    id: ConnId,
    tx: Sender<LoopCmd>,
    rx: Receiver<Vec<u8>>,
    dec: Decoder,
    closed: bool,
}

impl LoopbackConn {
    /// This connection's id on the poller side.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// Send one message to the reactor.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        let mut frame = Vec::new();
        Frame::encode_into(msg, &mut frame);
        self.tx
            .send(LoopCmd::Data {
                id: self.id,
                bytes: frame,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "poller is gone"))
    }

    /// Receive the next message, waiting up to `timeout`. `Ok(None)`
    /// means the timeout passed with no complete frame.
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Message>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = wire_to_io(self.dec.next_msg())? {
                return Ok(Some(msg));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            match self.rx.recv_timeout(left) {
                Ok(bytes) => self.dec.feed(&bytes),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::ErrorKind::UnexpectedEof.into());
                }
            }
        }
    }

    /// Receive without blocking: `Ok(None)` when no complete frame has
    /// arrived yet; `Err(UnexpectedEof)` once the reactor closed the
    /// connection and everything delivered was consumed.
    pub fn try_recv(&mut self) -> io::Result<Option<Message>> {
        loop {
            if let Some(msg) = wire_to_io(self.dec.next_msg())? {
                return Ok(Some(msg));
            }
            match self.rx.try_recv() {
                Ok(bytes) => self.dec.feed(&bytes),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(io::ErrorKind::UnexpectedEof.into());
                }
            }
        }
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            let _ = self.tx.send(LoopCmd::Close { id: self.id });
        }
    }
}

fn wire_to_io(r: Result<Option<Message>, WireError>) -> io::Result<Option<Message>> {
    match r {
        Ok(m) => Ok(m),
        Err(WireError::Io(e)) => Err(e),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}
