//! Property-style tests of the wire protocol, driven by the
//! workspace's deterministic generators (`ic_dag::rng` /
//! `ic_dag::testgen` seed-loop style): random frames must round-trip
//! exactly, and arbitrary hostile bytes must come back as typed
//! [`WireError`]s — never a panic, never an unbounded allocation.

// The deprecated stream shims stay deliberately exercised here: these
// round trips pin their byte-compatibility with the buffer-based
// `Frame::encode_into`/`Decoder` path that replaced them.
#![allow(deprecated)]

use ic_dag::rng::XorShift64;
use ic_dag::testgen::random_i64s;
use ic_net::{read_msg, write_msg, Message, WireError, MAX_FRAME};

/// A random protocol message, all variants reachable, with adversarial
/// strings (quotes, backslashes, control bytes, unicode).
fn random_message(rng: &mut XorShift64) -> Message {
    fn random_string(rng: &mut XorShift64) -> String {
        let alphabet = ['a', '"', '\\', '\n', '\t', '✓', '𝛿', ' ', '{', '\u{1}'];
        (0..rng.gen_range(12))
            .map(|_| alphabet[rng.gen_range(alphabet.len())])
            .collect()
    }
    fn random_resume(rng: &mut XorShift64) -> Option<String> {
        rng.gen_bool(0.5).then(|| random_string(rng))
    }
    match rng.gen_range(12) {
        0 => Message::Hello {
            id: random_string(rng),
            // Positive, finite, with both integral and fractional cases.
            speed: (1 + rng.gen_range(400)) as f64 / 4.0,
            proto: 1 + rng.gen_range(2) as u32,
            resume: random_resume(rng),
        },
        1 => Message::Request {
            max: 1 + rng.next_u64() % 16,
        },
        2 => Message::Done {
            task: rng.next_u64() >> 16,
            ok: rng.gen_bool(0.5),
        },
        3 => Message::Heartbeat {
            task: rng.next_u64() >> 16,
        },
        4 => Message::Bye,
        5 => Message::Welcome {
            worker: rng.next_u64() >> 32,
            lease_ms: rng.next_u64() >> 32,
            proto: 1 + rng.gen_range(2) as u32,
            resume: random_resume(rng),
            tasks: (0..rng.gen_range(5))
                .map(|_| rng.next_u64() >> 16)
                .collect(),
        },
        6 => Message::Assign {
            tasks: (0..1 + rng.gen_range(6))
                .map(|_| rng.next_u64() >> 16)
                .collect(),
        },
        7 => Message::Wait {
            ms: rng.next_u64() >> 40,
        },
        8 => Message::Drain,
        9 => Message::Ack {
            task: rng.next_u64() >> 16,
            accepted: rng.gen_bool(0.5),
        },
        10 => Message::Revoke {
            task: rng.next_u64() >> 16,
        },
        _ => Message::Error {
            // An empty code must encode like a v1 error frame and
            // round-trip; non-empty codes exercise the v2 field.
            code: if rng.gen_bool(0.5) {
                String::new()
            } else {
                random_string(rng)
            },
            msg: random_string(rng),
        },
    }
}

#[test]
fn random_messages_round_trip_through_frames() {
    let mut rng = XorShift64::new(0xF8A3E);
    for case in 0..500 {
        let msg = random_message(&mut rng);
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let back = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, msg, "case {case}");
    }
}

#[test]
fn random_frame_streams_round_trip_in_order() {
    let mut rng = XorShift64::new(0xBEEF);
    for case in 0..50 {
        let msgs: Vec<Message> = (0..1 + rng.gen_range(20))
            .map(|_| random_message(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(&read_msg(&mut r).unwrap(), m, "case {case} frame {i}");
        }
        assert!(read_msg(&mut r).unwrap_err().is_clean_eof(), "case {case}");
    }
}

#[test]
fn random_garbage_never_panics_the_reader() {
    for seed in 0..200u64 {
        let bytes: Vec<u8> = random_i64s(seed, 1 + (seed as usize % 40), 0, 256)
            .into_iter()
            .map(|b| b as u8)
            .collect();
        // As a framed payload: must be a typed error or (rarely) a
        // valid message, never a panic.
        let mut framed = Vec::new();
        framed.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        framed.extend_from_slice(&bytes);
        let _ = read_msg(&mut &framed[..]);
        // As a raw stream (garbage length prefix included): same deal.
        let _ = read_msg(&mut &bytes[..]);
    }
}

#[test]
fn random_truncations_of_valid_frames_error_cleanly() {
    let mut rng = XorShift64::new(0xCAFE);
    for case in 0..200 {
        let msg = random_message(&mut rng);
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let cut = rng.gen_range(buf.len()); // strictly shorter
        buf.truncate(cut);
        match read_msg(&mut &buf[..]) {
            Err(WireError::Io(e)) => {
                assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "case {case} cut at {cut}"
                );
            }
            other => panic!("case {case} cut at {cut}: expected Io(UnexpectedEof), got {other:?}"),
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_for_any_length() {
    let mut rng = XorShift64::new(0xD00D);
    for _ in 0..100 {
        let len = MAX_FRAME + 1 + rng.gen_range(1 << 24);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(len as u32).to_be_bytes());
        buf.extend_from_slice(b"payload never read");
        assert!(matches!(
            read_msg(&mut &buf[..]),
            Err(WireError::Oversized(n)) if n == len
        ));
    }
}
