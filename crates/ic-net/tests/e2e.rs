//! End-to-end tests over real localhost TCP: a server and a population
//! of worker threads, including workers that die mid-lease and workers
//! that stall silently, must still complete the dag — and the trace the
//! server emits must replay clean under the ic-audit verifier
//! (reallocations tolerated, no IC0401/IC0402/IC0403).

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use ic_audit::{audit_trace, Severity};
use ic_dag::builder::from_arcs;
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_net::{
    read_msg, run_worker, write_msg, FaultPlan, Message, ServeReport, Server, ServerConfig,
    WorkerConfig,
};
use ic_sim::{MemorySink, Trace};

fn assert_audit_clean(trace: &Trace) {
    let errors: Vec<_> = audit_trace(trace)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
}

/// The acceptance-criteria run: a 66-node evolving out-mesh served to
/// six workers over localhost — two die mid-run, one stalls past its
/// lease — and the dag completes with an audit-clean trace.
#[test]
fn flaky_workers_complete_a_mesh_with_an_audit_clean_trace() {
    let mesh = out_mesh(11); // 66 nodes
    assert!(mesh.num_nodes() >= 60);
    let sched = out_mesh_schedule(&mesh); // the IC-optimal priority list
    let cfg = ServerConfig {
        lease_ms: 300,
        backoff_base_ms: 5,
        expect_workers: 6,
        wait_ms: 5,
        seed: 42,
    };
    let server = Server::bind("127.0.0.1:0", &mesh, &sched, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let plans = [
        ("steady-a", FaultPlan::None, 1.0),
        ("steady-b", FaultPlan::None, 1.5),
        ("steady-c", FaultPlan::None, 2.0),
        ("dies-early", FaultPlan::DieAfter(2), 1.0),
        ("dies-randomly", FaultPlan::Random(0.3), 1.0),
        ("stalls", FaultPlan::StallAfter(1), 1.0),
    ];

    let mut sink = MemorySink::new();
    let (report, worker_reports) = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, (id, fault, speed))| {
                let cfg = WorkerConfig {
                    id: (*id).into(),
                    speed: *speed,
                    mean_ms: 2,
                    fault: *fault,
                    seed: 100 + i as u64,
                };
                s.spawn(move || run_worker(addr, &cfg))
            })
            .collect();
        let report = server.run(&mut sink).unwrap();
        let worker_reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        (report, worker_reports)
    });

    assert_eq!(report.completions, 66, "every task completes: {report:?}");
    assert!(
        report.failures >= 1,
        "the die-after-2 worker guarantees at least one reallocation: {report:?}"
    );
    assert_eq!(report.allocations, report.completions + report.failures);
    assert_eq!(report.workers_registered, 6);

    let trace = sink.into_trace().expect("header written");
    assert_eq!(trace.header.workers.len(), 6, "all six declared in header");
    assert_eq!(trace.header.workers[3].id, "dies-early");
    assert_eq!(trace.header.workers[2].speed, 2.0);
    assert_eq!(trace.completion_order().len(), 66);
    assert!(
        worker_reports.iter().filter(|r| r.died).count() >= 2,
        "the deterministic faulty workers died: {worker_reports:?}"
    );
    let steady_total: usize = worker_reports.iter().take(3).map(|r| r.completed).sum();
    assert!(steady_total > 0, "steady workers did work");
    assert_audit_clean(&trace);
}

/// Speak the protocol by hand: duplicate and foreign task reports must
/// be acknowledged-but-rejected without corrupting the run or the
/// trace, and heartbeats on a held lease must be accepted.
#[test]
fn duplicate_and_foreign_reports_are_rejected_without_trace_damage() {
    let dag = from_arcs(2, &[]).unwrap(); // two independent tasks
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig {
        lease_ms: 400,
        backoff_base_ms: 5,
        expect_workers: 1,
        wait_ms: 5,
        seed: 7,
    };
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            let send = |w: &mut BufWriter<TcpStream>, m: &Message| write_msg(w, m).unwrap();
            let recv = |r: &mut BufReader<TcpStream>| read_msg(r).unwrap();

            send(
                &mut w,
                &Message::Hello {
                    id: "manual".into(),
                    speed: 1.0,
                },
            );
            assert!(matches!(recv(&mut r), Message::Welcome { worker: 0, .. }));

            send(&mut w, &Message::Request);
            let Message::Assign { task: first } = recv(&mut r) else {
                panic!("expected an assignment");
            };
            // A report for a task we don't hold is rejected.
            send(
                &mut w,
                &Message::Done {
                    task: first + 1,
                    ok: true,
                },
            );
            assert!(matches!(
                recv(&mut r),
                Message::Ack {
                    accepted: false,
                    ..
                }
            ));
            // A heartbeat on the held lease is accepted.
            send(&mut w, &Message::Heartbeat { task: first });
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            // The real report lands...
            send(
                &mut w,
                &Message::Done {
                    task: first,
                    ok: true,
                },
            );
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            // ...and reporting it again is a duplicate.
            send(
                &mut w,
                &Message::Done {
                    task: first,
                    ok: true,
                },
            );
            assert!(matches!(
                recv(&mut r),
                Message::Ack {
                    accepted: false,
                    ..
                }
            ));

            send(&mut w, &Message::Request);
            let Message::Assign { task: second } = recv(&mut r) else {
                panic!("expected the second assignment");
            };
            send(
                &mut w,
                &Message::Done {
                    task: second,
                    ok: true,
                },
            );
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            send(&mut w, &Message::Request);
            assert!(matches!(recv(&mut r), Message::Drain));
            send(&mut w, &Message::Bye);
        });
        server.run(&mut sink).unwrap();
    });

    let trace = sink.into_trace().unwrap();
    // Exactly two allocations and two completions: the rejected reports
    // left no mark on the trace.
    assert_eq!(trace.events.len(), 4);
    assert_audit_clean(&trace);
}

/// A lease that expires is reallocated (with a `Failed` event), and the
/// original worker's late report is rejected — then the rerun completes
/// and the whole Failed→realloc trace audits clean.
#[test]
fn expired_lease_reallocates_and_late_report_is_rejected() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig {
        lease_ms: 60,
        backoff_base_ms: 1,
        expect_workers: 1,
        wait_ms: 5,
        seed: 7,
    };
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let report: ServeReport = std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);

            write_msg(
                &mut w,
                &Message::Hello {
                    id: "late".into(),
                    speed: 1.0,
                },
            )
            .unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            write_msg(&mut w, &Message::Request).unwrap();
            let Message::Assign { task } = read_msg(&mut r).unwrap() else {
                panic!("expected an assignment");
            };
            // Sit on the task well past the lease, without heartbeating.
            std::thread::sleep(Duration::from_millis(250));
            write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
            assert!(
                matches!(
                    read_msg(&mut r).unwrap(),
                    Message::Ack {
                        accepted: false,
                        ..
                    }
                ),
                "the lease expired; the late report must be rejected"
            );
            // Ask again: the task comes back to us, and this time we
            // report in time.
            loop {
                write_msg(&mut w, &Message::Request).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { task } => {
                        write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
                        assert!(matches!(
                            read_msg(&mut r).unwrap(),
                            Message::Ack { accepted: true, .. }
                        ));
                    }
                    Message::Wait { ms } => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
        });
        server.run(&mut sink).unwrap()
    });

    assert_eq!(report.completions, 1);
    assert_eq!(report.failures, 1, "exactly the lease expiry");
    let trace = sink.into_trace().unwrap();
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ic_sim::TraceEvent::Failed { .. }))
        .count();
    assert_eq!(fails, 1, "trace records the expiry");
    assert_audit_clean(&trace);
}

/// A worker that asks for more work while still holding a lease
/// forfeits the leased task: the server records a `Failed` event and
/// the task re-enters the pool to be reallocated, rather than being
/// orphaned by the new lease overwriting the old (which would wedge the
/// run forever).
#[test]
fn request_while_leased_forfeits_the_old_task() {
    let dag = from_arcs(2, &[]).unwrap(); // two independent tasks
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig {
        // Leases never expire on their own here: only the forfeit path
        // can recover the abandoned task.
        lease_ms: 10_000,
        backoff_base_ms: 1,
        expect_workers: 1,
        wait_ms: 5,
        seed: 7,
    };
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let report: ServeReport = std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);

            write_msg(
                &mut w,
                &Message::Hello {
                    id: "greedy".into(),
                    speed: 1.0,
                },
            )
            .unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            write_msg(&mut w, &Message::Request).unwrap();
            let Message::Assign { task: first } = read_msg(&mut r).unwrap() else {
                panic!("expected an assignment");
            };
            // Ask again without completing: the held task is forfeited
            // and the *other* task is assigned (the forfeit is backing
            // off).
            write_msg(&mut w, &Message::Request).unwrap();
            let Message::Assign { task: second } = read_msg(&mut r).unwrap() else {
                panic!("expected a second assignment");
            };
            assert_ne!(
                second, first,
                "the forfeited task must not be re-leased yet"
            );
            write_msg(
                &mut w,
                &Message::Done {
                    task: second,
                    ok: true,
                },
            )
            .unwrap();
            assert!(matches!(
                read_msg(&mut r).unwrap(),
                Message::Ack { accepted: true, .. }
            ));
            // The forfeited task comes back after its backoff.
            loop {
                write_msg(&mut w, &Message::Request).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { task } => {
                        assert_eq!(task, first, "only the forfeited task remains");
                        write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
                        assert!(matches!(
                            read_msg(&mut r).unwrap(),
                            Message::Ack { accepted: true, .. }
                        ));
                    }
                    Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms)),
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
        });
        server.run(&mut sink).unwrap()
    });

    assert_eq!(report.completions, 2);
    assert_eq!(report.failures, 1, "exactly the forfeit");
    assert_eq!(report.allocations, 3);
    let trace = sink.into_trace().unwrap();
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ic_sim::TraceEvent::Failed { .. }))
        .count();
    assert_eq!(fails, 1, "trace records the forfeit");
    assert_audit_clean(&trace);
}

/// A connection that opens with anything but `hello` gets a protocol
/// error and is dropped; the server keeps serving real workers.
#[test]
fn non_hello_opening_is_rejected_with_a_protocol_error() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig {
        expect_workers: 1,
        wait_ms: 5,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            // Rude connection: demands work without registering.
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            write_msg(&mut w, &Message::Request).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Error { .. }));
            // A real worker still finishes the dag.
            let worker = WorkerConfig {
                id: "real".into(),
                ..WorkerConfig::default()
            };
            let report = run_worker(addr, &worker).unwrap();
            assert_eq!(report.completed, 1);
            assert!(!report.died);
        });
        server.run(&mut sink).unwrap();
    });
    assert_audit_clean(&sink.into_trace().unwrap());
}
