//! End-to-end tests over real localhost TCP: a server and a population
//! of worker threads, including workers that die mid-lease, workers
//! that stall silently, and workers whose connections are severed and
//! resumed, must still complete the dag — and the trace the server
//! emits must replay clean under the ic-audit verifier (reallocations
//! tolerated, no IC0401/IC0402/IC0403; resumes and speculative
//! re-leases tolerated, no IC0410-IC0412).

// The hand-scripted protocol conversations below deliberately speak
// through the deprecated stream shims: they are the compatibility
// surface, and these tests pin that the shims still produce
// byte-identical frames against the reactor. New code uses
// `Frame`/`Decoder` (see `wire.rs` and `worker.rs`).
#![allow(deprecated)]

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use ic_audit::{audit_trace, Severity};
use ic_dag::builder::from_arcs;
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_net::{
    read_msg, run_worker, write_msg, FaultPlan, Message, ServeReport, Server, ServerConfig,
    WorkerConfig, ERR_UNSUPPORTED, PROTO_V1, PROTO_V2,
};
use ic_sim::{MemorySink, Trace};

fn assert_audit_clean(trace: &Trace) {
    let errors: Vec<_> = audit_trace(trace)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "trace must replay clean: {errors:?}");
}

/// The acceptance-criteria run: a 66-node evolving out-mesh served to
/// six workers over localhost — two die mid-run, one stalls past its
/// lease — and the dag completes with an audit-clean trace.
#[test]
fn flaky_workers_complete_a_mesh_with_an_audit_clean_trace() {
    let mesh = out_mesh(11); // 66 nodes
    assert!(mesh.num_nodes() >= 60);
    let sched = out_mesh_schedule(&mesh); // the IC-optimal priority list
    let cfg = ServerConfig::builder()
        .lease_ms(300)
        .backoff_base_ms(5)
        .expect_workers(6)
        .wait_ms(5)
        .seed(42)
        .build();
    let server = Server::bind("127.0.0.1:0", &mesh, &sched, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let plans = [
        ("steady-a", FaultPlan::None, 1.0),
        ("steady-b", FaultPlan::None, 1.5),
        ("steady-c", FaultPlan::None, 2.0),
        ("dies-early", FaultPlan::DieAfter(2), 1.0),
        ("dies-randomly", FaultPlan::Random(0.3), 1.0),
        ("stalls", FaultPlan::StallAfter(1), 1.0),
    ];

    let mut sink = MemorySink::new();
    let (report, worker_reports) = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, (id, fault, speed))| {
                let cfg = WorkerConfig::builder()
                    .id(*id)
                    .speed(*speed)
                    .mean_ms(2)
                    .fault(*fault)
                    .seed(100 + i as u64)
                    .build();
                s.spawn(move || run_worker(addr, &cfg))
            })
            .collect();
        let report = server.run(&mut sink).unwrap();
        let worker_reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        (report, worker_reports)
    });

    assert_eq!(report.completions, 66, "every task completes: {report:?}");
    assert!(
        report.failures >= 1,
        "the die-after-2 worker guarantees at least one reallocation: {report:?}"
    );
    assert_eq!(report.allocations, report.completions + report.failures);
    assert_eq!(report.workers_registered, 6);

    let trace = sink.into_trace().expect("header written");
    assert_eq!(trace.header.workers.len(), 6, "all six declared in header");
    assert_eq!(trace.header.workers[3].id, "dies-early");
    assert_eq!(trace.header.workers[2].speed, 2.0);
    assert_eq!(trace.completion_order().len(), 66);
    assert!(
        worker_reports.iter().filter(|r| r.died).count() >= 2,
        "the deterministic faulty workers died: {worker_reports:?}"
    );
    let steady_total: usize = worker_reports.iter().take(3).map(|r| r.completed).sum();
    assert!(steady_total > 0, "steady workers did work");
    assert_audit_clean(&trace);
}

/// The tentpole acceptance run: a worker whose TCP connection is
/// severed mid-lease reconnects with its resume token and keeps its
/// lease — the run finishes with zero reallocations, the server counts
/// one resume, and the trace (with its `resume` event) replays clean.
#[test]
fn severed_connection_resumes_mid_lease_without_reallocation() {
    let mesh = out_mesh(4); // 10 nodes
    let n = mesh.num_nodes();
    let sched = out_mesh_schedule(&mesh);
    let cfg = ServerConfig::builder()
        // Generous lease: only a *resume* can explain survival, and a
        // failed resume would show up as an expiry/failure instead.
        .lease_ms(5_000)
        .backoff_base_ms(5)
        .expect_workers(1)
        .wait_ms(5)
        .seed(9)
        .build();
    let server = Server::bind("127.0.0.1:0", &mesh, &sched, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let (report, wreport) = std::thread::scope(|s| {
        let h = s.spawn(move || {
            let cfg = WorkerConfig::builder()
                .id("severed")
                .mean_ms(2)
                .fault(FaultPlan::SeverAfter(2))
                .seed(3)
                .build();
            run_worker(addr, &cfg).unwrap()
        });
        let report = server.run(&mut sink).unwrap();
        (report, h.join().unwrap())
    });

    assert_eq!(report.completions, n, "the dag completes: {report:?}");
    assert_eq!(report.failures, 0, "no spurious reallocations: {report:?}");
    assert_eq!(report.resumes, 1, "exactly the one reconnect: {report:?}");
    assert_eq!(wreport.resumes, 1, "the worker resumed once: {wreport:?}");
    assert!(!wreport.died);
    assert_eq!(wreport.completed, n);

    let trace = sink.into_trace().unwrap();
    let resumed = trace
        .events
        .iter()
        .filter(|e| matches!(e, ic_sim::TraceEvent::Resumed { .. }))
        .count();
    assert_eq!(resumed, 1, "trace records the resume");
    assert_audit_clean(&trace);
}

/// The drain-barrier steal, scripted by hand: with one task left leased
/// to a slow worker, an idle worker is given a speculative duplicate
/// lease after `steal_after`; its completion wins, the straggler's late
/// report is rejected *without a trace event*, and its next heartbeat
/// is answered with `revoke`.
#[test]
fn drain_barrier_steal_first_completion_wins_and_loser_is_revoked() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(10_000) // never expires: only the steal can duplicate
        .backoff_base_ms(5)
        .expect_workers(2)
        .wait_ms(5)
        .seed(11)
        .steal_after(30)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let report: ServeReport = std::thread::scope(|s| {
        s.spawn(|| {
            let open = |id: &str| {
                let stream = TcpStream::connect(addr).unwrap();
                let mut r = BufReader::new(stream.try_clone().unwrap());
                let mut w = BufWriter::new(stream);
                write_msg(&mut w, &Message::hello(id, 1.0)).unwrap();
                assert!(matches!(
                    read_msg(&mut r).unwrap(),
                    Message::Welcome {
                        proto: PROTO_V2,
                        ..
                    }
                ));
                (r, w)
            };
            // Register both before requesting: the server holds the
            // trace header (and so all assignments) for `expect = 2`.
            let (mut ar, mut aw) = open("straggler");
            let (mut br, mut bw) = open("thief");
            write_msg(&mut aw, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut ar).unwrap() else {
                panic!("straggler expected the only task");
            };
            assert_eq!(tasks, vec![0]);

            // The thief arrives at the drain barrier: the pool is empty
            // but the lease is outstanding. After `steal_after`, its
            // request is answered with a speculative duplicate.
            let stolen = loop {
                write_msg(&mut bw, &Message::request()).unwrap();
                match read_msg(&mut br).unwrap() {
                    Message::Assign { tasks } => break tasks[0],
                    Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.max(1))),
                    other => panic!("thief expected assign or wait, got {other:?}"),
                }
            };
            assert_eq!(stolen, 0, "the straggler's task is re-leased");

            // First completion wins...
            write_msg(
                &mut bw,
                &Message::Done {
                    task: stolen,
                    ok: true,
                },
            )
            .unwrap();
            assert!(matches!(
                read_msg(&mut br).unwrap(),
                Message::Ack { accepted: true, .. }
            ));
            // ...the straggler's duplicate report is rejected...
            write_msg(&mut aw, &Message::Done { task: 0, ok: true }).unwrap();
            assert!(matches!(
                read_msg(&mut ar).unwrap(),
                Message::Ack {
                    accepted: false,
                    ..
                }
            ));
            // ...and a heartbeat on the lost lease is answered with the
            // v2 `revoke` frame, not an ack.
            write_msg(&mut aw, &Message::Heartbeat { task: 0 }).unwrap();
            assert!(matches!(
                read_msg(&mut ar).unwrap(),
                Message::Revoke { task: 0 }
            ));

            for (r, w) in [(&mut ar, &mut aw), (&mut br, &mut bw)] {
                write_msg(w, &Message::request()).unwrap();
                assert!(matches!(read_msg(r).unwrap(), Message::Drain));
                write_msg(w, &Message::Bye).unwrap();
            }
        });
        server.run(&mut sink).unwrap()
    });

    assert_eq!(report.completions, 1);
    assert_eq!(report.failures, 0, "a steal is not a failure: {report:?}");
    assert_eq!(report.steals, 1, "{report:?}");
    assert_eq!(report.revokes, 1, "the straggler's lease was revoked");

    let trace = sink.into_trace().unwrap();
    let kind_counts = |want: &str| {
        trace
            .events
            .iter()
            .filter(|e| match e {
                ic_sim::TraceEvent::Speculated { .. } => want == "spec",
                ic_sim::TraceEvent::Revoked { .. } => want == "revoke",
                ic_sim::TraceEvent::Completed { .. } => want == "complete",
                _ => false,
            })
            .count()
    };
    assert_eq!(kind_counts("spec"), 1, "the steal is in the trace");
    assert_eq!(kind_counts("revoke"), 1, "so is the revocation");
    // The duplicate completion left no event: one allocation, the
    // thief's idle tick at the barrier, one speculation, one
    // completion, one revocation — nothing else.
    assert_eq!(kind_counts("complete"), 1);
    assert_eq!(trace.events.len(), 5, "{:?}", trace.events);
    assert_audit_clean(&trace);
}

/// Batched allocation over the real wire reproduces `ic_sched::batched`
/// exactly: a lone v2 worker requesting `max = 4` and completing each
/// batch before the next request sees precisely the offline
/// batch-schedule rounds.
#[test]
fn batched_allocation_over_tcp_matches_the_offline_batch_schedule() {
    let mesh = out_mesh(4); // 10 nodes
    let policy = ic_sched::heuristics::Policy::Fifo;
    let offline = ic_sched::batched::batches_with(&mesh, 4, &policy);
    let cfg = ServerConfig::builder()
        .lease_ms(5_000)
        .expect_workers(1)
        .wait_ms(5)
        .seed(2)
        .batch(4)
        .build();
    let server = Server::bind("127.0.0.1:0", &mesh, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let rounds: Vec<Vec<u64>> = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            write_msg(&mut w, &Message::hello("batcher", 1.0)).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            let mut rounds = Vec::new();
            loop {
                write_msg(&mut w, &Message::Request { max: 4 }).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { tasks } => {
                        for &t in &tasks {
                            write_msg(&mut w, &Message::Done { task: t, ok: true }).unwrap();
                            assert!(matches!(
                                read_msg(&mut r).unwrap(),
                                Message::Ack { accepted: true, .. }
                            ));
                        }
                        rounds.push(tasks);
                    }
                    Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.max(1))),
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
            rounds
        });
        server.run(&mut sink).unwrap();
        h.join().unwrap()
    });

    let want: Vec<Vec<u64>> = offline
        .batches()
        .iter()
        .map(|b| b.iter().map(|v| v.index() as u64).collect())
        .collect();
    assert_eq!(rounds, want, "online rounds replay the offline schedule");
    assert_audit_clean(&sink.into_trace().unwrap());
}

/// Speak the protocol by hand: duplicate and foreign task reports must
/// be acknowledged-but-rejected without corrupting the run or the
/// trace, and heartbeats on a held lease must be accepted.
#[test]
fn duplicate_and_foreign_reports_are_rejected_without_trace_damage() {
    let dag = from_arcs(2, &[]).unwrap(); // two independent tasks
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(400)
        .backoff_base_ms(5)
        .expect_workers(1)
        .wait_ms(5)
        .seed(7)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            let send = |w: &mut BufWriter<TcpStream>, m: &Message| write_msg(w, m).unwrap();
            let recv = |r: &mut BufReader<TcpStream>| read_msg(r).unwrap();

            send(&mut w, &Message::hello("manual", 1.0));
            assert!(matches!(recv(&mut r), Message::Welcome { worker: 0, .. }));

            send(&mut w, &Message::request());
            let Message::Assign { tasks } = recv(&mut r) else {
                panic!("expected an assignment");
            };
            let first = tasks[0];
            // A report for a task we don't hold is rejected.
            send(
                &mut w,
                &Message::Done {
                    task: first + 1,
                    ok: true,
                },
            );
            assert!(matches!(
                recv(&mut r),
                Message::Ack {
                    accepted: false,
                    ..
                }
            ));
            // A heartbeat on the held lease is accepted.
            send(&mut w, &Message::Heartbeat { task: first });
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            // The real report lands...
            send(
                &mut w,
                &Message::Done {
                    task: first,
                    ok: true,
                },
            );
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            // ...and reporting it again is a duplicate.
            send(
                &mut w,
                &Message::Done {
                    task: first,
                    ok: true,
                },
            );
            assert!(matches!(
                recv(&mut r),
                Message::Ack {
                    accepted: false,
                    ..
                }
            ));

            send(&mut w, &Message::request());
            let Message::Assign { tasks } = recv(&mut r) else {
                panic!("expected the second assignment");
            };
            send(
                &mut w,
                &Message::Done {
                    task: tasks[0],
                    ok: true,
                },
            );
            assert!(matches!(recv(&mut r), Message::Ack { accepted: true, .. }));
            send(&mut w, &Message::request());
            assert!(matches!(recv(&mut r), Message::Drain));
            send(&mut w, &Message::Bye);
        });
        server.run(&mut sink).unwrap();
    });

    let trace = sink.into_trace().unwrap();
    // Exactly two allocations and two completions: the rejected reports
    // left no mark on the trace.
    assert_eq!(trace.events.len(), 4);
    assert_audit_clean(&trace);
}

/// A lease that expires is reallocated (with a `Failed` event), and the
/// original worker's late report is rejected — then the rerun completes
/// and the whole Failed→realloc trace audits clean.
#[test]
fn expired_lease_reallocates_and_late_report_is_rejected() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(60)
        .backoff_base_ms(1)
        .expect_workers(1)
        .wait_ms(5)
        .seed(7)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let report: ServeReport = std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);

            write_msg(&mut w, &Message::hello("late", 1.0)).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            write_msg(&mut w, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut r).unwrap() else {
                panic!("expected an assignment");
            };
            let task = tasks[0];
            // Sit on the task well past the lease, without heartbeating.
            std::thread::sleep(Duration::from_millis(250));
            write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
            assert!(
                matches!(
                    read_msg(&mut r).unwrap(),
                    Message::Ack {
                        accepted: false,
                        ..
                    }
                ),
                "the lease expired; the late report must be rejected"
            );
            // Ask again: the task comes back to us, and this time we
            // report in time.
            loop {
                write_msg(&mut w, &Message::request()).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { tasks } => {
                        let task = tasks[0];
                        write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
                        assert!(matches!(
                            read_msg(&mut r).unwrap(),
                            Message::Ack { accepted: true, .. }
                        ));
                    }
                    Message::Wait { ms } => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
        });
        server.run(&mut sink).unwrap()
    });

    assert_eq!(report.completions, 1);
    assert_eq!(report.failures, 1, "exactly the lease expiry");
    let trace = sink.into_trace().unwrap();
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ic_sim::TraceEvent::Failed { .. }))
        .count();
    assert_eq!(fails, 1, "trace records the expiry");
    assert_audit_clean(&trace);
}

/// A worker that asks for more work while still holding a lease
/// forfeits the leased task: the server records a `Failed` event and
/// the task re-enters the pool to be reallocated, rather than being
/// orphaned by the new lease overwriting the old (which would wedge the
/// run forever).
#[test]
fn request_while_leased_forfeits_the_old_task() {
    let dag = from_arcs(2, &[]).unwrap(); // two independent tasks
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        // Leases never expire on their own here: only the forfeit path
        // can recover the abandoned task.
        .lease_ms(10_000)
        .backoff_base_ms(1)
        .expect_workers(1)
        .wait_ms(5)
        .seed(7)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let report: ServeReport = std::thread::scope(|s| {
        s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);

            write_msg(&mut w, &Message::hello("greedy", 1.0)).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            write_msg(&mut w, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut r).unwrap() else {
                panic!("expected an assignment");
            };
            let first = tasks[0];
            // Ask again without completing: the held task is forfeited
            // and the *other* task is assigned (the forfeit is backing
            // off).
            write_msg(&mut w, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut r).unwrap() else {
                panic!("expected a second assignment");
            };
            let second = tasks[0];
            assert_ne!(
                second, first,
                "the forfeited task must not be re-leased yet"
            );
            write_msg(
                &mut w,
                &Message::Done {
                    task: second,
                    ok: true,
                },
            )
            .unwrap();
            assert!(matches!(
                read_msg(&mut r).unwrap(),
                Message::Ack { accepted: true, .. }
            ));
            // The forfeited task comes back after its backoff.
            loop {
                write_msg(&mut w, &Message::request()).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { tasks } => {
                        let task = tasks[0];
                        assert_eq!(task, first, "only the forfeited task remains");
                        write_msg(&mut w, &Message::Done { task, ok: true }).unwrap();
                        assert!(matches!(
                            read_msg(&mut r).unwrap(),
                            Message::Ack { accepted: true, .. }
                        ));
                    }
                    Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms)),
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
        });
        server.run(&mut sink).unwrap()
    });

    assert_eq!(report.completions, 2);
    assert_eq!(report.failures, 1, "exactly the forfeit");
    assert_eq!(report.allocations, 3);
    let trace = sink.into_trace().unwrap();
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ic_sim::TraceEvent::Failed { .. }))
        .count();
    assert_eq!(fails, 1, "trace records the forfeit");
    assert_audit_clean(&trace);
}

/// The reactor at fleet scale: 256 in-process workers — a mix of
/// steady, randomly-dying, and connection-severing clients — against
/// one single-threaded reactor, over real localhost TCP. The dag
/// completes, every worker registers, and the trace replays clean.
#[test]
fn scale_smoke_256_flaky_workers_complete_audit_clean() {
    const WORKERS: usize = 256;
    let mesh = out_mesh(32); // 528 nodes
    let sched = out_mesh_schedule(&mesh);
    let cfg = ServerConfig::builder()
        .lease_ms(2_000)
        .backoff_base_ms(5)
        .expect_workers(WORKERS)
        .wait_ms(5)
        .seed(77)
        .batch(2)
        .shards(64)
        .build();
    let server = Server::bind("127.0.0.1:0", &mesh, &sched, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    let (report, worker_reports) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|i| {
                let fault = match i % 16 {
                    7 => FaultPlan::Random(0.1),
                    11 => FaultPlan::SeverAfter(2),
                    _ => FaultPlan::None,
                };
                let cfg = WorkerConfig::builder()
                    .id(format!("fleet-{i}"))
                    .mean_ms(1)
                    .fault(fault)
                    .seed(1_000 + i as u64)
                    .build();
                s.spawn(move || run_worker(addr, &cfg))
            })
            .collect();
        let report = server.run(&mut sink).unwrap();
        let worker_reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        (report, worker_reports)
    });

    assert_eq!(report.completions, 528, "every task completes: {report:?}");
    assert_eq!(report.workers_registered, WORKERS);
    assert_eq!(report.allocations, report.completions + report.failures);
    let completed: usize = worker_reports.iter().map(|r| r.completed).sum();
    assert!(completed >= 528, "completions spread across the fleet");
    let trace = sink.into_trace().expect("header written");
    assert_eq!(trace.header.workers.len(), WORKERS);
    assert_audit_clean(&trace);
}

/// A server killed mid-run leaves a *replayable* trace: the
/// [`ic_sim::FileSink`] batches event lines but flushes whole lines on
/// every lease-affecting event, so at any instant the bytes on disk
/// parse as a trace whose only audit error can be the IC0405
/// truncation finding — never a torn line, never incoherent custody.
#[test]
fn mid_run_trace_snapshot_is_replayable_with_at_most_ic0405() {
    let dag = from_arcs(3, &[]).unwrap(); // three independent tasks
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(10_000)
        .backoff_base_ms(1)
        .expect_workers(1)
        .wait_ms(5)
        .seed(13)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let dir = std::env::temp_dir().join(format!("ic-net-killsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let mut sink = ic_sim::FileSink::create(&path).unwrap();

    let snapshot = std::thread::scope(|s| {
        let path = &path;
        let h = s.spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            write_msg(&mut w, &Message::hello("snapshooter", 1.0)).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Welcome { .. }));
            write_msg(&mut w, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut r).unwrap() else {
                panic!("expected the first assignment");
            };
            let first = tasks[0];
            // Forfeit the held task by asking again: the `Failed`
            // event is lease-affecting, so the sink flushes everything
            // up to and including it.
            write_msg(&mut w, &Message::request()).unwrap();
            let Message::Assign { tasks } = read_msg(&mut r).unwrap() else {
                panic!("expected the second assignment");
            };
            let second = tasks[0];
            // One more round-trip so the previous dispatch (and its
            // sink writes) has fully completed before we look.
            write_msg(&mut w, &Message::Heartbeat { task: second }).unwrap();
            assert!(matches!(
                read_msg(&mut r).unwrap(),
                Message::Ack { accepted: true, .. }
            ));
            // This is what a SIGKILL right now would leave on disk.
            let snapshot = std::fs::read_to_string(path).unwrap();

            // Then the run continues to completion as normal.
            write_msg(
                &mut w,
                &Message::Done {
                    task: second,
                    ok: true,
                },
            )
            .unwrap();
            assert!(matches!(
                read_msg(&mut r).unwrap(),
                Message::Ack { accepted: true, .. }
            ));
            loop {
                write_msg(&mut w, &Message::request()).unwrap();
                match read_msg(&mut r).unwrap() {
                    Message::Assign { tasks } => {
                        for t in tasks {
                            write_msg(&mut w, &Message::Done { task: t, ok: true }).unwrap();
                            assert!(matches!(
                                read_msg(&mut r).unwrap(),
                                Message::Ack { accepted: true, .. }
                            ));
                        }
                    }
                    Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.max(1))),
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            write_msg(&mut w, &Message::Bye).unwrap();
            let _ = first;
            snapshot
        });
        server.run(&mut sink).unwrap();
        h.join().unwrap()
    });
    sink.finish().unwrap();

    // The mid-run snapshot: parses, and replays with *at most* the
    // truncation finding — no custody or pool-coherence errors.
    let snap = Trace::from_jsonl(&snapshot).expect("snapshot is whole lines");
    assert!(
        snap.events
            .iter()
            .any(|e| matches!(e, ic_sim::TraceEvent::Failed { .. })),
        "the flush point (the forfeit) is in the snapshot: {:?}",
        snap.events
    );
    let errors: Vec<_> = audit_trace(&snap)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.iter().all(|d| d.code == "IC0405"),
        "only truncation may be reported: {errors:?}"
    );

    // The finished file replays fully clean.
    let full = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(full.completion_order().len(), 3);
    assert_audit_clean(&full);
    std::fs::remove_dir_all(&dir).ok();
}

/// A connection that opens with anything but `hello` gets a protocol
/// error and is dropped; the server keeps serving real workers.
#[test]
fn non_hello_opening_is_rejected_with_a_protocol_error() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder().expect_workers(1).wait_ms(5).build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            // Rude connection: demands work without registering.
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            write_msg(&mut w, &Message::request()).unwrap();
            assert!(matches!(read_msg(&mut r).unwrap(), Message::Error { .. }));
            // A real worker still finishes the dag.
            let worker = WorkerConfig::builder().id("real").build();
            let report = run_worker(addr, &worker).unwrap();
            assert_eq!(report.completed, 1);
            assert!(!report.died);
        });
        server.run(&mut sink).unwrap();
    });
    assert_audit_clean(&sink.into_trace().unwrap());
}

/// A v1 `hello` against a server that requires protocol 2 is refused
/// with the typed `error{unsupported}` frame — never a panic, never a
/// misparse — and the server goes on to serve a v2 worker normally.
#[test]
fn v1_hello_against_a_v2_only_server_gets_a_typed_error_frame() {
    let dag = from_arcs(1, &[]).unwrap();
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .expect_workers(1)
        .wait_ms(5)
        .min_proto(PROTO_V2)
        .build();
    let server = Server::bind("127.0.0.1:0", &dag, &policy, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut sink = MemorySink::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            // A v1 peer: its hello carries no proto field at all.
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            write_msg(
                &mut w,
                &Message::Hello {
                    id: "ancient".into(),
                    speed: 1.0,
                    proto: PROTO_V1,
                    resume: None,
                },
            )
            .unwrap();
            match read_msg(&mut r).unwrap() {
                Message::Error { code, msg } => {
                    assert_eq!(code, ERR_UNSUPPORTED, "typed code, not prose: {msg}");
                }
                other => panic!("expected the unsupported error frame, got {other:?}"),
            }
            // A current-protocol worker is still served.
            let worker = WorkerConfig::builder().id("modern").build();
            let report = run_worker(addr, &worker).unwrap();
            assert_eq!(report.completed, 1);
        });
        server.run(&mut sink).unwrap();
    });
    assert_audit_clean(&sink.into_trace().unwrap());
}
