//! `ic-lint`: a zero-dependency source lint for the panic-prone
//! idioms the workspace bans in protocol code.
//!
//! The networked crates (`ic-net`, `ic-sim`) must never bring a
//! coordinator down on a malformed frame or a lost invariant — every
//! error has to travel as a typed message or a `Result`. Clippy has
//! no offline-friendly lint for "no unwraps in these two crates
//! only", so this binary greps for the banned forms itself:
//!
//! * `.unwrap()` — panics on `None`/`Err`;
//! * `.expect("` — ditto with a message (the string-literal form;
//!   parser methods named `expect` take non-string arguments and are
//!   fine);
//! * `panic!(` — explicit panic;
//! * ` as u8` / `u16` / `u32` / `i8` / `i16` / `i32` — silently
//!   truncating numeric narrowing (use `try_from`);
//! * `thread::spawn` — the reactor owns every connection on one
//!   thread; spawning in protocol code reintroduces the
//!   thread-per-connection model the event loop replaced.
//!
//! Test code is exempt: `#[cfg(test)]` modules are skipped by brace
//! tracking, and a line carrying a `lint:allow` marker is skipped
//! with the reason shown in `--verbose` mode. Exits non-zero if any
//! violation is found.
//!
//! ```text
//! ic-lint [--verbose] [DIR ...]   # default: crates/ic-net/src crates/ic-sim/src
//! ```

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The banned forms, as (needle, rule name, advice).
const RULES: &[(&str, &str, &str)] = &[
    (".unwrap()", "no-unwrap", "return a typed error instead"),
    (".expect(\"", "no-expect", "return a typed error instead"),
    ("panic!(", "no-panic", "protocol code must not panic"),
    (" as u8", "no-narrowing", "use u8::try_from"),
    (" as u16", "no-narrowing", "use u16::try_from"),
    (" as u32", "no-narrowing", "use u32::try_from"),
    (" as i8", "no-narrowing", "use i8::try_from"),
    (" as i16", "no-narrowing", "use i16::try_from"),
    (" as i32", "no-narrowing", "use i32::try_from"),
    (
        "thread::spawn",
        "no-spawn",
        "the reactor owns all connections on one thread",
    ),
];

/// One finding.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    advice: &'static str,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.file.display(),
            self.line,
            self.rule,
            self.text.trim(),
            self.advice
        )
    }
}

/// Strip line comments and the contents of string literals so the
/// needles only match real code. A cheap single-pass scanner: it
/// understands `//` comments, `"…"` strings with escapes, and
/// lifetime/char tokens well enough for this codebase's style.
/// String *contents* are blanked but the delimiting quotes stay, so
/// `.expect("` still matches on the quote following the paren.
fn strip_noise(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            _ => out.push(c),
        }
    }
    out
}

/// A `lint:allow`-suppressed line, reported under `--verbose`.
struct Allowed {
    file: PathBuf,
    line: usize,
    reason: String,
}

/// Lint one file, appending findings. Skips `#[cfg(test)]` blocks by
/// tracking the brace depth of the item that follows the attribute.
fn lint_file(path: &Path, src: &str, findings: &mut Vec<Finding>, allowed: &mut Vec<Allowed>) {
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_noise(raw);
        let trimmed = line.trim();
        if skip_depth.is_none() {
            if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
                pending_test_attr = true;
            } else if pending_test_attr && trimmed.contains('{') {
                skip_depth = Some(depth);
                pending_test_attr = false;
            } else if pending_test_attr && !trimmed.starts_with("#[") && !trimmed.is_empty() {
                // Attribute applied to a braceless item (e.g. a
                // `use`): nothing to skip.
                pending_test_attr = false;
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = skip_depth {
            if depth <= d {
                skip_depth = None;
            }
            continue;
        }
        if let Some(at) = raw.find("lint:allow") {
            let reason = raw[at + "lint:allow".len()..]
                .trim_start_matches([':', ' ', '-'])
                .trim();
            allowed.push(Allowed {
                file: path.to_path_buf(),
                line: idx + 1,
                reason: if reason.is_empty() {
                    "(no reason given)".to_string()
                } else {
                    reason.to_string()
                },
            });
            continue;
        }
        let doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
        if doc {
            continue;
        }
        for &(needle, rule, advice) in RULES {
            if line.contains(needle) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    rule,
                    advice,
                    text: raw.to_string(),
                });
            }
        }
    }
}

/// Collect `.rs` files under `dir`, skipping `tests/` and `benches/`
/// directories (integration tests may unwrap freely).
fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "tests" && name != "benches" {
                collect(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose");
    args.retain(|a| a != "--verbose");
    let dirs: Vec<PathBuf> = if args.is_empty() {
        vec![
            PathBuf::from("crates/ic-net/src"),
            PathBuf::from("crates/ic-sim/src"),
        ]
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for d in &dirs {
        if !d.exists() {
            eprintln!("ic-lint: no such directory: {}", d.display());
            return ExitCode::from(2);
        }
        collect(d, &mut files);
    }

    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for f in &files {
        match fs::read_to_string(f) {
            Ok(src) => lint_file(f, &src, &mut findings, &mut allowed),
            Err(e) => {
                eprintln!("ic-lint: {}: {e}", f.display());
                return ExitCode::from(2);
            }
        }
    }

    if verbose {
        for a in &allowed {
            println!(
                "ic-lint: allowed {}:{}: {}",
                a.file.display(),
                a.line,
                a.reason
            );
        }
    }

    if findings.is_empty() {
        println!(
            "ic-lint: clean ({} files in {})",
            files.len(),
            dirs.iter()
                .map(|d| d.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("ic-lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
