//! The safety invariants checked at every explored state.
//!
//! Each check compares the machine's bookkeeping against a
//! *definition-level oracle*: eligibility is recomputed from scratch
//! out of the executed set via
//! [`ic_sched::eligibility::eligible_from_executed`], never read back
//! from the pool the machine maintains incrementally. A violation is
//! reported as an [`ic_audit::diag::Diagnostic`] with a stable
//! `IC05xx` code:
//!
//! | code   | invariant |
//! |--------|-----------|
//! | IC0501 | every leased task is ELIGIBLE given the executed set |
//! | IC0502 | no task's `Completed` trace event fires twice |
//! | IC0503 | per task: at most one primary lease and at most one speculative lease, on distinct workers |
//! | IC0504 | a live resumed worker's slot agrees with the machine (connected, same epoch) |
//! | IC0505 | the recorded pool size equals pool + deferred |
//! | IC0506 | pool ⊎ deferred ⊎ leased partitions the ELIGIBLE set |
//! | IC0507 | a `Drain` reply implies every task executed |

use std::collections::BTreeSet;

use ic_audit::diag::{
    Diagnostic, MODEL_DUPLICATE_COMPLETION, MODEL_ELIGIBLE_PARTITION_VIOLATION,
    MODEL_EPOCH_REGRESSION, MODEL_LEASE_MULTIPLICITY, MODEL_NON_ELIGIBLE_ALLOCATION,
    MODEL_PREMATURE_DRAIN, MODEL_RECORDED_POOL_MISMATCH,
};
use ic_dag::Dag;
use ic_net::{Effect, Message};
use ic_sched::eligibility::eligible_from_executed;

use crate::scenario::{Fleet, Phase};

/// Scan the state reached after a transition and return the first
/// violated invariant, if any.
pub fn violation(dag: &Dag, fleet: &Fleet<'_, '_>) -> Option<Diagnostic> {
    let m = &fleet.machine;
    let executed: Vec<bool> = dag.node_ids().map(|v| m.exec().is_executed(v)).collect();
    let eligible: BTreeSet<u64> = eligible_from_executed(dag, &executed)
        .into_iter()
        .map(|v| v.index() as u64)
        .collect();
    let leases = m.lease_views();

    // IC0501: every allocation was ELIGIBLE under the oracle.
    for l in &leases {
        let t = l.task.index() as u64;
        if !eligible.contains(&t) {
            return Some(Diagnostic::error(
                MODEL_NON_ELIGIBLE_ALLOCATION,
                format!(
                    "task t{t} is leased to worker {} but is not ELIGIBLE \
                     given the executed set ({} executed)",
                    l.worker,
                    m.exec().num_executed()
                ),
            ));
        }
    }

    // IC0502: no task completes twice (counted off the trace stream).
    for (t, &n) in fleet.completions.iter().enumerate() {
        if n > 1 {
            return Some(Diagnostic::error(
                MODEL_DUPLICATE_COMPLETION,
                format!("task t{t} emitted {n} Completed trace events"),
            ));
        }
    }

    // IC0503: per-task lease multiplicity — at most one primary, at
    // most one speculative, never the same worker twice.
    for l in &leases {
        let t = l.task;
        let primaries = leases
            .iter()
            .filter(|o| o.task == t && !o.speculative)
            .count();
        let specs = leases
            .iter()
            .filter(|o| o.task == t && o.speculative)
            .count();
        let same_worker = leases
            .iter()
            .filter(|o| o.task == t && o.worker == l.worker)
            .count();
        if primaries > 1 || specs > 1 || same_worker > 1 {
            return Some(Diagnostic::error(
                MODEL_LEASE_MULTIPLICITY,
                format!(
                    "task t{} holds {primaries} primary and {specs} speculative \
                     leases (worker {} appears {same_worker} times)",
                    t.index(),
                    l.worker
                ),
            ));
        }
    }

    // IC0504: a worker that believes it is live must agree with the
    // machine — slot connected, epochs equal. A stale `Gone` honored
    // against a resumed slot breaks exactly this.
    for (i, w) in fleet.workers.iter().enumerate() {
        if w.phase != Phase::Live {
            continue;
        }
        if !m.worker_connected(w.slot) {
            return Some(Diagnostic::error(
                MODEL_EPOCH_REGRESSION,
                format!(
                    "worker w{i} (slot {}) is live at epoch {} but the machine \
                     marked the slot disconnected — a stale Gone was honored",
                    w.slot, w.epoch
                ),
            ));
        }
        if m.worker_epoch(w.slot) != Some(w.epoch) {
            return Some(Diagnostic::error(
                MODEL_EPOCH_REGRESSION,
                format!(
                    "worker w{i} (slot {}) is live at epoch {} but the machine \
                     records epoch {:?}",
                    w.slot,
                    w.epoch,
                    m.worker_epoch(w.slot)
                ),
            ));
        }
    }

    // IC0505: the recorded pool (what traces report) must equal
    // pool + deferred.
    let pool: BTreeSet<u64> = m.exec().pool().iter().map(|v| v.index() as u64).collect();
    let deferred: BTreeSet<u64> = m
        .deferred_tasks()
        .into_iter()
        .map(|v| v.index() as u64)
        .collect();
    if m.recorded_pool() != pool.len() + deferred.len() {
        return Some(Diagnostic::error(
            MODEL_RECORDED_POOL_MISMATCH,
            format!(
                "recorded pool is {} but pool has {} and deferred {}",
                m.recorded_pool(),
                pool.len(),
                deferred.len()
            ),
        ));
    }

    // IC0506: pool, deferred, and leased tasks partition ELIGIBLE —
    // pairwise disjoint and jointly exhaustive. A task that silently
    // leaves all three (the PR 3 lease-overwrite bug) is caught here.
    let leased: BTreeSet<u64> = leases.iter().map(|l| l.task.index() as u64).collect();
    if !pool.is_disjoint(&deferred) || !pool.is_disjoint(&leased) || !deferred.is_disjoint(&leased)
    {
        return Some(Diagnostic::error(
            MODEL_ELIGIBLE_PARTITION_VIOLATION,
            format!("pool {pool:?}, deferred {deferred:?}, leased {leased:?} overlap"),
        ));
    }
    let mut union = pool.clone();
    union.extend(&deferred);
    union.extend(&leased);
    if union != eligible {
        let lost: Vec<u64> = eligible.difference(&union).copied().collect();
        let extra: Vec<u64> = union.difference(&eligible).copied().collect();
        return Some(Diagnostic::error(
            MODEL_ELIGIBLE_PARTITION_VIOLATION,
            format!(
                "pool ∪ deferred ∪ leased ≠ ELIGIBLE: lost {lost:?}, extra {extra:?} \
                 (pool {pool:?}, deferred {deferred:?}, leased {leased:?})"
            ),
        ));
    }

    None
}

/// Check the effects of the transition that just ran: a `Drain` reply
/// is only legal once every task has executed (IC0507).
pub fn drain_violation(fleet: &Fleet<'_, '_>, fx: &[Effect]) -> Option<Diagnostic> {
    for e in fx {
        if let Effect::Reply(Message::Drain) = e {
            if !fleet.machine.is_complete() {
                return Some(Diagnostic::error(
                    MODEL_PREMATURE_DRAIN,
                    format!(
                        "Drain replied with only {} tasks executed",
                        fleet.machine.exec().num_executed()
                    ),
                ));
            }
        }
    }
    None
}
