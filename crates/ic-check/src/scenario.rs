//! Scripted fleets: the worker-side model the checker interleaves.
//!
//! A [`FleetSpec`] describes a small cast of workers (2–4) with
//! per-worker budgets for the adversarial moves — reported failures,
//! severed connections, forced lease expiries. The checker explores
//! every interleaving of the fleet's *enabled actions* against one
//! [`LeaseMachine`]; a [`Fleet`] is one point of that product state:
//! the machine plus each worker's believed view of the world (its
//! slot, epoch, resume token, held tasks, and any `Gone` still in
//! flight).
//!
//! # The frozen clock
//!
//! Every event is stamped `now_us = 0` and the server config uses
//! `lease_ms = 0`, `backoff_base_ms = 0`, `steal_after_ms = 0`: time
//! never advances, so timing can *gate* nothing — every backoff is
//! elapsed, every lease deadline is due, the steal timer has always
//! fired. Lease expiry, normally the passage of time, becomes the
//! explicit adversarial [`Action::Expire`], so the checker explores
//! expiry at every point it could possibly happen rather than at the
//! points a particular wall clock reached. This is a *superset* of
//! real schedules: anything the TCP driver can produce, the checker
//! visits.
//!
//! # Delayed `Gone`
//!
//! On TCP, a died connection is noticed by the server only when its
//! handler thread observes EOF — after the worker may already have
//! reconnected elsewhere. [`Action::Sever`] therefore only updates
//! the *worker* model (the connection is gone; the machine does not
//! know), and a separate [`Action::DeliverGone`] later feeds the
//! machine its [`ic_net::Event::Sever`] — possibly after a resume,
//! which is exactly the stale-epoch race the epoch guard exists for.

use std::fmt;
use std::hash::{Hash, Hasher};

use ic_dag::Dag;
use ic_net::machine::SeededBugs;
use ic_net::{Effect, Event, LeaseMachine, Message, ServerConfig, PROTO_V2};
use ic_sched::policy::AllocationPolicy;

/// One scripted worker of the fleet.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Protocol version the worker speaks in its `hello`.
    pub proto: u32,
    /// The `max` it asks for per request (batched assignment for v2).
    pub max_batch: u64,
    /// How many failure reports (`done{ok: false}`) it may issue.
    pub fail_budget: u32,
    /// How many times its connection may sever (each sever allows one
    /// resume attempt for a v2 worker holding a token).
    pub sever_budget: u32,
    /// How many of its leases the adversary may force-expire.
    pub expire_budget: u32,
    /// Whether heartbeat actions are explored (at the frozen clock a
    /// heartbeat only matters for learning about a revocation).
    pub heartbeats: bool,
    /// Whether the worker may request work while still holding tasks
    /// (the protocol's forfeit rule). Off by default: a well-behaved
    /// client only polls when idle, and allowing greedy requests
    /// everywhere multiplies the state space without adding coverage
    /// for the well-behaved invariants. The orphan-on-request seeded
    /// bug turns this on.
    pub request_while_holding: bool,
}

impl WorkerSpec {
    /// A well-behaved v2 worker: no failures, no severs, no expiries.
    pub fn v2() -> Self {
        WorkerSpec {
            proto: PROTO_V2,
            max_batch: 1,
            fail_budget: 0,
            sever_budget: 0,
            expire_budget: 0,
            heartbeats: false,
            request_while_holding: false,
        }
    }

    /// A well-behaved v1 worker.
    pub fn v1() -> Self {
        WorkerSpec {
            proto: 1,
            max_batch: 1,
            fail_budget: 0,
            sever_budget: 0,
            expire_budget: 0,
            heartbeats: false,
            request_while_holding: false,
        }
    }

    /// Set the failure budget (builder style).
    pub fn fails(mut self, n: u32) -> Self {
        self.fail_budget = n;
        self
    }

    /// Set the sever budget (builder style).
    pub fn severs(mut self, n: u32) -> Self {
        self.sever_budget = n;
        self
    }

    /// Set the forced-expiry budget (builder style).
    pub fn expiries(mut self, n: u32) -> Self {
        self.expire_budget = n;
        self
    }

    /// Set the per-request batch ceiling (builder style).
    pub fn batch(mut self, max: u64) -> Self {
        self.max_batch = max;
        self
    }

    /// Explore heartbeat actions (builder style).
    pub fn beats(mut self) -> Self {
        self.heartbeats = true;
        self
    }

    /// Allow requesting while holding tasks (builder style).
    pub fn greedy(mut self) -> Self {
        self.request_while_holding = true;
        self
    }
}

/// The whole scripted cast plus the server knobs that shape the
/// protocol surface under test.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The workers, in hello order (worker `i` always registers after
    /// workers `0..i` — a symmetry reduction that pins slot `i` to
    /// spec `i` without losing any reachable machine state).
    pub workers: Vec<WorkerSpec>,
    /// Enable the drain-barrier speculative steal
    /// (`steal_after_ms = 0`: at the frozen clock every outstanding
    /// lease is old enough).
    pub steal: bool,
    /// Server-side batch ceiling per `assign`.
    pub batch: usize,
    /// Server's minimum accepted protocol version.
    pub min_proto: u32,
}

impl FleetSpec {
    /// `n` well-behaved v2 workers, no stealing, batch 1.
    pub fn of(n: usize) -> Self {
        FleetSpec {
            workers: (0..n).map(|_| WorkerSpec::v2()).collect(),
            steal: false,
            batch: 1,
            min_proto: 1,
        }
    }

    /// Enable the speculative steal path (builder style).
    pub fn with_steal(mut self) -> Self {
        self.steal = true;
        self
    }

    /// Set the server batch ceiling (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// The frozen-clock server configuration this fleet runs against.
    pub fn server_config(&self) -> ServerConfig {
        let mut b = ServerConfig::builder()
            .lease_ms(0)
            .backoff_base_ms(0)
            .wait_ms(0)
            .seed(0x1C5EED)
            .batch(self.batch.max(1))
            .min_proto(self.min_proto);
        if self.steal {
            b = b.steal_after(0);
        }
        b.build()
    }
}

/// One transition of the interleaved system. Worker indices are fleet
/// (spec) indices, tasks are dag node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Worker `i` registers fresh.
    Hello(usize),
    /// Worker `i` reconnects with its resume token.
    Resume(usize),
    /// Worker `i` requests work.
    Request(usize),
    /// Worker `i` reports task `t` completed.
    DoneOk(usize, u64),
    /// Worker `i` reports task `t` failed.
    DoneFail(usize, u64),
    /// Worker `i` heartbeats task `t`.
    Beat(usize, u64),
    /// Worker `i`'s connection drops (the machine does not know yet).
    Sever(usize),
    /// The machine finally observes worker `i`'s dead connection.
    DeliverGone(usize),
    /// The adversary expires worker `i`'s lease on task `t`.
    Expire(usize, u64),
}

impl Action {
    /// The fleet index the action belongs to.
    pub fn worker(&self) -> usize {
        match *self {
            Action::Hello(i)
            | Action::Resume(i)
            | Action::Request(i)
            | Action::DoneOk(i, _)
            | Action::DoneFail(i, _)
            | Action::Beat(i, _)
            | Action::Sever(i)
            | Action::DeliverGone(i)
            | Action::Expire(i, _) => i,
        }
    }

    /// The task the action touches, if any.
    pub fn task(&self) -> Option<u64> {
        match *self {
            Action::DoneOk(_, t)
            | Action::DoneFail(_, t)
            | Action::Beat(_, t)
            | Action::Expire(_, t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Hello(i) => write!(f, "hello(w{i})"),
            Action::Resume(i) => write!(f, "resume(w{i})"),
            Action::Request(i) => write!(f, "request(w{i})"),
            Action::DoneOk(i, t) => write!(f, "done-ok(w{i}, t{t})"),
            Action::DoneFail(i, t) => write!(f, "done-fail(w{i}, t{t})"),
            Action::Beat(i, t) => write!(f, "beat(w{i}, t{t})"),
            Action::Sever(i) => write!(f, "sever(w{i})"),
            Action::DeliverGone(i) => write!(f, "deliver-gone(w{i})"),
            Action::Expire(i, t) => write!(f, "expire(w{i}, t{t})"),
        }
    }
}

/// What the worker is currently doing, from its own point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Has not said hello yet.
    Fresh,
    /// Registered with a live connection.
    Live,
    /// Connection dropped; may resume (v2 with a token).
    Severed,
    /// Received `Drain`; the run is over for this worker.
    Drained,
    /// Registration was refused with a typed error.
    Refused,
}

/// The checker's model of one worker: what the *worker process*
/// believes, which may legitimately lag the machine (that divergence
/// is the interesting part).
#[derive(Debug, Clone)]
pub struct WorkerModel {
    /// Where the worker is in its lifecycle.
    pub phase: Phase,
    /// The slot the machine assigned in `welcome`.
    pub slot: usize,
    /// The registration epoch of the current connection.
    pub epoch: u64,
    /// The current resume token, if v2.
    pub token: Option<String>,
    /// Tasks the worker believes it holds (assigned, not yet resolved).
    pub held: Vec<u64>,
    /// Epochs of dead connections whose `Gone` has not yet reached the
    /// machine (FIFO).
    pub pending_gone: Vec<u64>,
    /// Remaining failure reports.
    pub fails_left: u32,
    /// Remaining severs.
    pub severs_left: u32,
    /// Remaining forced expiries.
    pub expires_left: u32,
    /// Whether this worker has ever successfully resumed.
    pub resumed: bool,
}

impl WorkerModel {
    fn new(spec: &WorkerSpec) -> Self {
        WorkerModel {
            phase: Phase::Fresh,
            slot: usize::MAX,
            epoch: 0,
            token: None,
            held: Vec::new(),
            pending_gone: Vec::new(),
            fails_left: spec.fail_budget,
            severs_left: spec.sever_budget,
            expires_left: spec.expire_budget,
            resumed: false,
        }
    }

    /// Hash the semantic state (token *presence* only: the token
    /// string is an opaque equal-capability secret, so states that
    /// differ only in its bytes are interchangeable).
    fn fingerprint_into(&self, h: &mut impl Hasher) {
        (self.phase, self.slot, self.epoch, self.token.is_some()).hash(h);
        let mut held = self.held.clone();
        held.sort_unstable();
        held.hash(h);
        self.pending_gone.hash(h);
        (
            self.fails_left,
            self.severs_left,
            self.expires_left,
            self.resumed,
        )
            .hash(h);
    }
}

/// Which kind of request a reply answers (shapes how an `Ack` updates
/// the worker's held set).
enum ReplyCtx {
    Done(u64),
    Beat(u64),
    Other,
}

/// One state of the interleaved system: the machine plus every
/// worker's model, plus the per-path completion counts the
/// duplicate-completion invariant watches.
#[derive(Clone)]
pub struct Fleet<'a, 'd> {
    /// The machine under test.
    pub machine: LeaseMachine<'a, 'd>,
    /// One model per fleet worker.
    pub workers: Vec<WorkerModel>,
    /// `Completed` trace events seen per task along this path.
    pub completions: Vec<u32>,
}

impl<'a, 'd> Fleet<'a, 'd> {
    /// Boot a fleet against a fresh machine (the header is written
    /// immediately: the checker runs without a registration barrier).
    pub fn new(
        dag: &'d Dag,
        policy: &'a dyn AllocationPolicy,
        spec: &FleetSpec,
        bugs: SeededBugs,
    ) -> Fleet<'a, 'd> {
        let mut machine = LeaseMachine::new(dag, policy, spec.server_config());
        machine.seed_bugs(bugs);
        let _ = machine.boot(0);
        Fleet {
            machine,
            workers: spec.workers.iter().map(WorkerModel::new).collect(),
            completions: vec![0; dag.num_nodes()],
        }
    }

    /// Every action enabled in this state, in a fixed deterministic
    /// order. Hellos are serialized (worker `i` registers only after
    /// `0..i` left `Fresh`) — a symmetry reduction over the
    /// interchangeable slot assignment.
    pub fn enabled(&self, spec: &FleetSpec) -> Vec<Action> {
        let mut acts = Vec::new();
        let mut fresh_seen = false;
        for (i, w) in self.workers.iter().enumerate() {
            let ws = &spec.workers[i];
            match w.phase {
                Phase::Fresh => {
                    if !fresh_seen {
                        acts.push(Action::Hello(i));
                    }
                    fresh_seen = true;
                }
                Phase::Live => {
                    if w.held.is_empty() || ws.request_while_holding {
                        acts.push(Action::Request(i));
                    }
                    for &t in &w.held {
                        acts.push(Action::DoneOk(i, t));
                        if w.fails_left > 0 {
                            acts.push(Action::DoneFail(i, t));
                        }
                        if ws.heartbeats {
                            acts.push(Action::Beat(i, t));
                        }
                    }
                    if w.severs_left > 0 {
                        acts.push(Action::Sever(i));
                    }
                }
                Phase::Severed => {
                    if w.token.is_some() {
                        acts.push(Action::Resume(i));
                    }
                }
                Phase::Drained | Phase::Refused => {}
            }
            if !w.pending_gone.is_empty() {
                acts.push(Action::DeliverGone(i));
            }
            if w.expires_left > 0 && w.slot != usize::MAX {
                for l in self.machine.lease_views() {
                    if l.worker == w.slot {
                        acts.push(Action::Expire(i, l.task.index() as u64));
                    }
                }
            }
        }
        acts
    }

    /// Apply one action: step the machine (or the model, for
    /// [`Action::Sever`]), absorb the effects into the worker model,
    /// and return them for the caller's invariant scan.
    pub fn apply(&mut self, spec: &FleetSpec, a: Action) -> Vec<Effect> {
        match a {
            Action::Hello(i) => {
                let ws = &spec.workers[i];
                let fx = self.machine.step(Event::Hello {
                    id: format!("w{i}"),
                    speed: 1.0,
                    proto: ws.proto,
                    resume: None,
                    now_us: 0,
                });
                self.absorb(i, ReplyCtx::Other, &fx);
                fx
            }
            Action::Resume(i) => {
                let ws = &spec.workers[i];
                let token = self.workers[i].token.clone().unwrap_or_default();
                let fx = self.machine.step(Event::Hello {
                    id: format!("w{i}"),
                    speed: 1.0,
                    proto: ws.proto,
                    resume: Some(token),
                    now_us: 0,
                });
                self.workers[i].resumed = true;
                self.absorb(i, ReplyCtx::Other, &fx);
                fx
            }
            Action::Request(i) => {
                let max = spec.workers[i].max_batch;
                let slot = self.workers[i].slot;
                let fx = self.machine.step(Event::Request {
                    worker: slot,
                    max,
                    now_us: 0,
                });
                // Requesting forfeits any leases still held (the
                // protocol's request-while-leased rule): the worker's
                // belief updates only via the replies, so clear its
                // held set to match what the machine just did.
                self.workers[i].held.clear();
                self.absorb(i, ReplyCtx::Other, &fx);
                fx
            }
            Action::DoneOk(i, t) => {
                let slot = self.workers[i].slot;
                let fx = self.machine.step(Event::Done {
                    worker: slot,
                    task: t,
                    ok: true,
                    now_us: 0,
                });
                self.absorb(i, ReplyCtx::Done(t), &fx);
                fx
            }
            Action::DoneFail(i, t) => {
                let slot = self.workers[i].slot;
                self.workers[i].fails_left -= 1;
                let fx = self.machine.step(Event::Done {
                    worker: slot,
                    task: t,
                    ok: false,
                    now_us: 0,
                });
                self.absorb(i, ReplyCtx::Done(t), &fx);
                fx
            }
            Action::Beat(i, t) => {
                let slot = self.workers[i].slot;
                let fx = self.machine.step(Event::Heartbeat {
                    worker: slot,
                    task: t,
                    now_us: 0,
                });
                self.absorb(i, ReplyCtx::Beat(t), &fx);
                fx
            }
            Action::Sever(i) => {
                let w = &mut self.workers[i];
                w.severs_left -= 1;
                w.phase = Phase::Severed;
                w.pending_gone.push(w.epoch);
                Vec::new()
            }
            Action::DeliverGone(i) => {
                let epoch = self.workers[i].pending_gone.remove(0);
                let slot = self.workers[i].slot;
                let fx = self.machine.step(Event::Sever {
                    worker: slot,
                    epoch,
                    now_us: 0,
                });
                self.absorb(i, ReplyCtx::Other, &fx);
                fx
            }
            Action::Expire(i, t) => {
                let slot = self.workers[i].slot;
                self.workers[i].expires_left -= 1;
                let fx = self.machine.step(Event::Expire {
                    worker: slot,
                    task: t,
                    now_us: 0,
                });
                // The worker does not learn about an expiry; its next
                // done/heartbeat resolves the divergence.
                self.absorb(i, ReplyCtx::Other, &fx);
                fx
            }
        }
    }

    /// Route the machine's effects into worker `i`'s model and the
    /// completion counters.
    fn absorb(&mut self, i: usize, ctx: ReplyCtx, fx: &[Effect]) {
        for e in fx {
            match e {
                Effect::Registered { msg, worker, epoch } => match msg {
                    Message::Welcome { resume, tasks, .. } => {
                        let w = &mut self.workers[i];
                        w.phase = Phase::Live;
                        w.slot = *worker;
                        w.epoch = *epoch;
                        w.token = resume.clone();
                        w.held = tasks.clone();
                    }
                    _ => self.workers[i].phase = Phase::Refused,
                },
                Effect::Reply(msg) => match msg {
                    Message::Assign { tasks } => {
                        let w = &mut self.workers[i];
                        for t in tasks {
                            if !w.held.contains(t) {
                                w.held.push(*t);
                            }
                        }
                    }
                    Message::Drain => {
                        let w = &mut self.workers[i];
                        w.phase = Phase::Drained;
                        w.pending_gone.push(w.epoch);
                    }
                    Message::Ack { task, accepted } => match ctx {
                        ReplyCtx::Done(t) if *task == t => {
                            self.workers[i].held.retain(|&h| h != t);
                        }
                        ReplyCtx::Beat(t) if *task == t && !*accepted => {
                            self.workers[i].held.retain(|&h| h != t);
                        }
                        _ => {}
                    },
                    Message::Revoke { task } => {
                        self.workers[i].held.retain(|&h| h != *task);
                    }
                    _ => {}
                },
                Effect::Trace(ev) => {
                    if let ic_sim::trace::TraceEvent::Completed { task, .. } = ev {
                        if let Some(c) = self.completions.get_mut(task.index()) {
                            *c += 1;
                        }
                    }
                }
                Effect::Header(_) => {}
            }
        }
    }

    /// Hash of the full interleaved state — the machine's semantic
    /// fingerprint plus every worker model. Two states with equal
    /// fingerprints have identical futures, so the explorer's visited
    /// set may merge them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.machine.fingerprint_into(&mut h);
        for w in &self.workers {
            w.fingerprint_into(&mut h);
        }
        h.finish()
    }

    /// Whether the run is over: the dag completed and every worker has
    /// either drained, been refused, or gone quiet with no way back.
    pub fn terminal(&self) -> bool {
        self.machine.is_complete()
            && self.workers.iter().all(|w| {
                matches!(w.phase, Phase::Drained | Phase::Refused) && w.pending_gone.is_empty()
            })
    }
}
