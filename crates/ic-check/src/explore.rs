//! Exhaustive interleaving exploration.
//!
//! [`check`] runs a depth-first enumeration of every fleet
//! interleaving from the initial state, with two prunings:
//!
//! * **Stamps** — a visited set keyed on the full semantic
//!   fingerprint (machine + every worker model). Two paths that
//!   converge on the same state share one future; the second arrival
//!   is cut. Timestamps, token bytes, rng position, and step counters
//!   are excluded from the fingerprint, so states that differ only in
//!   bookkeeping merge.
//! * **Sleep sets** — after exploring action `a` from a state, `a` is
//!   put to sleep in the subtrees of its sibling actions it provably
//!   commutes with, so only one order of an independent pair is
//!   walked. The independence relation is deliberately conservative:
//!   only heartbeats (machine no-ops at the frozen clock) and
//!   `deliver-gone` for v2 workers (which touches nothing but its own
//!   slot's connected flag) on *distinct workers and distinct tasks*
//!   qualify. Every slept order is a pure transposition of an
//!   explored one, so no state — and no violation — is lost.
//!
//! Invariants are checked on the destination of **every transition**
//! (before the visited-set cut), so a violation is detected the first
//! time any path produces it. On violation the explorer re-runs in
//! breadth-first mode chasing the same diagnostic code, which yields
//! a minimum-length counterexample trace.

use std::collections::{HashSet, VecDeque};

use ic_audit::diag::Diagnostic;
use ic_dag::Dag;
use ic_net::machine::SeededBugs;
use ic_net::PROTO_V2;
use ic_sched::policy::AllocationPolicy;

use crate::invariants;
use crate::scenario::{Action, Fleet, FleetSpec};

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Maximum events along any single interleaving.
    pub max_depth: usize,
    /// Maximum distinct states to visit before giving up.
    pub max_states: usize,
    /// Re-run breadth-first after a violation to minimize the
    /// counterexample (otherwise the DFS path is reported as-is).
    pub minimize: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_depth: 48,
            max_states: 200_000,
            minimize: true,
        }
    }
}

/// Counters from one exploration.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions applied (including ones landing on visited states).
    pub transitions: usize,
    /// Transitions skipped because the destination was already
    /// visited.
    pub visited_pruned: usize,
    /// Transitions skipped by the sleep sets.
    pub sleep_pruned: usize,
    /// Deepest interleaving reached.
    pub deepest: usize,
    /// Terminal states reached (dag complete, fleet drained).
    pub complete_runs: usize,
    /// Whether the depth bound truncated any path.
    pub depth_capped: bool,
    /// Whether the state bound stopped the exploration early.
    pub state_capped: bool,
}

impl CheckStats {
    /// Whether every path ran to its natural end within the bounds.
    pub fn exhaustive(&self) -> bool {
        !self.depth_capped && !self.state_capped
    }
}

/// A violated invariant with its (minimized) event trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that failed, with a stable `IC05xx` code.
    pub diag: Diagnostic,
    /// The event trace reaching the violation, one rendered action
    /// per line.
    pub trace: Vec<String>,
    /// Exploration counters up to detection.
    pub stats: CheckStats,
}

/// The result of a [`check`] run.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Every reachable state (within bounds) satisfied every
    /// invariant.
    Clean(CheckStats),
    /// Some interleaving violates an invariant.
    Violation(Box<Violation>),
}

impl CheckOutcome {
    /// Whether the exploration finished without a violation.
    pub fn is_clean(&self) -> bool {
        matches!(self, CheckOutcome::Clean(_))
    }

    /// The exploration counters, clean or not.
    pub fn stats(&self) -> &CheckStats {
        match self {
            CheckOutcome::Clean(s) => s,
            CheckOutcome::Violation(v) => &v.stats,
        }
    }
}

/// Model-check the lease protocol: explore every interleaving of
/// `fleet` against `dag` under `policy`, checking all seven `IC05xx`
/// invariants at every state.
pub fn check(
    dag: &Dag,
    policy: &dyn AllocationPolicy,
    fleet: &FleetSpec,
    cfg: &CheckConfig,
    bugs: SeededBugs,
) -> CheckOutcome {
    let mut ctx = Ctx {
        dag,
        spec: fleet,
        cfg,
        bugs,
        visited: HashSet::new(),
        stats: CheckStats::default(),
        path: Vec::new(),
    };
    let root = Fleet::new(dag, policy, fleet, bugs);
    ctx.visited.insert(root.fingerprint());
    ctx.stats.states = 1;
    if let Some(diag) = invariants::violation(dag, &root) {
        return ctx.into_violation(policy, diag, Vec::new());
    }
    if let Some(diag) = dfs(&mut ctx, &root, 0, &[]) {
        let path = ctx.path.clone();
        return ctx.into_violation(policy, diag, path);
    }
    CheckOutcome::Clean(ctx.stats)
}

struct Ctx<'s, 'd> {
    dag: &'d Dag,
    spec: &'s FleetSpec,
    cfg: &'s CheckConfig,
    bugs: SeededBugs,
    visited: HashSet<u64>,
    stats: CheckStats,
    path: Vec<Action>,
}

impl Ctx<'_, '_> {
    /// Package a violation, minimizing the trace breadth-first when
    /// configured (falls back to the DFS path if the BFS re-run hits
    /// its bounds first).
    fn into_violation(
        self,
        policy: &dyn AllocationPolicy,
        diag: Diagnostic,
        dfs_path: Vec<Action>,
    ) -> CheckOutcome {
        let path = if self.cfg.minimize {
            bfs_shortest(self.dag, policy, self.spec, self.cfg, self.bugs, diag.code)
                .unwrap_or(dfs_path)
        } else {
            dfs_path
        };
        CheckOutcome::Violation(Box::new(Violation {
            diag,
            trace: path.iter().map(|a| a.to_string()).collect(),
            stats: self.stats,
        }))
    }
}

/// Whether `a` only touches its own worker's lease-local state — the
/// precondition for commuting with another worker's lease-local
/// action. Heartbeats never change machine scheduling state at the
/// frozen clock; a v2 `deliver-gone` only flips its own slot's
/// connected flag (resumable workers keep their leases across a
/// sever).
fn lease_local(spec: &FleetSpec, a: Action) -> bool {
    match a {
        Action::Beat(..) => true,
        Action::DeliverGone(i) => spec.workers[i].proto >= PROTO_V2,
        _ => false,
    }
}

/// Conservative independence: both actions lease-local, on distinct
/// workers, touching distinct tasks (if any). Independent pairs fully
/// commute — both orders land on the same state with the same worker
/// views — so exploring one order suffices.
fn independent(spec: &FleetSpec, a: Action, b: Action) -> bool {
    if a.worker() == b.worker() || !lease_local(spec, a) || !lease_local(spec, b) {
        return false;
    }
    match (a.task(), b.task()) {
        (Some(x), Some(y)) => x != y,
        _ => true,
    }
}

fn dfs(
    ctx: &mut Ctx<'_, '_>,
    fleet: &Fleet<'_, '_>,
    depth: usize,
    sleep: &[Action],
) -> Option<Diagnostic> {
    if ctx.stats.states >= ctx.cfg.max_states {
        ctx.stats.state_capped = true;
        return None;
    }
    if depth >= ctx.cfg.max_depth {
        ctx.stats.depth_capped = true;
        return None;
    }
    ctx.stats.deepest = ctx.stats.deepest.max(depth);
    let mut explored: Vec<Action> = Vec::new();
    for a in fleet.enabled(ctx.spec) {
        if sleep.contains(&a) {
            ctx.stats.sleep_pruned += 1;
            continue;
        }
        let mut child = fleet.clone();
        let fx = child.apply(ctx.spec, a);
        ctx.stats.transitions += 1;
        ctx.path.push(a);
        if let Some(d) = invariants::drain_violation(&child, &fx)
            .or_else(|| invariants::violation(ctx.dag, &child))
        {
            return Some(d);
        }
        let fp = child.fingerprint();
        if !ctx.visited.insert(fp) {
            ctx.stats.visited_pruned += 1;
            ctx.path.pop();
            explored.push(a);
            continue;
        }
        ctx.stats.states += 1;
        if child.terminal() {
            ctx.stats.complete_runs += 1;
        }
        let child_sleep: Vec<Action> = sleep
            .iter()
            .chain(explored.iter())
            .copied()
            .filter(|&b| independent(ctx.spec, b, a))
            .collect();
        if let Some(d) = dfs(ctx, &child, depth + 1, &child_sleep) {
            return Some(d);
        }
        ctx.path.pop();
        explored.push(a);
    }
    None
}

/// Breadth-first search for the shortest path reproducing `code`.
/// Shares the same action space as the DFS (minus sleep sets, which
/// only skip redundant orders), so the first hit is a minimum-length
/// counterexample.
fn bfs_shortest(
    dag: &Dag,
    policy: &dyn AllocationPolicy,
    spec: &FleetSpec,
    cfg: &CheckConfig,
    bugs: SeededBugs,
    code: &str,
) -> Option<Vec<Action>> {
    let root = Fleet::new(dag, policy, spec, bugs);
    let mut visited = HashSet::new();
    visited.insert(root.fingerprint());
    let mut queue: VecDeque<(Fleet<'_, '_>, Vec<Action>)> = VecDeque::new();
    queue.push_back((root, Vec::new()));
    let mut states = 1usize;
    while let Some((fleet, path)) = queue.pop_front() {
        if path.len() >= cfg.max_depth {
            continue;
        }
        for a in fleet.enabled(spec) {
            let mut child = fleet.clone();
            let fx = child.apply(spec, a);
            let mut step_path = path.clone();
            step_path.push(a);
            if let Some(d) = invariants::drain_violation(&child, &fx)
                .or_else(|| invariants::violation(dag, &child))
            {
                if d.code == code {
                    return Some(step_path);
                }
                continue; // a different violation: don't expand past it
            }
            if visited.insert(child.fingerprint()) {
                states += 1;
                if states >= cfg.max_states {
                    return None;
                }
                queue.push_back((child, step_path));
            }
        }
    }
    None
}
