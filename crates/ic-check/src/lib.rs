//! `ic-check`: a deterministic model checker for the ic-net lease
//! protocol, plus a zero-dependency source lint (`ic-lint`).
//!
//! The networked allocator in `ic-net` is, after the `LeaseMachine`
//! refactor, a pure transition function — `step(state, Event)` →
//! `(state', effects)` — with every timestamp carried *in* the event.
//! That purity is what this crate exploits: instead of running the
//! protocol over TCP and hoping the interesting races happen, the
//! checker **enumerates every interleaving** a small scripted fleet
//! of workers can produce (hellos, requests, completions, failures,
//! severed connections, delayed `Gone`s, resumes, forced lease
//! expiries) and checks seven safety invariants at every reachable
//! state:
//!
//! * every allocation is ELIGIBLE under the paper's definition
//!   (IC0501),
//! * no task completes twice (IC0502),
//! * lease multiplicity never exceeds one primary plus one
//!   speculative holder (IC0503),
//! * epochs never regress — no stale `Gone` kills a resumed slot
//!   (IC0504),
//! * the recorded pool equals pool + deferred (IC0505),
//! * pool ⊎ deferred ⊎ leased partitions the ELIGIBLE set (IC0506),
//! * `Drain` implies every task executed (IC0507).
//!
//! State explosion is held down by stamp (visited-set) pruning over a
//! semantic fingerprint and by sleep sets over provably-commuting
//! action pairs; see [`explore`] for the argument. Violations are
//! reported with a stable `IC05xx` code and a breadth-first-minimized
//! event trace.
//!
//! ```
//! use ic_check::{check, CheckConfig, FleetSpec};
//! use ic_net::machine::SeededBugs;
//! use ic_sched::heuristics::Policy;
//!
//! let dag = ic_families::trees::complete_out_tree(1, 2); // a 3-chain
//! let outcome = check(
//!     &dag,
//!     &Policy::Fifo,
//!     &FleetSpec::of(2),
//!     &CheckConfig::default(),
//!     SeededBugs::default(),
//! );
//! assert!(outcome.is_clean());
//! ```

#![forbid(unsafe_code)]

pub mod explore;
pub mod invariants;
pub mod scenario;

pub use explore::{check, CheckConfig, CheckOutcome, CheckStats, Violation};
pub use scenario::{Action, Fleet, FleetSpec, Phase, WorkerModel, WorkerSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::Dag;
    use ic_net::machine::SeededBugs;
    use ic_sched::heuristics::Policy;

    fn family(name: &str) -> Dag {
        match name {
            "chain:3" => ic_families::trees::complete_out_tree(1, 2),
            "chain:4" => ic_families::trees::complete_out_tree(1, 3),
            "mesh:3" => ic_families::mesh::out_mesh(3),
            "intree:2" => ic_families::trees::complete_in_tree(2, 2),
            other => panic!("unknown test family {other}"),
        }
    }

    fn run(name: &str, fleet: &FleetSpec, cfg: &CheckConfig) -> CheckOutcome {
        let dag = family(name);
        check(&dag, &Policy::Fifo, fleet, cfg, SeededBugs::default())
    }

    #[test]
    fn a_clean_machine_passes_on_small_families() {
        for family in ["chain:4", "mesh:3", "intree:2"] {
            let outcome = run(family, &FleetSpec::of(2), &CheckConfig::default());
            match &outcome {
                CheckOutcome::Clean(stats) => {
                    assert!(
                        stats.states > 10,
                        "{family}: explored {} states",
                        stats.states
                    );
                    assert!(
                        stats.complete_runs > 0,
                        "{family}: no interleaving ran to completion"
                    );
                }
                CheckOutcome::Violation(v) => {
                    panic!("{family}: {} — trace: {:?}", v.diag, v.trace)
                }
            }
        }
    }

    #[test]
    fn a_faulty_severing_fleet_still_passes() {
        let fleet = FleetSpec {
            workers: vec![
                WorkerSpec::v2().fails(1).severs(1).expiries(1),
                WorkerSpec::v2(),
            ],
            steal: false,
            batch: 1,
            min_proto: 1,
        };
        let outcome = run("chain:3", &fleet, &CheckConfig::default());
        assert!(
            outcome.is_clean(),
            "expected clean, got {:?}",
            match outcome {
                CheckOutcome::Violation(v) => format!("{} / {:?}", v.diag, v.trace),
                _ => String::new(),
            }
        );
    }

    #[test]
    fn the_steal_path_passes_with_a_v1_straggler() {
        let fleet = FleetSpec {
            workers: vec![WorkerSpec::v2().batch(2), WorkerSpec::v1()],
            steal: true,
            batch: 2,
            min_proto: 1,
        };
        let outcome = run("chain:3", &fleet, &CheckConfig::default());
        assert!(outcome.is_clean());
    }

    #[test]
    fn sleep_sets_prune_without_losing_terminal_runs() {
        // Heartbeats change state only after a lease is lost, so give
        // both workers a forced expiry: reachable states where both
        // hold dangling tasks make beat(w0, ·) and beat(w1, ·) an
        // independent pair, which the sleep sets cut one order of.
        let fleet = FleetSpec {
            workers: vec![
                WorkerSpec::v2().beats().expiries(1),
                WorkerSpec::v2().beats().expiries(1),
            ],
            steal: false,
            batch: 1,
            min_proto: 1,
        };
        let outcome = run("mesh:3", &fleet, &CheckConfig::default());
        let stats = outcome.stats();
        assert!(outcome.is_clean());
        assert!(
            stats.sleep_pruned > 0,
            "expected some commuting orders to be slept"
        );
        assert!(stats.exhaustive(), "bounds too tight for the smoke config");
    }

    #[test]
    fn the_state_cap_reports_a_truncated_run() {
        let cfg = CheckConfig {
            max_states: 16,
            ..CheckConfig::default()
        };
        let outcome = run("mesh:3", &FleetSpec::of(2), &cfg);
        assert!(outcome.is_clean());
        assert!(outcome.stats().state_capped);
    }
}
