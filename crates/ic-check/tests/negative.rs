//! The negative suite: three historical bugs are deliberately
//! re-seeded into the `LeaseMachine` (behind `SeededBugs` runtime
//! flags) and the checker must find each one — with the right stable
//! diagnostic code and a counterexample short enough to read.
//!
//! Each case also re-runs the *same* fleet with the bugs off and
//! demands a clean pass, proving the finding is caused by the seeded
//! bug and not by the scenario.

use ic_check::{check, CheckConfig, CheckOutcome, FleetSpec, WorkerSpec};
use ic_dag::Dag;
use ic_net::machine::SeededBugs;
use ic_sched::heuristics::Policy;

/// Run the checker and demand a violation with `code` and a
/// counterexample of at most `max_events` events; then re-run clean.
fn assert_caught(
    dag: &Dag,
    fleet: &FleetSpec,
    bugs: SeededBugs,
    code: &str,
    max_events: usize,
) -> Vec<String> {
    let cfg = CheckConfig::default();
    let outcome = check(dag, &Policy::Fifo, fleet, &cfg, bugs);
    let violation = match outcome {
        CheckOutcome::Violation(v) => v,
        CheckOutcome::Clean(stats) => panic!(
            "expected {code} but the exploration came back clean \
             ({} states, exhaustive: {})",
            stats.states,
            stats.exhaustive()
        ),
    };
    assert_eq!(
        violation.diag.code, code,
        "wrong diagnostic: {}",
        violation.diag
    );
    assert!(
        violation.trace.len() <= max_events,
        "counterexample too long ({} events > {max_events}): {:?}",
        violation.trace.len(),
        violation.trace
    );
    assert!(
        !violation.trace.is_empty(),
        "a seeded bug cannot fire at the initial state"
    );

    let clean = check(dag, &Policy::Fifo, fleet, &cfg, SeededBugs::default());
    assert!(
        clean.is_clean(),
        "the un-seeded machine must pass the same fleet: {:?}",
        match clean {
            CheckOutcome::Violation(v) => format!("{} / {:?}", v.diag, v.trace),
            _ => String::new(),
        }
    );
    violation.trace
}

/// A two-node chain: enough structure for every seeded bug.
fn chain2() -> Dag {
    ic_families::trees::complete_out_tree(1, 1)
}

/// PR 3's lease-overwrite: a request from a worker already holding a
/// lease dropped the old lease without returning the task, leaving it
/// claimed-but-nowhere. The partition invariant (pool ⊎ deferred ⊎
/// leased = ELIGIBLE) catches the orphan as IC0506.
#[test]
fn the_orphan_on_request_bug_is_caught_as_ic0506() {
    let dag = chain2();
    let fleet = FleetSpec {
        workers: vec![WorkerSpec::v2().greedy()],
        steal: false,
        batch: 1,
        min_proto: 1,
    };
    let bugs = SeededBugs {
        orphan_on_request: true,
        ..SeededBugs::default()
    };
    let trace = assert_caught(&dag, &fleet, bugs, "IC0506", 20);
    // hello, request (assign), request (orphan): three events suffice.
    assert!(
        trace.len() <= 4,
        "BFS minimization should find the 3-event trigger, got {trace:?}"
    );
}

/// The duplicate-completion bug: a late `done` for an already-executed
/// task emitted a second `Completed` trace event. The speculative
/// steal path makes it reachable with well-behaved workers — the
/// revoked loser's `done` races the winner's. Caught as IC0502.
#[test]
fn the_duplicate_completion_bug_is_caught_as_ic0502() {
    let dag = chain2();
    let fleet = FleetSpec {
        workers: vec![WorkerSpec::v2(), WorkerSpec::v2()],
        steal: true,
        batch: 1,
        min_proto: 1,
    };
    let bugs = SeededBugs {
        double_completion_event: true,
        ..SeededBugs::default()
    };
    let trace = assert_caught(&dag, &fleet, bugs, "IC0502", 20);
    // hello×2, request×2 (primary + speculative steal), done×2.
    assert!(
        trace.len() <= 8,
        "expected the 6-event steal race, got {trace:?}"
    );
}

/// The stale-`Gone` bug: a `Gone` from a dead connection, delivered
/// after the worker already resumed on a fresh epoch, was honored and
/// disconnected the resumed slot. The epoch guard exists precisely to
/// refuse it; with the guard bypassed the live-worker/machine
/// agreement fails as IC0504.
#[test]
fn the_stale_gone_bug_is_caught_as_ic0504() {
    let dag = chain2();
    let fleet = FleetSpec {
        workers: vec![WorkerSpec::v2().severs(1)],
        steal: false,
        batch: 1,
        min_proto: 1,
    };
    let bugs = SeededBugs {
        honor_stale_gone: true,
        ..SeededBugs::default()
    };
    let trace = assert_caught(&dag, &fleet, bugs, "IC0504", 20);
    // hello, sever, resume, deliver-gone (stale): four events.
    assert!(
        trace.len() <= 5,
        "expected the 4-event stale-Gone race, got {trace:?}"
    );
}

/// All three bugs seeded at once: the checker reports *some* violation
/// (whichever interleaving trips first) rather than wedging.
#[test]
fn all_bugs_at_once_still_produce_a_single_minimal_finding() {
    let dag = chain2();
    let fleet = FleetSpec {
        workers: vec![WorkerSpec::v2().greedy().severs(1), WorkerSpec::v2()],
        steal: true,
        batch: 1,
        min_proto: 1,
    };
    let bugs = SeededBugs {
        orphan_on_request: true,
        double_completion_event: true,
        honor_stale_gone: true,
    };
    let outcome = check(&dag, &Policy::Fifo, &fleet, &CheckConfig::default(), bugs);
    match outcome {
        CheckOutcome::Violation(v) => {
            assert!(v.diag.code.starts_with("IC05"), "unexpected {}", v.diag);
            assert!(v.trace.len() <= 20);
        }
        CheckOutcome::Clean(_) => panic!("three seeded bugs cannot all hide"),
    }
}
