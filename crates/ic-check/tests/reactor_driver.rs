//! The injectable-driver contract: a [`Reactor`] over a
//! [`ManualClock`] and the in-process loopback poller is a
//! *deterministic* server — the same scripted client against the same
//! frozen clock produces byte-identical traces, with lease expiry
//! driven through the timer wheel by explicit clock advances rather
//! than wall time. This is the property that lets `ic-bench` and the
//! model checker share the production reactor code path.

use std::time::Duration;

use ic_net::{loopback, Driver, LoopbackConn, ManualClock, Message, Reactor, ServerConfig};
use ic_sim::{MemorySink, TraceEvent};

/// Receive with a generous real-time bound (the *content* is
/// deterministic; only scheduling latency is not).
fn recv(conn: &mut LoopbackConn) -> Message {
    conn.recv_timeout(Duration::from_secs(10))
        .expect("loopback receive")
        .expect("reactor replied within the bound")
}

/// One scripted run: a single worker completes a 3-task independent
/// dag, but sits out its first lease — the clock is advanced past the
/// deadline, so the wheel (not a scan, not wall time) expires it.
/// Returns the run's trace as JSONL plus the serve report.
fn scripted_run(seed: u64) -> (String, ic_net::ServeReport) {
    let dag = ic_dag::builder::from_arcs(3, &[]).expect("independent tasks");
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(100)
        .backoff_base_ms(0)
        .expect_workers(1)
        .wait_ms(5)
        .seed(seed)
        .build();
    let clock = ManualClock::new(1_000_000);
    let (poller, handle) = loopback(4);
    let driver = Driver::new(Box::new(clock.clone()), Box::new(poller));
    let mut reactor = Reactor::new(&dag, &policy, cfg, driver);

    let mut sink = MemorySink::new();
    let report = std::thread::scope(|s| {
        let clock = &clock;
        s.spawn(move || {
            let mut conn = handle.connect();
            conn.send(&Message::hello("deterministic", 1.0)).unwrap();
            let Message::Welcome { .. } = recv(&mut conn) else {
                panic!("expected welcome");
            };
            conn.send(&Message::request()).unwrap();
            let Message::Assign { tasks } = recv(&mut conn) else {
                panic!("expected the first assignment");
            };
            let abandoned = tasks[0];
            // Abandon the lease: advance the frozen clock past the
            // deadline and let the reactor's next poll tick fire the
            // wheel. (If our next request races ahead of the timer,
            // the machine forfeits the lease instead — both paths
            // stamp the same `Failed` event at the same manual time,
            // so the trace is identical either way.)
            clock.advance(150_000);
            std::thread::sleep(Duration::from_millis(40));
            loop {
                conn.send(&Message::request()).unwrap();
                match recv(&mut conn) {
                    Message::Assign { tasks } => {
                        for t in tasks {
                            conn.send(&Message::Done { task: t, ok: true }).unwrap();
                            let Message::Ack { accepted: true, .. } = recv(&mut conn) else {
                                panic!("fresh completion must be accepted");
                            };
                        }
                    }
                    Message::Wait { .. } => std::thread::sleep(Duration::from_millis(1)),
                    Message::Drain => break,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            let _ = abandoned;
        });
        reactor.run_until_drain(&mut sink).unwrap()
    });

    let trace = sink.into_trace().expect("header recorded");
    (trace.to_jsonl(), report)
}

#[test]
fn manual_clock_runs_are_byte_identical() {
    let (a, report_a) = scripted_run(42);
    let (b, report_b) = scripted_run(42);
    assert_eq!(a, b, "same script + same frozen clock = same bytes");
    assert_eq!(report_a.completions, 3);
    assert_eq!(report_b.failures, report_a.failures);
    assert!(
        report_a.failures >= 1,
        "the abandoned lease was recovered: {report_a:?}"
    );
    // The frozen clock is the one stamping events: the makespan is
    // exactly the 150 ms we advanced, not wall time.
    assert!(
        (report_a.makespan - 0.15).abs() < 1e-9,
        "makespan from the manual clock: {report_a:?}"
    );

    // The trace carries the recovery, and replays clean.
    let trace = ic_sim::Trace::from_jsonl(&a).unwrap();
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Failed { .. }))
        .count();
    assert_eq!(fails, report_a.failures);
    let errors: Vec<_> = ic_audit::audit_trace(&trace)
        .into_iter()
        .filter(|d| d.severity == ic_audit::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "deterministic trace replays clean: {errors:?}"
    );
}

/// The reactor exits via `connected() == 0` after draining its last
/// worker — under a frozen clock the drain *grace* can never elapse,
/// so prompt exit here proves the sever-on-drain path.
#[test]
fn drain_exits_promptly_under_a_frozen_clock() {
    let dag = ic_dag::builder::from_arcs(1, &[]).expect("one task");
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ServerConfig::builder()
        .lease_ms(60_000) // grace would be 60 s of manual time: unreachable
        .expect_workers(1)
        .seed(7)
        .build();
    let clock = ManualClock::new(0);
    let (poller, handle) = loopback(1);
    let driver = Driver::new(Box::new(clock), Box::new(poller));
    let mut reactor = Reactor::new(&dag, &policy, cfg, driver);

    let mut sink = MemorySink::new();
    let report = std::thread::scope(|s| {
        s.spawn(move || {
            let mut conn = handle.connect();
            conn.send(&Message::hello("prompt", 1.0)).unwrap();
            let Message::Welcome { .. } = recv(&mut conn) else {
                panic!("expected welcome");
            };
            conn.send(&Message::request()).unwrap();
            let Message::Assign { tasks } = recv(&mut conn) else {
                panic!("expected the assignment");
            };
            conn.send(&Message::Done {
                task: tasks[0],
                ok: true,
            })
            .unwrap();
            let Message::Ack { accepted: true, .. } = recv(&mut conn) else {
                panic!("completion accepted");
            };
            conn.send(&Message::request()).unwrap();
            let Message::Drain = recv(&mut conn) else {
                panic!("expected drain");
            };
        });
        reactor.run_until_drain(&mut sink).unwrap()
    });
    assert_eq!(report.completions, 1);
    assert_eq!(report.makespan, 0.0, "no manual time elapsed: {report:?}");
}
