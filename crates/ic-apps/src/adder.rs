//! Carry-lookahead addition via parallel prefix (§6.1).
//!
//! The paper lists carry-lookahead addition among the "microscopic"
//! computations that the scan operator enables. The carry recurrence
//! `c_{i+1} = g_i ∨ (p_i ∧ c_i)` (generate/propagate) is a linear
//! recurrence over the associative *carry operator*
//!
//! ```text
//! (g, p) * (g', p') = (g' ∨ (p' ∧ g), p ∧ p')
//! ```
//!
//! so all carries fall out of one `*`-parallel-prefix over the per-bit
//! (generate, propagate) pairs — computed here through the `P_n` dag in
//! its IC-optimal schedule, and checked against native integer
//! addition.

use crate::scan::scan_via_dag;

/// A generate/propagate pair — the scan's carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenProp {
    /// This span *generates* a carry out regardless of carry in.
    pub generate: bool,
    /// This span *propagates* a carry in to a carry out.
    pub propagate: bool,
}

/// The associative carry operator: `a` spans the lower bits, `b` the
/// upper bits; the combination spans both.
pub fn carry_op(a: &GenProp, b: &GenProp) -> GenProp {
    GenProp {
        generate: b.generate || (b.propagate && a.generate),
        propagate: a.propagate && b.propagate,
    }
}

/// Add two `width`-bit numbers (given LSB-first as bit slices) with a
/// carry-lookahead adder whose carry chain is computed by the parallel-
/// prefix dag. Returns the LSB-first sum, `width + 1` bits.
///
/// # Panics
/// Panics if the inputs' lengths differ or are empty.
pub fn add_lookahead(a_bits: &[bool], b_bits: &[bool]) -> Vec<bool> {
    assert_eq!(a_bits.len(), b_bits.len(), "operand widths must match");
    assert!(!a_bits.is_empty(), "zero-width addition");
    // Per-bit generate/propagate.
    let gp: Vec<GenProp> = a_bits
        .iter()
        .zip(b_bits)
        .map(|(&a, &b)| GenProp {
            generate: a && b,
            propagate: a || b,
        })
        .collect();
    // Inclusive scan: prefix[i] spans bits 0..=i, so carry into bit i+1
    // is prefix[i].generate (carry-in to bit 0 is false).
    let prefix = scan_via_dag(&gp, carry_op);
    let width = a_bits.len();
    let mut out = Vec::with_capacity(width + 1);
    for i in 0..width {
        let carry_in = if i == 0 {
            false
        } else {
            prefix[i - 1].generate
        };
        out.push(a_bits[i] ^ b_bits[i] ^ carry_in);
    }
    out.push(prefix[width - 1].generate);
    out
}

/// Convenience: add two `u64`s through the lookahead adder (65-bit
/// result returned as u128).
///
/// ```
/// assert_eq!(ic_apps::adder::add_u64(u64::MAX, 1), 1u128 << 64);
/// ```
pub fn add_u64(a: u64, b: u64) -> u128 {
    let bits = |x: u64| (0..64).map(|i| x >> i & 1 == 1).collect::<Vec<_>>();
    let sum = add_lookahead(&bits(a), &bits(b));
    sum.iter()
        .enumerate()
        .fold(0u128, |acc, (i, &bit)| acc | (u128::from(bit) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_op_is_associative() {
        let vals = [
            GenProp {
                generate: false,
                propagate: false,
            },
            GenProp {
                generate: false,
                propagate: true,
            },
            GenProp {
                generate: true,
                propagate: false,
            },
            GenProp {
                generate: true,
                propagate: true,
            },
        ];
        for a in vals {
            for b in vals {
                for c in vals {
                    let left = carry_op(&carry_op(&a, &b), &c);
                    let right = carry_op(&a, &carry_op(&b, &c));
                    assert_eq!(left, right, "associativity of the carry operator");
                }
            }
        }
    }

    #[test]
    fn small_sums() {
        assert_eq!(add_u64(0, 0), 0);
        assert_eq!(add_u64(1, 1), 2);
        assert_eq!(add_u64(5, 7), 12);
        assert_eq!(add_u64(0xFF, 1), 0x100);
    }

    #[test]
    fn carries_ripple_through() {
        // All-ones + 1 overflows into the 65th bit.
        assert_eq!(add_u64(u64::MAX, 1), 1u128 << 64);
        assert_eq!(add_u64(u64::MAX, u64::MAX), (u128::from(u64::MAX)) * 2);
    }

    #[test]
    fn random_sums_match_native() {
        let mut s = 0xADD5EEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..200 {
            let (a, b) = (next(), next());
            assert_eq!(add_u64(a, b), u128::from(a) + u128::from(b));
        }
    }

    #[test]
    fn odd_widths_work() {
        // 5-bit addition: 19 + 13 = 32 (overflow bit set).
        let bits = |x: u32, w: usize| (0..w).map(|i| x >> i & 1 == 1).collect::<Vec<_>>();
        let sum = add_lookahead(&bits(19, 5), &bits(13, 5));
        let value: u32 = sum
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u32::from(b) << i));
        assert_eq!(value, 32);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn mismatched_widths_panic() {
        let _ = add_lookahead(&[true], &[true, false]);
    }
}
