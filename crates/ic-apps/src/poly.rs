//! Polynomial multiplication by convolution (§5.2).
//!
//! The product of two degree-`n` polynomials has coefficients
//! `A_k = Σ_i a_i b_{k-i}` — convolutions. Computing them through the
//! FFT (multiply pointwise in the frequency domain) runs in
//! `Θ(n log n)` and inherits the butterfly network's IC-optimal
//! schedule. Verified against the naive `O(n²)` convolution.

use crate::fft::{fft_via_butterfly, ifft_via_butterfly};
use crate::numeric::Complex;

/// Naive reference convolution of coefficient vectors.
pub fn convolve_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Convolution via the butterfly-network FFT: pad to the next power of
/// two at least `len(a) + len(b) - 1`, transform, multiply pointwise,
/// invert.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two().max(2);
    let lift = |v: &[f64]| -> Vec<Complex> {
        let mut z = vec![Complex::ZERO; n];
        for (i, &x) in v.iter().enumerate() {
            z[i] = Complex::real(x);
        }
        z
    };
    let fa = fft_via_butterfly(&lift(a));
    let fb = fft_via_butterfly(&lift(b));
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
    ifft_via_butterfly(&prod)
        .into_iter()
        .take(out_len)
        .map(|z| z.re)
        .collect()
}

/// Multiply two polynomials given by coefficient vectors
/// (`a[i]` = coefficient of `x^i`), via FFT convolution.
pub fn poly_multiply(a: &[f64], b: &[f64]) -> Vec<f64> {
    convolve_fft(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn small_product() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
        let p = poly_multiply(&[1.0, 2.0], &[3.0, 4.0]);
        assert!(close(&p, &[3.0, 10.0, 8.0], 1e-9));
    }

    #[test]
    fn multiply_by_one() {
        let a = [5.0, -2.0, 7.0];
        assert!(close(&poly_multiply(&a, &[1.0]), &a, 1e-9));
    }

    #[test]
    fn fft_matches_naive_convolution() {
        let a: Vec<f64> = (0..13).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let b: Vec<f64> = (0..9).map(|i| (i as f64 - 4.0) * 0.5).collect();
        let fast = convolve_fft(&a, &b);
        let slow = convolve_naive(&a, &b);
        assert!(close(&fast, &slow, 1e-7));
    }

    #[test]
    fn binomial_squares() {
        // (1 + x)^2 twice over: coefficients are binomials.
        let mut p = vec![1.0, 1.0];
        for _ in 0..4 {
            p = poly_multiply(&p, &[1.0, 1.0]);
        }
        // (1+x)^5: 1 5 10 10 5 1.
        assert!(close(&p, &[1.0, 5.0, 10.0, 10.0, 5.0, 1.0], 1e-7));
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_fft(&[], &[1.0]).is_empty());
        assert!(convolve_naive(&[1.0], &[]).is_empty());
    }
}
