//! Computing all path lengths in a graph (§6.2.2, Fig. 16).
//!
//! Given an `m`-node graph via its boolean adjacency matrix `A`, compute
//! the matrix `M` whose `(i, j)` entry is the vector
//! `⟨β⁽¹⁾, ..., β⁽ᴷ⁾⟩` with `β⁽ᵏ⁾ = 1` iff a length-`k` path joins `i`
//! and `j`:
//!
//! 1. a `K`-input parallel prefix over *logical matrix multiplication*
//!    produces `A¹, ..., A^K` (coarse tasks!);
//! 2. an in-tree ORs the per-`k` fragments into `M`.
//!
//! Checked against an independent layered-BFS dynamic program.

use crate::numeric::BoolMatrix;
use crate::scan::boolean_matrix_powers;

/// The path-length matrix: `entry(i, j)` is a bitmask whose bit `k-1`
/// is set iff a length-`k` path joins `i` and `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatrix {
    n: usize,
    /// Maximum path length recorded.
    pub max_len: usize,
    masks: Vec<u64>,
}

impl PathMatrix {
    fn zero(n: usize, max_len: usize) -> Self {
        assert!(max_len <= 64);
        PathMatrix {
            n,
            max_len,
            masks: vec![0; n * n],
        }
    }

    /// The bitmask of path lengths joining `i` and `j`.
    pub fn mask(&self, i: usize, j: usize) -> u64 {
        self.masks[i * self.n + j]
    }

    /// Is there a path of length exactly `k` (1-based) from `i` to `j`?
    pub fn has_path(&self, i: usize, j: usize, k: usize) -> bool {
        k >= 1 && k <= self.max_len && self.mask(i, j) >> (k - 1) & 1 == 1
    }

    fn or_in_power(&mut self, power: &BoolMatrix, k: usize) {
        for i in 0..self.n {
            for j in 0..self.n {
                if power.get(i, j) {
                    self.masks[i * self.n + j] |= 1 << (k - 1);
                }
            }
        }
    }

    fn or(&mut self, other: &PathMatrix) {
        for (a, b) in self.masks.iter_mut().zip(&other.masks) {
            *a |= b;
        }
    }
}

/// Fig. 16: compute `M` for path lengths `1..=k` using the prefix dag's
/// powers and an in-tree accumulation (`k` a power of two; the paper
/// uses `k = 8` on a 9-node graph).
pub fn all_path_lengths(a: &BoolMatrix, k: usize) -> PathMatrix {
    assert!(
        k >= 2 && k.is_power_of_two(),
        "k must be a power of two >= 2"
    );
    let n = a.dim();
    // Phase 1: logical powers via the P_k dag.
    let powers = boolean_matrix_powers(a, k);
    // Phase 2: leaf tasks convert each power into an M-fragment; an
    // in-tree of ORs combines them pairwise.
    let mut level: Vec<PathMatrix> = powers
        .iter()
        .enumerate()
        .map(|(idx, p)| {
            let mut frag = PathMatrix::zero(n, k);
            frag.or_in_power(p, idx + 1);
            frag
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|c| {
                let mut m = c[0].clone();
                m.or(&c[1]);
                m
            })
            .collect();
    }
    level.into_iter().next().expect("k >= 2")
}

/// Independent reference: layered reachability DP over walk lengths.
#[allow(clippy::needless_range_loop)] // the DP reads several rows at once; indices are clearer
pub fn all_path_lengths_reference(a: &BoolMatrix, k: usize) -> PathMatrix {
    let n = a.dim();
    let mut out = PathMatrix::zero(n, k);
    // frontier[i][j] = reachable from i in exactly `len` steps, as rows.
    let mut frontier: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| a.get(i, j)).collect())
        .collect();
    for len in 1..=k {
        for i in 0..n {
            for j in 0..n {
                if frontier[i][j] {
                    out.masks[i * n + j] |= 1 << (len - 1);
                }
            }
        }
        if len < k {
            let mut next = vec![vec![false; n]; n];
            for i in 0..n {
                for (mid, &reach) in frontier[i].iter().enumerate() {
                    if reach {
                        for j in 0..n {
                            if a.get(mid, j) {
                                next[i][j] = true;
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
    }
    out
}

/// The paper's showcase instance: a 9-node graph, 8 powers.
pub fn nine_node_example() -> (BoolMatrix, PathMatrix) {
    // A 3×3 grid graph (undirected: symmetric adjacency).
    let mut entries = Vec::new();
    for r in 0..3usize {
        for c in 0..3usize {
            let v = 3 * r + c;
            if c + 1 < 3 {
                entries.push((v, v + 1));
                entries.push((v + 1, v));
            }
            if r + 1 < 3 {
                entries.push((v, v + 3));
                entries.push((v + 3, v));
            }
        }
    }
    let a = BoolMatrix::from_entries(9, &entries);
    let m = all_path_lengths(&a, 8);
    (a, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_on_grid() {
        let (a, m) = nine_node_example();
        let r = all_path_lengths_reference(&a, 8);
        assert_eq!(m, r);
    }

    #[test]
    fn matches_reference_on_random_digraphs() {
        let mut s = 0xD1CEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..10 {
            let n = 6;
            let mut entries = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j && next() % 100 < 30 {
                        entries.push((i, j));
                    }
                }
            }
            let a = BoolMatrix::from_entries(n, &entries);
            assert_eq!(all_path_lengths(&a, 4), all_path_lengths_reference(&a, 4));
        }
    }

    #[test]
    fn grid_distances_are_sane() {
        let (_, m) = nine_node_example();
        // Corner (0) to opposite corner (8): shortest walk length 4,
        // and parity forbids length 5 on a bipartite grid.
        assert!(!m.has_path(0, 8, 1));
        assert!(!m.has_path(0, 8, 3));
        assert!(m.has_path(0, 8, 4));
        assert!(!m.has_path(0, 8, 5));
        assert!(m.has_path(0, 8, 6));
        // Self-walks: even lengths only (bipartite).
        assert!(m.has_path(0, 0, 2));
        assert!(!m.has_path(0, 0, 3));
    }

    #[test]
    fn mask_accessors() {
        let a = BoolMatrix::from_entries(2, &[(0, 1)]);
        let m = all_path_lengths(&a, 2);
        assert_eq!(m.mask(0, 1), 0b01);
        assert_eq!(m.mask(1, 0), 0);
        assert!(!m.has_path(0, 1, 0));
        assert!(!m.has_path(0, 1, 3));
    }
}
