//! Sorting through comparator networks (§5.2).
//!
//! Each comparator applies the transformation (5.1):
//! `y0 = min(x0, x1)`, `y1 = max(x0, x1)`. Executing the bitonic
//! network's dag in its IC-optimal paired schedule sorts any input.

use ic_families::sorting::{
    bitonic_network, comparator_dag, comparator_schedule, odd_even_network, wire_id, Comparator,
};

/// Sort by simulating the comparator stages directly on an array —
/// the reference executor.
pub fn bitonic_sort_array<T: Ord + Clone>(xs: &[T]) -> Vec<T> {
    let n = xs.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "bitonic sort needs 2^k >= 2 keys"
    );
    let (_, stages) = bitonic_network(n);
    let mut v = xs.to_vec();
    for comps in &stages {
        for c in comps {
            apply(&mut v, c);
        }
    }
    v
}

/// Sort through Batcher's odd-even merge network (fewer comparators
/// than bitonic; stages contain pass-through wires), dag-driven.
pub fn odd_even_sort_via_dag<T: Ord + Clone>(xs: &[T]) -> Vec<T> {
    let n = xs.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "odd-even sort needs 2^k >= 2 keys"
    );
    let (_, stages) = odd_even_network(n);
    network_sort(xs, &stages)
}

fn apply<T: Ord + Clone>(v: &mut [T], c: &Comparator) {
    let out_of_order = if c.ascending {
        v[c.lo] > v[c.hi]
    } else {
        v[c.lo] < v[c.hi]
    };
    if out_of_order {
        v.swap(c.lo, c.hi);
    }
}

/// Sort by executing the bitonic network's *dag*, node by node in the
/// IC-optimal schedule order, carrying wire values through the levels.
pub fn bitonic_sort_via_dag<T: Ord + Clone>(xs: &[T]) -> Vec<T> {
    let n = xs.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "bitonic sort needs 2^k >= 2 keys"
    );
    let (_, stages) = bitonic_network(n);
    network_sort(xs, &stages)
}

/// Execute any comparator network dag-first: build the dag (with
/// pass-through wires), walk it in the §5.2 paired schedule order, and
/// read the sorted keys off the final level.
fn network_sort<T: Ord + Clone>(xs: &[T], stages: &[Vec<Comparator>]) -> Vec<T> {
    let n = xs.len();
    let dag = comparator_dag(n, stages);
    let schedule = comparator_schedule(n, stages);

    // comp_of[(stage, wire)] -> the comparator touching that wire, if any.
    let mut comp_of: Vec<Vec<Option<&Comparator>>> = Vec::with_capacity(stages.len());
    for comps in stages {
        let mut slots: Vec<Option<&Comparator>> = vec![None; n];
        for c in comps {
            slots[c.lo] = Some(c);
            slots[c.hi] = Some(c);
        }
        comp_of.push(slots);
    }

    let mut values: Vec<Option<T>> = vec![None; dag.num_nodes()];
    for (i, x) in xs.iter().enumerate() {
        values[wire_id(n, 0, i).index()] = Some(x.clone());
    }
    for &v in schedule.order() {
        let idx = v.index();
        let (level, wire) = (idx / n, idx % n);
        if level == 0 {
            continue;
        }
        let val = match comp_of[level - 1][wire] {
            None => values[wire_id(n, level - 1, wire).index()]
                .clone()
                .expect("pass-through parent executed"),
            Some(c) => {
                let a = values[wire_id(n, level - 1, c.lo).index()]
                    .clone()
                    .expect("schedule order guarantees parents first");
                let b = values[wire_id(n, level - 1, c.hi).index()]
                    .clone()
                    .expect("parent executed");
                let (min, max) = if a <= b { (a, b) } else { (b, a) };
                match (wire == c.lo, c.ascending) {
                    (true, true) | (false, false) => min,
                    _ => max,
                }
            }
        };
        values[idx] = Some(val);
    }
    let last = stages.len();
    (0..n)
        .map(|i| values[wire_id(n, last, i).index()].take().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::rng::XorShift64;

    #[test]
    fn sorts_small_cases() {
        assert_eq!(bitonic_sort_array(&[2, 1]), vec![1, 2]);
        assert_eq!(bitonic_sort_array(&[4, 1, 3, 2]), vec![1, 2, 3, 4]);
        assert_eq!(
            bitonic_sort_array(&[8, 7, 6, 5, 4, 3, 2, 1]),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn dag_execution_matches_array_execution() {
        let mut rng = XorShift64::new(7);
        for n in [2usize, 4, 8, 16, 32] {
            let xs: Vec<i64> = (0..n).map(|_| rng.gen_i64(-100, 100)).collect();
            let via_dag = bitonic_sort_via_dag(&xs);
            let via_array = bitonic_sort_array(&xs);
            let mut expect = xs.clone();
            expect.sort();
            assert_eq!(via_dag, expect, "dag sort, n = {n}");
            assert_eq!(via_array, expect, "array sort, n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let xs = [3, 1, 3, 1, 2, 2, 0, 3];
        assert_eq!(bitonic_sort_via_dag(&xs), vec![0, 1, 1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn sorts_already_sorted() {
        let xs: Vec<u32> = (0..16).collect();
        assert_eq!(bitonic_sort_via_dag(&xs), xs);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        let _ = bitonic_sort_array(&[3, 1, 2]);
    }

    #[test]
    fn odd_even_sorts_random_keys() {
        let mut rng = XorShift64::new(21);
        for n in [2usize, 4, 8, 16, 32, 64] {
            let xs: Vec<i64> = (0..n).map(|_| rng.gen_i64(-50, 50)).collect();
            let got = odd_even_sort_via_dag(&xs);
            let mut want = xs.clone();
            want.sort();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn odd_even_agrees_with_bitonic() {
        let mut rng = XorShift64::new(5);
        let xs: Vec<u32> = (0..32).map(|_| rng.gen_i64(0, 1000) as u32).collect();
        assert_eq!(odd_even_sort_via_dag(&xs), bitonic_sort_via_dag(&xs));
    }

    #[test]
    fn odd_even_zero_one_principle_spot_check() {
        // All 0/1 inputs of width 8 (the 0-1 principle: a network that
        // sorts every 0/1 vector sorts everything).
        for bits in 0..256u32 {
            let xs: Vec<u8> = (0..8).map(|i| (bits >> i & 1) as u8).collect();
            let got = odd_even_sort_via_dag(&xs);
            let mut want = xs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "bits = {bits:08b}");
        }
    }
}
