//! The Fast Fourier Transform over the butterfly network (§5.2).
//!
//! The data dependencies of the `d`-dimensional FFT form exactly the
//! butterfly network `B_d`; each building block applies the convolution
//! transformation (5.2) with a twiddle factor `ω` drawn from the complex
//! roots of unity. Our `B_d` construction pairs rows `r` and
//! `r ^ 2^{d-1-l}` between levels `l` and `l+1` — the
//! decimation-in-frequency dataflow: natural-order input, bit-reversed
//! output (un-permuted before returning).
//!
//! Verified against the naive `O(n²)` DFT.

use ic_families::butterfly::{butterfly, butterfly_id, butterfly_schedule};

use crate::numeric::Complex;

/// Naive `O(n²)` reference DFT: `X[k] = Σ_j x[j] ω^{jk}`,
/// `ω = e^{-2πi/n}`.
pub fn dft_naive(xs: &[Complex]) -> Vec<Complex> {
    let n = xs.len();
    let w = Complex::root_of_unity(n);
    (0..n)
        .map(|k| {
            xs.iter()
                .enumerate()
                .fold(Complex::ZERO, |acc, (j, &x)| acc + x * w.powu(j * k))
        })
        .collect()
}

/// Reverse the low `bits` bits of `i`.
fn bit_reverse(i: usize, bits: usize) -> usize {
    let mut out = 0usize;
    for b in 0..bits {
        if i >> b & 1 == 1 {
            out |= 1 << (bits - 1 - b);
        }
    }
    out
}

/// Compute the DFT of `xs` (length a power of two) by executing the
/// butterfly dag `B_d` in its IC-optimal (§5.1 paired) schedule order.
///
/// # Panics
/// Panics unless `xs.len()` is a power of two `>= 2`.
pub fn fft_via_butterfly(xs: &[Complex]) -> Vec<Complex> {
    let n = xs.len();
    assert!(n >= 2 && n.is_power_of_two(), "FFT length must be 2^d >= 2");
    let d = n.trailing_zeros() as usize;
    let dag = butterfly(d);
    let schedule = butterfly_schedule(d);
    let mut values: Vec<Complex> = vec![Complex::ZERO; dag.num_nodes()];
    for i in 0..n {
        values[butterfly_id(d, 0, i).index()] = xs[i];
    }
    // Execute in schedule order. A node (l+1, r) combines its two
    // parents (l, r) and (l, r ^ bit). Decimation-in-frequency:
    //   top    (r & bit == 0): a + b
    //   bottom (r & bit != 0): (a - b) · W_{2·bit}^{r mod bit}
    // where a is the parent on the top wire and b on the bottom wire.
    for &v in schedule.order() {
        let idx = v.index();
        let (level, r) = (idx / n, idx % n);
        if level == 0 {
            continue; // inputs
        }
        let bit = 1usize << (d - level); // the bit used between level-1 and level
        let top = r & !bit;
        let bottom = r | bit;
        let a = values[butterfly_id(d, level - 1, top).index()];
        let b = values[butterfly_id(d, level - 1, bottom).index()];
        let span = 2 * bit;
        values[idx] = if r & bit == 0 {
            a + b
        } else {
            let w = Complex::root_of_unity(span).powu(r % bit.max(1));
            (a - b) * w
        };
    }
    // Outputs appear bit-reversed at the last level.
    (0..n)
        .map(|k| values[butterfly_id(d, d, bit_reverse(k, d)).index()])
        .collect()
}

/// The FFT executed on `workers` threads through [`ic_exec::execute`]:
/// the butterfly dag's nodes become real tasks, selected by the
/// IC-optimal paired schedule; per-node values flow through `OnceLock`
/// cells under the executor's happens-before guarantee.
pub fn fft_parallel(xs: &[Complex], workers: usize) -> Vec<Complex> {
    use std::sync::OnceLock;
    let n = xs.len();
    assert!(n >= 2 && n.is_power_of_two(), "FFT length must be 2^d >= 2");
    let d = n.trailing_zeros() as usize;
    let dag = butterfly(d);
    let schedule = butterfly_schedule(d);
    let cells: Vec<OnceLock<Complex>> = (0..dag.num_nodes()).map(|_| OnceLock::new()).collect();
    ic_exec::execute(&dag, &schedule, workers, |v| {
        let idx = v.index();
        let (level, r) = (idx / n, idx % n);
        let val = if level == 0 {
            xs[r]
        } else {
            let bit = 1usize << (d - level);
            let top = r & !bit;
            let bottom = r | bit;
            let a = *cells[butterfly_id(d, level - 1, top).index()]
                .get()
                .expect("executor runs parents first");
            let b = *cells[butterfly_id(d, level - 1, bottom).index()]
                .get()
                .expect("executor runs parents first");
            let span = 2 * bit;
            if r & bit == 0 {
                a + b
            } else {
                (a - b) * Complex::root_of_unity(span).powu(r % bit)
            }
        };
        cells[idx].set(val).expect("single execution per node");
    });
    (0..n)
        .map(|k| {
            *cells[butterfly_id(d, d, bit_reverse(k, d)).index()]
                .get()
                .unwrap()
        })
        .collect()
}

/// Reverse the base-`r` digits of `i` (d digits).
fn digit_reverse(mut i: usize, r: usize, d: usize) -> usize {
    let mut out = 0usize;
    for _ in 0..d {
        out = out * r + i % r;
        i /= r;
    }
    out
}

/// The radix-`r` decimation-in-frequency FFT, executed along the
/// radix-`r` butterfly dag — the *coarse-granularity* FFT of §5.1: each
/// `K_{r,r}` block is one task computing an `r`-point DFT plus twiddles.
/// (`radix_r_fft(2, ..)` recomputes [`fft_via_butterfly`]'s transform
/// through the same dataflow at the finest granularity.)
///
/// # Panics
/// Panics unless `xs.len()` is a positive power of `r` and `r >= 2`.
pub fn radix_r_fft(r: usize, xs: &[Complex]) -> Vec<Complex> {
    assert!(r >= 2, "radix must be at least 2");
    let n = xs.len();
    let mut d = 0usize;
    let mut m = 1usize;
    while m < n {
        m *= r;
        d += 1;
    }
    assert!(
        m == n && d >= 1,
        "length must be a positive power of the radix"
    );

    let dag = ic_families::butterfly::radix_butterfly(r, d);
    let schedule = ic_families::butterfly::radix_butterfly_schedule(r, d);
    let mut values = vec![Complex::ZERO; dag.num_nodes()];
    for (i, &x) in xs.iter().enumerate() {
        values[ic_families::butterfly::radix_id(r, d, 0, i).index()] = x;
    }
    // Execute in the paired schedule order: a level-(l+1) node computes
    // its DIF output from the whole level-l group it belongs to.
    for &v in schedule.order() {
        let idx = v.index();
        let (level, row) = (idx / n, idx % n);
        if level == 0 {
            continue;
        }
        let weight = r.pow((d - level) as u32); // digit of the block below
        let j = row / weight % r; // this node's output index in its group
        let base = row - j * weight;
        // Sub-DFT size at that stage: B = r * weight; offset within the
        // block: n_off = base mod B ... the group's base coordinates.
        let block = r * weight;
        let n_off = base % block;
        let wr = Complex::root_of_unity(r);
        let wb = Complex::root_of_unity(block);
        let mut acc = Complex::ZERO;
        for k in 0..r {
            let src = ic_families::butterfly::radix_id(r, d, level - 1, base + k * weight);
            acc = acc + values[src.index()] * wr.powu(j * k);
        }
        values[idx] = acc * wb.powu(n_off * j);
    }
    // Outputs appear digit-reversed at the last level.
    (0..n)
        .map(|k| values[ic_families::butterfly::radix_id(r, d, d, digit_reverse(k, r, d)).index()])
        .collect()
}

/// Inverse DFT via the conjugate trick: `ifft(X) = conj(fft(conj(X)))/n`.
pub fn ifft_via_butterfly(xs: &[Complex]) -> Vec<Complex> {
    let n = xs.len();
    let conj: Vec<Complex> = xs.iter().map(|z| z.conj()).collect();
    fft_via_butterfly(&conj)
        .into_iter()
        .map(|z| z.conj().scale(1.0 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn bit_reversal() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 4), 0);
        assert_eq!(bit_reverse(0b1111, 4), 0b1111);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut xs = vec![Complex::ZERO; 8];
        xs[0] = Complex::ONE;
        let out = fft_via_butterfly(&xs);
        assert!(out.iter().all(|z| (*z - Complex::ONE).abs() < 1e-12));
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let xs = vec![Complex::ONE; 8];
        let out = fft_via_butterfly(&xs);
        assert!((out[0] - Complex::real(8.0)).abs() < 1e-12);
        assert!(out[1..].iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 32] {
            let xs: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin() + 0.5, (i as f64 * 0.7).cos()))
                .collect();
            let fast = fft_via_butterfly(&xs);
            let slow = dft_naive(&xs);
            assert!(close(&fast, &slow, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn ifft_round_trips() {
        let xs: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i % 7) as f64))
            .collect();
        let back = ifft_via_butterfly(&fft_via_butterfly(&xs));
        assert!(close(&back, &xs, 1e-9));
    }

    #[test]
    #[should_panic(expected = "2^d")]
    fn non_power_of_two_rejected() {
        let _ = fft_via_butterfly(&[Complex::ONE; 6]);
    }

    #[test]
    fn radix_two_matches_plain_fft() {
        let xs: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.29).sin(), i as f64 * 0.05))
            .collect();
        assert!(close(&radix_r_fft(2, &xs), &fft_via_butterfly(&xs), 1e-10));
    }

    #[test]
    fn radix_four_matches_naive_dft() {
        for n in [4usize, 16, 64] {
            let xs: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.21).cos(), (i as f64 * 0.6).sin()))
                .collect();
            assert!(
                close(&radix_r_fft(4, &xs), &dft_naive(&xs), 1e-9),
                "n = {n}"
            );
        }
    }

    #[test]
    fn radix_three_matches_naive_dft() {
        for n in [3usize, 9, 27] {
            let xs: Vec<Complex> = (0..n)
                .map(|i| Complex::new(1.0 / (i as f64 + 1.0), (i as f64 * 0.8).cos()))
                .collect();
            assert!(
                close(&radix_r_fft(3, &xs), &dft_naive(&xs), 1e-9),
                "n = {n}"
            );
        }
    }

    #[test]
    fn digit_reversal_properties() {
        assert_eq!(digit_reverse(0b011, 2, 3), 0b110);
        assert_eq!(digit_reverse(5, 3, 2), 3 * 2 + 1); // 12_3 -> 21_3
        for i in 0..27 {
            assert_eq!(digit_reverse(digit_reverse(i, 3, 3), 3, 3), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of the radix")]
    fn radix_fft_rejects_bad_lengths() {
        let _ = radix_r_fft(3, &[Complex::ONE; 8]);
    }

    #[test]
    fn parallel_fft_matches_sequential() {
        let xs: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.13).cos(), (i as f64 * 0.41).sin()))
            .collect();
        let seq = fft_via_butterfly(&xs);
        for workers in [1usize, 2, 4] {
            let par = fft_parallel(&xs, workers);
            assert!(close(&par, &seq, 1e-12), "workers = {workers}");
        }
    }
}
