//! Recursive block matrix multiplication (§7, Fig. 17).
//!
//! Equation (7.1) never invokes commutativity, so the 2×2 schema
//! multiplies block matrices recursively. We provide a dense reference
//! multiply, the recursive block algorithm (the granularity knob: the
//! recursion cutoff), and a dag-driven execution of one level of the
//! `M` dag — the 8 block products as tasks in the paper's C₄-derived
//! IC-optimal order, runnable in parallel through `ic-exec`.

use std::sync::OnceLock;

use ic_families::matmul::{matmul_dag, theorem_schedule};

/// A dense row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `n × n` zero matrix.
    pub fn zero(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Entry mutation.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Naive `O(n³)` product — the reference.
    pub fn multiply_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = Matrix::zero(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.data[i * n + k];
                if aik != 0.0 {
                    for j in 0..n {
                        out.data[i * n + j] += aik * other.data[k * n + j];
                    }
                }
            }
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Extract the `quadrant` block (`0..4`, row-major quadrants) of an
    /// even-dimension matrix.
    pub fn block(&self, quadrant: usize) -> Matrix {
        assert!(self.n.is_multiple_of(2) && quadrant < 4);
        let h = self.n / 2;
        let (r0, c0) = (quadrant / 2 * h, quadrant % 2 * h);
        Matrix::from_fn(h, |i, j| self.get(r0 + i, c0 + j))
    }

    /// Assemble from four quadrant blocks (row-major order).
    pub fn from_blocks(blocks: [&Matrix; 4]) -> Matrix {
        let h = blocks[0].n;
        assert!(blocks.iter().all(|b| b.n == h));
        let mut out = Matrix::zero(2 * h);
        for (q, b) in blocks.iter().enumerate() {
            let (r0, c0) = (q / 2 * h, q % 2 * h);
            for i in 0..h {
                for j in 0..h {
                    out.set(r0 + i, c0 + j, b.get(i, j));
                }
            }
        }
        out
    }
}

/// Recursive 2×2 block multiplication with a cutoff: below `cutoff`,
/// multiply naively; otherwise recurse by (7.1). The cutoff is the
/// granularity knob of §7.
///
/// # Panics
/// Panics unless the dimension is a power of two.
pub fn multiply_recursive(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    assert_eq!(a.n, b.n);
    assert!(
        a.n.is_power_of_two(),
        "recursive multiply needs 2^k dimension"
    );
    if a.n <= cutoff.max(1) {
        return a.multiply_naive(b);
    }
    // (A B; C D) × (E F; G H).
    let (qa, qb, qc, qd) = (a.block(0), a.block(1), a.block(2), a.block(3));
    let (qe, qf, qg, qh) = (b.block(0), b.block(1), b.block(2), b.block(3));
    let prod = |x: &Matrix, y: &Matrix| multiply_recursive(x, y, cutoff);
    let top_left = prod(&qa, &qe).add(&prod(&qb, &qg));
    let top_right = prod(&qa, &qf).add(&prod(&qb, &qh));
    let bot_left = prod(&qc, &qe).add(&prod(&qd, &qg));
    let bot_right = prod(&qc, &qf).add(&prod(&qd, &qh));
    Matrix::from_blocks([&top_left, &top_right, &bot_left, &bot_right])
}

/// Multiply by executing the `M` dag of Fig. 17: the 8 inputs load
/// blocks, the 8 product tasks run (recursive) block multiplications in
/// the C₄-derived IC-optimal order, the 4 sum tasks add — optionally on
/// `workers` threads via `ic-exec`.
///
/// # Panics
/// Panics unless the dimension is an even power of two `>= 2`.
pub fn multiply_via_dag(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
    assert_eq!(a.n, b.n);
    assert!(a.n >= 2 && a.n.is_power_of_two());
    let dag = matmul_dag();
    let schedule = theorem_schedule();
    let cells: Vec<OnceLock<Matrix>> = (0..dag.num_nodes()).map(|_| OnceLock::new()).collect();
    // Node layout (see ic_families::matmul): inputs 0..8 = A,E,C,F,B,G,D,H;
    // products 8..16 = AE,CE,CF,AF,BG,DG,DH,BH; sums 16..20.
    let input_block = |node: usize| -> Matrix {
        match node {
            0 => a.block(0), // A
            1 => b.block(0), // E
            2 => a.block(2), // C
            3 => b.block(1), // F
            4 => a.block(1), // B
            5 => b.block(2), // G
            6 => a.block(3), // D
            7 => b.block(3), // H
            _ => unreachable!(),
        }
    };
    let product_operands = [
        (0usize, 1),
        (2, 1),
        (2, 3),
        (0, 3),
        (4, 5),
        (6, 5),
        (6, 7),
        (4, 7),
    ];
    let sum_operands = [(8usize, 12), (11, 15), (9, 13), (10, 14)];
    ic_exec::execute(&dag, &schedule, workers.max(1), |v| {
        let idx = v.index();
        let val = if idx < 8 {
            input_block(idx)
        } else if idx < 16 {
            let (x, y) = product_operands[idx - 8];
            let left = cells[x].get().expect("parents ran first");
            let right = cells[y].get().expect("parents ran first");
            multiply_recursive(left, right, 16)
        } else {
            let (p, q) = sum_operands[idx - 16];
            cells[p].get().unwrap().add(cells[q].get().unwrap())
        };
        cells[idx].set(val).expect("single execution");
    });
    // Sums 16..20 are AE+BG (top-left), AF+BH (top-right), CE+DG
    // (bottom-left), CF+DH (bottom-right).
    Matrix::from_blocks([
        cells[16].get().unwrap(),
        cells[17].get().unwrap(),
        cells[18].get().unwrap(),
        cells[19].get().unwrap(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, phase: f64) -> Matrix {
        Matrix::from_fn(n, |i, j| ((i * 7 + j * 3) as f64 * phase).sin())
    }

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.dim() == b.dim()
            && (0..a.dim()).all(|i| (0..a.dim()).all(|j| (a.get(i, j) - b.get(i, j)).abs() < tol))
    }

    #[test]
    fn identity_multiplication() {
        let a = sample(8, 0.3);
        let id = Matrix::identity(8);
        assert!(close(&a.multiply_naive(&id), &a, 1e-12));
        assert!(close(&multiply_recursive(&a, &id, 2), &a, 1e-12));
    }

    #[test]
    fn recursive_matches_naive() {
        for n in [2usize, 4, 8, 16] {
            let a = sample(n, 0.37);
            let b = sample(n, 0.91);
            let naive = a.multiply_naive(&b);
            for cutoff in [1usize, 2, 4] {
                let rec = multiply_recursive(&a, &b, cutoff);
                assert!(close(&rec, &naive, 1e-9), "n = {n}, cutoff = {cutoff}");
            }
        }
    }

    #[test]
    fn dag_driven_matches_naive() {
        for n in [2usize, 4, 16] {
            let a = sample(n, 0.5);
            let b = sample(n, 1.3);
            let naive = a.multiply_naive(&b);
            for workers in [1usize, 4] {
                let via_dag = multiply_via_dag(&a, &b, workers);
                assert!(
                    close(&via_dag, &naive, 1e-9),
                    "n = {n}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn blocks_round_trip() {
        let a = sample(8, 0.7);
        let rebuilt = Matrix::from_blocks([&a.block(0), &a.block(1), &a.block(2), &a.block(3)]);
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn noncommutativity_is_respected() {
        // (7.1) must hold without commuting operands: check AB != BA
        // but both dag/naive agree on each.
        let a = sample(4, 0.21);
        let b = sample(4, 1.7);
        let ab = multiply_via_dag(&a, &b, 2);
        let ba = multiply_via_dag(&b, &a, 2);
        assert!(close(&ab, &a.multiply_naive(&b), 1e-10));
        assert!(close(&ba, &b.multiply_naive(&a), 1e-10));
        assert!(!close(&ab, &ba, 1e-6), "these matrices should not commute");
    }
}
