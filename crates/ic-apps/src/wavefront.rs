//! Wavefront computations over out-meshes (§4).
//!
//! A wavefront recurrence fills a triangular array where cell `(r, c)`
//! depends on `(r-1, c)` and `(r, c-1)` — exactly the out-mesh dag. We
//! provide a generic executor (sequential, in the IC-optimal diagonal
//! schedule, or parallel through `ic-exec`) and two instances:
//! Pascal's triangle (binomials — the canonical mesh recurrence) and a
//! smoothing stencil of the kind that arises in finite-element and
//! vision arrays.

use std::sync::OnceLock;

use ic_families::mesh::{mesh_coords, out_mesh, out_mesh_schedule};

/// Run a wavefront recurrence over the `levels`-diagonal out-mesh in
/// IC-optimal schedule order. `init` gives the apex value; `combine`
/// computes a cell from its available parents (`up` = `(r-1, c)`,
/// `left` = `(r, c-1)`; boundary cells see `None` on the missing side).
/// Returns all cell values indexed by `(r, c)` via the returned
/// coordinate list.
pub fn wavefront<T: Clone>(
    levels: usize,
    init: T,
    combine: impl Fn(usize, usize, Option<&T>, Option<&T>) -> T,
) -> (Vec<T>, Vec<(usize, usize)>) {
    let dag = out_mesh(levels);
    let coords = mesh_coords(levels);
    let schedule = out_mesh_schedule(&dag);
    // Map coordinates -> node index for parent lookups.
    let id_of = |r: usize, c: usize| -> usize {
        let k = r + c;
        k * (k + 1) / 2 + r
    };
    let mut values: Vec<Option<T>> = vec![None; dag.num_nodes()];
    for &v in schedule.order() {
        let (r, c) = coords[v.index()];
        let val = if r == 0 && c == 0 {
            init.clone()
        } else {
            let up = r.checked_sub(1).map(|ru| id_of(ru, c));
            let left = c.checked_sub(1).map(|cl| id_of(r, cl));
            let up_val = up.map(|i| values[i].as_ref().expect("parent executed"));
            let left_val = left.map(|i| values[i].as_ref().expect("parent executed"));
            combine(r, c, up_val, left_val)
        };
        values[v.index()] = Some(val);
    }
    (
        values
            .into_iter()
            .map(|v| v.expect("all cells computed"))
            .collect(),
        coords,
    )
}

/// Parallel wavefront through [`ic_exec::execute`].
pub fn wavefront_parallel<T, F>(
    levels: usize,
    init: T,
    combine: F,
    workers: usize,
) -> (Vec<T>, Vec<(usize, usize)>)
where
    T: Clone + Send + Sync,
    F: Fn(usize, usize, Option<&T>, Option<&T>) -> T + Sync,
{
    let dag = out_mesh(levels);
    let coords = mesh_coords(levels);
    let schedule = out_mesh_schedule(&dag);
    let id_of = |r: usize, c: usize| -> usize {
        let k = r + c;
        k * (k + 1) / 2 + r
    };
    let cells: Vec<OnceLock<T>> = (0..dag.num_nodes()).map(|_| OnceLock::new()).collect();
    ic_exec::execute(&dag, &schedule, workers, |v| {
        let (r, c) = coords[v.index()];
        let val = if r == 0 && c == 0 {
            init.clone()
        } else {
            let up = r
                .checked_sub(1)
                .map(|ru| cells[id_of(ru, c)].get().expect("parent ran"));
            let left = c
                .checked_sub(1)
                .map(|cl| cells[id_of(r, cl)].get().expect("parent ran"));
            combine(r, c, up, left)
        };
        cells[v.index()].set(val).ok().expect("single execution");
    });
    (
        cells
            .into_iter()
            .map(|c| c.into_inner().expect("computed"))
            .collect(),
        coords,
    )
}

/// Pascal's triangle through the mesh: cell `(r, c)` holds `C(r+c, r)`.
pub fn pascal_triangle(levels: usize) -> Vec<(usize, usize, u64)> {
    let (values, coords) = wavefront(levels, 1u64, |_, _, up, left| {
        up.copied().unwrap_or(0) + left.copied().unwrap_or(0)
    });
    coords
        .into_iter()
        .zip(values)
        .map(|((r, c), v)| (r, c, v))
        .collect()
}

/// A relaxation/smoothing stencil: each cell averages its available
/// parents and adds a source term `f(r, c)` — the shape of wavefront
/// sweeps in finite-element settings.
pub fn smoothing_sweep(levels: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let (values, _) = wavefront(levels, f(0, 0), |r, c, up, left| {
        let (sum, cnt) = match (up, left) {
            (Some(a), Some(b)) => (a + b, 2.0),
            (Some(a), None) | (None, Some(a)) => (*a, 1.0),
            (None, None) => (0.0, 1.0),
        };
        sum / cnt + f(r, c)
    });
    values
}

/// A full rectangular wavefront: the minimum-cost monotone path DP
/// (`dp[r][c] = cost[r][c] + min(dp[r-1][c], dp[r][c-1])`), executed
/// cell by cell over the [`ic_families::mesh::rect_mesh`] dag in its
/// IC-optimal wavefront order. Returns the dp table (row-major).
///
/// # Panics
/// Panics if `cost` is empty or ragged.
pub fn min_cost_path(cost: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let rows = cost.len();
    assert!(rows > 0, "empty grid");
    let cols = cost[0].len();
    assert!(
        cols > 0 && cost.iter().all(|r| r.len() == cols),
        "ragged grid"
    );
    let dag = ic_families::mesh::rect_mesh(rows, cols);
    let ids = ic_families::mesh::rect_mesh_ids(rows, cols);
    let schedule = ic_families::mesh::rect_mesh_schedule(&dag);
    // Invert the id map once.
    let mut coord = vec![(0usize, 0usize); rows * cols];
    for (r, row) in ids.iter().enumerate() {
        for (c, &id) in row.iter().enumerate() {
            coord[id.index()] = (r, c);
        }
    }
    let mut dp = vec![vec![0.0f64; cols]; rows];
    for &v in schedule.order() {
        let (r, c) = coord[v.index()];
        let up = r.checked_sub(1).map(|ru| dp[ru][c]);
        let left = c.checked_sub(1).map(|cl| dp[r][cl]);
        let best = match (up, left) {
            (None, None) => 0.0,
            (Some(a), None) | (None, Some(a)) => a,
            (Some(a), Some(b)) => a.min(b),
        };
        dp[r][c] = cost[r][c] + best;
    }
    dp
}

/// Brute-force reference for [`min_cost_path`]: enumerate every
/// monotone path (exponential; small grids only).
pub fn min_cost_path_reference(cost: &[Vec<f64>]) -> f64 {
    fn go(cost: &[Vec<f64>], r: usize, c: usize) -> f64 {
        let here = cost[r][c];
        if r == 0 && c == 0 {
            return here;
        }
        let mut best = f64::INFINITY;
        if r > 0 {
            best = best.min(go(cost, r - 1, c));
        }
        if c > 0 {
            best = best.min(go(cost, r, c - 1));
        }
        here + best
    }
    go(cost, cost.len() - 1, cost[0].len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: u64, k: u64) -> u64 {
        let k = k.min(n - k);
        let mut acc = 1u64;
        for i in 0..k {
            acc = acc * (n - i) / (i + 1);
        }
        acc
    }

    #[test]
    fn pascal_matches_binomials() {
        for (r, c, v) in pascal_triangle(10) {
            assert_eq!(v, binomial((r + c) as u64, r as u64), "({r},{c})");
        }
    }

    #[test]
    fn parallel_wavefront_matches_sequential() {
        let combine = |_r: usize, _c: usize, up: Option<&u64>, left: Option<&u64>| {
            up.copied().unwrap_or(0) + left.copied().unwrap_or(0)
        };
        let (seq, _) = wavefront(12, 1u64, combine);
        for workers in [1usize, 2, 4] {
            let (par, _) = wavefront_parallel(12, 1u64, combine, workers);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn smoothing_is_deterministic_and_finite() {
        let out = smoothing_sweep(8, |r, c| (r as f64 - c as f64) * 0.25);
        assert_eq!(out.len(), 8 * 9 / 2);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn min_cost_path_matches_brute_force() {
        let mut s = 0xC057u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 100) as f64 / 10.0
        };
        for (rows, cols) in [(1usize, 1usize), (2, 3), (4, 4), (3, 6)] {
            let cost: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| next()).collect())
                .collect();
            let dp = min_cost_path(&cost);
            let brute = min_cost_path_reference(&cost);
            assert!(
                (dp[rows - 1][cols - 1] - brute).abs() < 1e-9,
                "{rows}x{cols}: {} vs {brute}",
                dp[rows - 1][cols - 1]
            );
        }
    }

    #[test]
    fn min_cost_path_prefers_cheap_rows() {
        // Zero top row + zero right column vs expensive interior.
        let cost = vec![
            vec![0.0, 0.0, 0.0],
            vec![9.0, 9.0, 0.0],
            vec![9.0, 9.0, 0.0],
        ];
        let dp = min_cost_path(&cost);
        assert_eq!(dp[2][2], 0.0);
    }

    #[test]
    fn single_cell_wavefront() {
        let (values, coords) = wavefront(1, 42u64, |_, _, _, _| unreachable!());
        assert_eq!(values, vec![42]);
        assert_eq!(coords, vec![(0, 0)]);
    }
}
