//! Adaptive-quadrature numerical integration (§3.2).
//!
//! The expansive phase recursively splits `[a, b]` wherever a one-panel
//! approximation disagrees with the two-panel refinement by more than
//! the tolerance, producing a (possibly quite irregular) binary
//! out-tree whose leaves carry accepted panel areas; the dual in-tree
//! accumulates the areas — an expansion–reduction diamond. We build the
//! actual tree, form the diamond dag, execute its IC-optimal schedule,
//! and return the integral.

use ic_families::diamond::{diamond_from_out_tree, Diamond};
use ic_families::trees::out_tree_from_parents;
use ic_sched::SchedError;

/// The quadrature rule used for a single panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Linear approximation: `(f(a) + f(b)) (b - a) / 2`.
    Trapezoid,
    /// Quadratic approximation:
    /// `(f(a) + 4 f((a+b)/2) + f(b)) (b - a) / 6`.
    Simpson,
}

impl Rule {
    fn panel(&self, f: &dyn Fn(f64) -> f64, a: f64, b: f64) -> f64 {
        match self {
            Rule::Trapezoid => 0.5 * (f(a) + f(b)) * (b - a),
            Rule::Simpson => (f(a) + 4.0 * f(0.5 * (a + b)) + f(b)) * (b - a) / 6.0,
        }
    }
}

/// The result of an adaptive quadrature run.
#[derive(Debug)]
pub struct Quadrature {
    /// The integral estimate (accumulated through the diamond dag).
    pub value: f64,
    /// The expansion–reduction diamond representing the computation.
    pub diamond: Diamond,
    /// Per-tree-node intervals `(a, b)`, indexed by tree node id.
    pub intervals: Vec<(f64, f64)>,
    /// Number of leaf panels accepted.
    pub panels: usize,
}

/// Integrate `f` over `[a, b]` adaptively. A node splits when its
/// one-panel area differs from the two-half refinement by more than
/// `tol` (scaled to the subinterval); recursion is capped at
/// `max_depth`.
///
/// Returns the estimate together with the computation's diamond dag,
/// whose execution (in IC-optimal order) produced the value.
///
/// # Panics
/// Panics if `a >= b` or `tol <= 0`.
pub fn integrate_adaptive(
    f: impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
    rule: Rule,
) -> Result<Quadrature, SchedError> {
    assert!(a < b, "interval must be nonempty");
    assert!(tol > 0.0, "tolerance must be positive");
    let f = &f;

    // Expansion: build the out-tree breadth-first.
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut intervals: Vec<(f64, f64)> = vec![(a, b)];
    let mut depth: Vec<usize> = vec![0];
    let mut accepted: Vec<Option<f64>> = vec![None];
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(v) = queue.pop_front() {
        let (lo, hi) = intervals[v];
        let mid = 0.5 * (lo + hi);
        let coarse = rule.panel(f, lo, hi);
        let fine = rule.panel(f, lo, mid) + rule.panel(f, mid, hi);
        let local_tol = tol * (hi - lo) / (b - a);
        if (coarse - fine).abs() <= local_tol || depth[v] >= max_depth {
            accepted[v] = Some(fine);
        } else {
            for (l, h) in [(lo, mid), (mid, hi)] {
                parents.push(Some(v));
                intervals.push((l, h));
                depth.push(depth[v] + 1);
                accepted.push(None);
                queue.push_back(parents.len() - 1);
            }
        }
    }
    let tree = out_tree_from_parents(&parents)?;
    let diamond = diamond_from_out_tree(&tree)?;
    let schedule = diamond.ic_schedule()?;

    // Reduction: execute the diamond. Leaves carry accepted areas; the
    // in-tree portion sums children.
    let ndag = diamond.dag.num_nodes();
    let mut values: Vec<Option<f64>> = vec![None; ndag];
    // The shared (merged leaf) diamond nodes, seeded with panel areas.
    let mut leaf_area: Vec<Option<f64>> = vec![None; ndag];
    for u in diamond.tree.sinks() {
        leaf_area[diamond.out_map[u.index()].index()] =
            Some(accepted[u.index()].expect("leaves carry accepted areas"));
    }
    for &v in schedule.order() {
        let idx = v.index();
        // Only the reductive side carries values: leaves are seeded with
        // their accepted areas; in-tree nodes sum their parents. The
        // expansive copies (whose values stay None) represent interval
        // bookkeeping and contribute nothing to the total.
        if let Some(area) = leaf_area[idx] {
            values[idx] = Some(area);
            continue;
        }
        let mut val = 0.0f64;
        let mut have = false;
        for &p in diamond.dag.parents(v) {
            if let Some(x) = values[p.index()] {
                val += x;
                have = true;
            }
        }
        values[idx] = if have { Some(val) } else { None };
    }
    let sink = diamond
        .dag
        .sinks()
        .next()
        .expect("a diamond has a unique sink");
    let value = values[sink.index()].expect("the sink accumulates the total");
    let panels = accepted.iter().flatten().count();
    Ok(Quadrature {
        value,
        diamond,
        intervals,
        panels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_a_line_exactly() {
        // ∫₀¹ x dx = 1/2; the trapezoid rule is exact, so no splits.
        let q = integrate_adaptive(|x| x, 0.0, 1.0, 1e-9, 20, Rule::Trapezoid).unwrap();
        assert!((q.value - 0.5).abs() < 1e-12);
        assert_eq!(q.panels, 1);
        assert_eq!(q.diamond.tree.num_nodes(), 1);
    }

    #[test]
    fn integrates_a_parabola() {
        // ∫₀¹ x² dx = 1/3.
        let q = integrate_adaptive(|x| x * x, 0.0, 1.0, 1e-7, 24, Rule::Trapezoid).unwrap();
        assert!((q.value - 1.0 / 3.0).abs() < 1e-6, "got {}", q.value);
        assert!(q.panels > 1, "a parabola forces splitting under trapezoid");
    }

    #[test]
    fn simpson_is_exact_for_cubics() {
        // Simpson integrates cubics exactly: ∫₀² x³ dx = 4.
        let q = integrate_adaptive(|x| x * x * x, 0.0, 2.0, 1e-9, 20, Rule::Simpson).unwrap();
        assert!((q.value - 4.0).abs() < 1e-9);
        assert_eq!(q.panels, 1);
    }

    #[test]
    fn integrates_sine() {
        // ∫₀^π sin = 2.
        let q = integrate_adaptive(f64::sin, 0.0, std::f64::consts::PI, 1e-8, 30, Rule::Simpson)
            .unwrap();
        assert!((q.value - 2.0).abs() < 1e-6, "got {}", q.value);
    }

    #[test]
    fn irregular_function_builds_irregular_tree() {
        // √x has a singular derivative at 0: the tree splits deeply near
        // the origin and stays shallow on the right.
        let q = integrate_adaptive(f64::sqrt, 0.0, 1.0, 1e-7, 30, Rule::Simpson).unwrap();
        // Exact: ∫₀¹ √x = 2/3.
        assert!((q.value - 2.0 / 3.0).abs() < 1e-5, "got {}", q.value);
        // The tree is a genuine (irregular) expansion: deeper on the
        // left leaf than on the rightmost.
        assert!(q.diamond.tree.num_nodes() > 3);
        let depths = ic_dag::traversal::levels(&q.diamond.tree);
        let max_depth = depths.iter().copied().max().unwrap();
        assert!(max_depth >= 3);
        // The leftmost accepted interval is far narrower than the
        // rightmost: irregularity in action.
        let widths: Vec<f64> = q
            .diamond
            .tree
            .sinks()
            .map(|v| {
                let (lo, hi) = q.intervals[v.index()];
                hi - lo
            })
            .collect();
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(0.0, f64::max);
        assert!(max / min >= 4.0, "widths should vary: {min} vs {max}");
    }

    #[test]
    fn value_equals_sum_of_panels() {
        let q = integrate_adaptive(|x| x.exp(), 0.0, 1.0, 1e-6, 20, Rule::Trapezoid).unwrap();
        assert!((q.value - (1f64.exp() - 1.0)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_interval_rejected() {
        let _ = integrate_adaptive(|x| x, 1.0, 0.0, 1e-6, 10, Rule::Trapezoid);
    }
}
