//! # `ic-apps` — the paper's applicative computations, executed
//!
//! Each module takes one of the computations the paper uses to motivate
//! a dag family, builds the family's dag, attaches real task semantics,
//! executes it (sequentially in schedule order, or in parallel through
//! `ic-exec`), and checks the result against an independent reference:
//!
//! | module | computation | paper section |
//! |---|---|---|
//! | [`integration`] | adaptive-quadrature numerical integration (Trapezoid & Simpson) over an irregular diamond dag | §3.2 |
//! | [`wavefront`] | wavefront recurrences (Pascal's triangle, custom stencils) over out-meshes | §4 |
//! | [`sorting`] | comparator-network (bitonic) sorting | §5.2 |
//! | [`fft`], [`poly`] | FFT over the butterfly network; polynomial multiplication by convolution | §5.2 |
//! | [`scan`] | parallel prefix over any associative op: integer powers, complex powers, boolean-matrix powers | §6.1 |
//! | [`dlt`] | the Discrete Laplace Transform, by both generation strategies | §6.2.1 |
//! | [`graphpaths`] | all path lengths in a graph via logical matrix powers | §6.2.2 |
//! | [`matmul`] | recursive 2×2 block matrix multiplication | §7 |
//!
//! Shared numeric scaffolding (complex arithmetic, boolean matrices)
//! lives in [`numeric`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod dlt;
pub mod fft;
pub mod graphpaths;
pub mod integration;
pub mod matmul;
pub mod numeric;
pub mod poly;
pub mod scan;
pub mod sorting;
pub mod wavefront;
