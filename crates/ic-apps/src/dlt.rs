//! The Discrete Laplace Transform (Z-Transform), §6.2.1.
//!
//! `y_k(ω) = Σ_{i=0}^{n-1} x_i ω^{ik}` (6.4), computed two ways — the
//! paper presents both because they trade generator structure for
//! in-tree balance, and both admit IC-optimal schedules:
//!
//! * **via parallel prefix** (`L_n`, Fig. 13): a `P_n` dag over complex
//!   multiplication turns `⟨1, ω^k, ..., ω^k⟩` into
//!   `⟨1, ω^k, ω^{2k}, ..., ω^{(n-1)k}⟩`; the accumulation in-tree's
//!   sources multiply by `x_i` and the tree sums;
//! * **via a ternary out-tree** (`L'_n`, Fig. 15): the powers are
//!   generated down a `V₃`-built out-tree whose leaves hold
//!   `ω^{k}, ..., ω^{(n-1)k}`; the in-tree's leftmost source handles the
//!   `x_0 ω^0` term directly.
//!
//! Both are cross-validated against direct evaluation of (6.4).

use crate::numeric::Complex;
use crate::scan::scan_via_dag;
use ic_families::dlt::dlt_vee3;
use ic_families::trees::out_tree_schedule;

/// Direct evaluation of (6.4): the reference.
pub fn dlt_direct(xs: &[Complex], omega: Complex, k: usize) -> Complex {
    let wk = omega.powu(k);
    let mut acc = Complex::ZERO;
    let mut pw = Complex::ONE;
    for &x in xs {
        acc = acc + x * pw;
        pw = pw * wk;
    }
    acc
}

/// `y_k(ω)` via the `L_n` dag (parallel-prefix power generation then
/// in-tree accumulation). `xs.len()` must be a power of two.
pub fn dlt_via_prefix(xs: &[Complex], omega: Complex, k: usize) -> Complex {
    let n = xs.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two >= 2"
    );
    let wk = omega.powu(k);
    // Inclusive scan of ⟨1, ω^k, ω^k, ...⟩ = ⟨1, ω^k, ω^{2k}, ...⟩,
    // computed through P_n in IC-optimal order.
    let mut inputs = vec![wk; n];
    inputs[0] = Complex::ONE;
    let powers = scan_via_dag(&inputs, |a, b| *a * *b);
    // The in-tree sources multiply x_i by the received power; the tree
    // sums pairwise (complex addition is associative, so the balanced
    // reduction is exact up to f64 rounding).
    let mut level: Vec<Complex> = xs.iter().zip(&powers).map(|(&x, &p)| x * p).collect();
    while level.len() > 1 {
        level = level.chunks(2).map(|c| c[0] + c[1]).collect();
    }
    level[0]
}

/// `y_k(ω)` via the `L'_n` dag: powers generated down the ternary
/// out-tree, leaves feeding the in-tree sources `1..n`; the leftmost
/// source contributes `x_0` directly.
pub fn dlt_via_vee3(xs: &[Complex], omega: Complex, k: usize) -> Complex {
    let n = xs.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two >= 2"
    );
    let lp = dlt_vee3(n);
    let wk = omega.powu(k);

    // Generator phase: walk the ternary out-tree in (IC-optimal) order.
    // Each node holds a power of ω^k; the j-th leaf (in id order) ends
    // up holding ω^{(j+1)k}: the tree distributes the exponents 1..n-1
    // to its leaves (the §6.2.1 "w, x0, x1, x2 represent powers of ω^k"
    // semantics, realized as exponent bookkeeping plus one complex
    // multiplication per node).
    let gen = &lp.generator;
    let order = out_tree_schedule(gen);
    let leaves: Vec<ic_dag::NodeId> = gen.sinks().collect();
    let mut exponent = vec![0usize; gen.num_nodes()];
    for (j, &leaf) in leaves.iter().enumerate() {
        exponent[leaf.index()] = j + 1;
    }
    // Interior nodes hold the minimum exponent of their subtree (the
    // value they forward); compute by upward propagation, then evaluate
    // each node's power in schedule order (each evaluation is one task).
    for v in order.order().iter().rev() {
        if !gen.is_sink(*v) {
            exponent[v.index()] = gen
                .children(*v)
                .iter()
                .map(|c| exponent[c.index()])
                .min()
                .expect("internal nodes have children");
        }
    }
    let mut value = vec![Complex::ZERO; gen.num_nodes()];
    for &v in order.order() {
        value[v.index()] = wk.powu(exponent[v.index()]);
    }

    // Accumulation phase: source 0 contributes x_0; leaf j contributes
    // x_{j+1} · ω^{(j+1)k}; the in-tree sums.
    let mut level: Vec<Complex> = Vec::with_capacity(n);
    level.push(xs[0]);
    for (j, &leaf) in leaves.iter().enumerate() {
        level.push(xs[j + 1] * value[leaf.index()]);
    }
    while level.len() > 1 {
        level = level.chunks(2).map(|c| c[0] + c[1]).collect();
    }
    level[0]
}

/// The full transform: `⟨y_0(ω), ..., y_{m-1}(ω)⟩` via the prefix
/// algorithm.
pub fn dlt_transform(xs: &[Complex], omega: Complex, m: usize) -> Vec<Complex> {
    (0..m).map(|k| dlt_via_prefix(xs, omega, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_families::dlt::ternary_out_tree;

    fn sample(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.61).cos(), (i as f64) * 0.25 - 1.0))
            .collect()
    }

    #[test]
    fn prefix_dlt_matches_direct() {
        let xs = sample(8);
        let omega = Complex::cis(0.37);
        for k in 0..8 {
            let a = dlt_via_prefix(&xs, omega, k);
            let b = dlt_direct(&xs, omega, k);
            assert!((a - b).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn vee3_dlt_matches_direct() {
        let xs = sample(8);
        let omega = Complex::cis(-1.1);
        for k in 0..8 {
            let a = dlt_via_vee3(&xs, omega, k);
            let b = dlt_direct(&xs, omega, k);
            assert!((a - b).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn both_algorithms_agree() {
        let xs = sample(16);
        let omega = Complex::cis(0.9);
        for k in [0usize, 1, 5, 15] {
            let a = dlt_via_prefix(&xs, omega, k);
            let b = dlt_via_vee3(&xs, omega, k);
            assert!((a - b).abs() < 1e-8, "k = {k}");
        }
    }

    #[test]
    fn k_zero_is_plain_sum() {
        let xs = sample(4);
        let omega = Complex::cis(2.2);
        let sum = xs.iter().fold(Complex::ZERO, |a, &b| a + b);
        assert!((dlt_via_prefix(&xs, omega, 0) - sum).abs() < 1e-12);
    }

    #[test]
    fn dlt_at_roots_of_unity_is_dft() {
        // With ω = e^{-2πi/n}, the DLT vector is the DFT.
        let xs = sample(8);
        let omega = Complex::root_of_unity(8);
        let via_dlt = dlt_transform(&xs, omega, 8);
        let via_fft = crate::fft::fft_via_butterfly(&xs);
        for (a, b) in via_dlt.iter().zip(&via_fft) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn leaf_exponents_cover_one_to_n_minus_one() {
        // The ternary generator must hand each in-tree source a distinct
        // power.
        let t = ternary_out_tree(7);
        assert_eq!(t.num_sinks(), 7);
    }
}
