//! Parallel prefix (scan) over any associative operation (§6.1).
//!
//! The `*`-parallel prefix of `⟨x_1, ..., x_n⟩` is
//! `⟨x_1, x_1*x_2, ..., x_1*...*x_n⟩`. The dag `P_n` of
//! [`ic_families::prefix`] realizes the `O(log n)`-step algorithm; here
//! we attach the actual value flow (cells either pass through or
//! combine `x[i - 2^j] * x[i]`) and drive it either sequentially in
//! IC-optimal schedule order or in parallel through `ic-exec`.
//!
//! The §6.1 instances — integer powers, complex powers, and logical
//! matrix powers — are provided as ready-made wrappers.

use std::sync::OnceLock;

use ic_families::prefix::{parallel_prefix, prefix_id, prefix_rows, prefix_schedule};

use crate::numeric::{BoolMatrix, Complex};

/// Reference implementation: the sequential left fold.
pub fn scan_sequential<T: Clone>(xs: &[T], op: impl Fn(&T, &T) -> T) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        let next = match out.last() {
            None => x.clone(),
            Some(prev) => op(prev, x),
        };
        out.push(next);
    }
    out
}

/// Compute the `op`-parallel prefix of `xs` by executing the dag `P_n`
/// in its IC-optimal schedule order (sequentially).
///
/// ```
/// use ic_apps::scan::scan_via_dag;
/// let sums = scan_via_dag(&[1, 2, 3, 4, 5], |a, b| a + b);
/// assert_eq!(sums, vec![1, 3, 6, 10, 15]);
/// ```
///
/// # Panics
/// Panics if `xs` is empty.
pub fn scan_via_dag<T: Clone>(xs: &[T], op: impl Fn(&T, &T) -> T) -> Vec<T> {
    let n = xs.len();
    assert!(n > 0, "scan of an empty vector");
    if n == 1 {
        return vec![xs[0].clone()];
    }
    let dag = parallel_prefix(n);
    let schedule = prefix_schedule(n);
    let rows = prefix_rows(n);
    let mut values: Vec<Option<T>> = vec![None; dag.num_nodes()];
    for &v in schedule.order() {
        let idx = v.index();
        let (row, cell) = (idx / n, idx % n);
        let val = if row == 0 {
            xs[cell].clone()
        } else {
            let shift = 1usize << (row - 1);
            let below = values[prefix_id(n, row - 1, cell).index()]
                .as_ref()
                .expect("schedule order guarantees parents first");
            if cell >= shift {
                let left = values[prefix_id(n, row - 1, cell - shift).index()]
                    .as_ref()
                    .expect("parent executed");
                op(left, below)
            } else {
                below.clone()
            }
        };
        values[idx] = Some(val);
    }
    (0..n)
        .map(|i| {
            values[prefix_id(n, rows - 1, i).index()]
                .take()
                .expect("all cells computed")
        })
        .collect()
}

/// Compute the `op`-parallel prefix of `xs` by running the `P_n` dag on
/// `workers` threads through [`ic_exec::execute`], tasks selected by the
/// IC-optimal schedule.
pub fn scan_parallel<T, F>(xs: &[T], op: F, workers: usize) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let n = xs.len();
    assert!(n > 0, "scan of an empty vector");
    if n == 1 {
        return vec![xs[0].clone()];
    }
    let dag = parallel_prefix(n);
    let schedule = prefix_schedule(n);
    let rows = prefix_rows(n);
    let cells: Vec<OnceLock<T>> = (0..dag.num_nodes()).map(|_| OnceLock::new()).collect();
    ic_exec::execute(&dag, &schedule, workers, |v| {
        let idx = v.index();
        let (row, cell) = (idx / n, idx % n);
        let val = if row == 0 {
            xs[cell].clone()
        } else {
            let shift = 1usize << (row - 1);
            let below = cells[prefix_id(n, row - 1, cell).index()]
                .get()
                .expect("executor runs parents first");
            if cell >= shift {
                let left = cells[prefix_id(n, row - 1, cell - shift).index()]
                    .get()
                    .expect("executor runs parents first");
                op(left, below)
            } else {
                below.clone()
            }
        };
        cells[idx].set(val).ok().expect("each task runs once");
    });
    (0..n)
        .map(|i| {
            cells[prefix_id(n, rows - 1, i).index()]
                .get()
                .cloned()
                .unwrap()
        })
        .collect()
}

/// §6.1 instance 1: the first `n` powers `N, N², ..., Nⁿ` of an integer,
/// via `*` = wrapping multiplication.
pub fn integer_powers(base: u64, n: usize) -> Vec<u64> {
    scan_via_dag(&vec![base; n], |a, b| a.wrapping_mul(*b))
}

/// §6.1 instance 2: the first `n` powers of a complex number.
pub fn complex_powers(omega: Complex, n: usize) -> Vec<Complex> {
    scan_via_dag(&vec![omega; n], |a, b| *a * *b)
}

/// §6.1 instance 3: the first `n` logical powers `A, A², ..., Aⁿ` of a
/// boolean adjacency matrix.
pub fn boolean_matrix_powers(a: &BoolMatrix, n: usize) -> Vec<BoolMatrix> {
    scan_via_dag(&vec![a.clone(); n], |x, y| x.logical_mul(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_scan_matches_sequential_sum() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let xs: Vec<i64> = (1..=n as i64).collect();
            let expect = scan_sequential(&xs, |a, b| a + b);
            let got = scan_via_dag(&xs, |a, b| a + b);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn dag_scan_with_noncommutative_op() {
        // String concatenation is associative but not commutative — the
        // scan must preserve operand order.
        let xs: Vec<String> = ["a", "b", "c", "d", "e"].map(String::from).to_vec();
        let got = scan_via_dag(&xs, |a, b| format!("{a}{b}"));
        assert_eq!(got.last().unwrap(), "abcde");
        assert_eq!(got[2], "abc");
    }

    #[test]
    fn parallel_scan_matches() {
        let xs: Vec<i64> = (1..=24).map(|i| i * i - 3).collect();
        let expect = scan_sequential(&xs, |a, b| a + b);
        for workers in [1usize, 2, 4] {
            let got = scan_parallel(&xs, |a, b| a + b, workers);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn integer_power_generation() {
        let powers = integer_powers(3, 6);
        assert_eq!(powers, vec![3, 9, 27, 81, 243, 729]);
    }

    #[test]
    fn complex_power_generation() {
        let i = Complex::new(0.0, 1.0);
        let powers = complex_powers(i, 4);
        assert!((powers[0] - i).abs() < 1e-12);
        assert!((powers[1] - Complex::real(-1.0)).abs() < 1e-12);
        assert!((powers[3] - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn boolean_matrix_power_generation() {
        // Directed 4-cycle: A^4 = I on the cycle relation.
        let a = BoolMatrix::from_entries(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let powers = boolean_matrix_powers(&a, 4);
        assert_eq!(powers[0], a);
        assert_eq!(powers[3], BoolMatrix::identity(4));
        // A² has exactly the distance-2 pairs.
        assert!(powers[1].get(0, 2) && powers[1].get(2, 0));
        assert!(!powers[1].get(0, 1));
    }

    #[test]
    fn scan_of_single_element() {
        assert_eq!(scan_via_dag(&[42i64], |a, b| a + b), vec![42]);
    }

    #[test]
    fn min_scan() {
        let xs = [5i64, 3, 8, 1, 9, 2];
        let got = scan_via_dag(&xs, |a, b| (*a).min(*b));
        assert_eq!(got, vec![5, 3, 3, 1, 1, 1]);
    }
}
