//! Shared numeric scaffolding: complex arithmetic and boolean matrices.
//!
//! Implemented here rather than pulled from crates.io — the paper's
//! computations only need a handful of operations, and the workspace
//! policy is to build its substrates.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number (f64 components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The real number `x`.
    pub const fn real(x: f64) -> Self {
        Complex::new(x, 0.0)
    }

    /// Multiplicative identity.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// Additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// The primitive `n`-th root of unity `e^{-2πi/n}` used by the
    /// forward FFT.
    pub fn root_of_unity(n: usize) -> Self {
        Complex::cis(-2.0 * std::f64::consts::PI / n as f64)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `self^k` by repeated squaring.
    pub fn powu(self, mut k: usize) -> Self {
        let mut base = self;
        let mut acc = Complex::ONE;
        while k > 0 {
            if k & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            k >>= 1;
        }
        acc
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// A dense square boolean matrix, bit-packed by rows — the adjacency
/// matrices of §6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// The `n × n` all-zero matrix.
    pub fn zero(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BoolMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = BoolMatrix::zero(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Build from an adjacency list of (row, col) true entries.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut m = BoolMatrix::zero(n);
        for &(i, j) in entries {
            m.set(i, j, true);
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Get entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Set entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Logical matrix product: `(self ∧ other)` with OR-accumulation —
    /// the §6.1 "logical matrix multiplication".
    pub fn logical_mul(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let wpr = self.words_per_row;
        let mut out = BoolMatrix::zero(n);
        for i in 0..n {
            let out_row = i * wpr;
            for k in 0..n {
                if self.get(i, k) {
                    let other_row = k * wpr;
                    for w in 0..wpr {
                        out.bits[out_row + w] |= other.bits[other_row + w];
                    }
                }
            }
        }
        out
    }

    /// Elementwise OR.
    pub fn or(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n);
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::real(-1.0));
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert_eq!(z + z.conj(), Complex::real(6.0));
        assert_eq!(-z, Complex::new(-3.0, -4.0));
        assert_eq!(z - z, Complex::ZERO);
    }

    #[test]
    fn complex_powers() {
        let i = Complex::new(0.0, 1.0);
        let p4 = i.powu(4);
        assert!((p4 - Complex::ONE).abs() < 1e-12);
        assert_eq!(Complex::real(2.0).powu(10), Complex::real(1024.0));
        assert_eq!(Complex::real(7.0).powu(0), Complex::ONE);
    }

    #[test]
    fn roots_of_unity() {
        let w = Complex::root_of_unity(8);
        assert!((w.powu(8) - Complex::ONE).abs() < 1e-12);
        assert!((w.powu(4) + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn bool_matrix_basics() {
        let mut m = BoolMatrix::zero(3);
        assert!(!m.get(1, 2));
        m.set(1, 2, true);
        assert!(m.get(1, 2));
        m.set(1, 2, false);
        assert!(!m.get(1, 2));
        let id = BoolMatrix::identity(3);
        assert!(id.get(0, 0) && id.get(2, 2) && !id.get(0, 1));
    }

    #[test]
    fn logical_multiplication_is_path_composition() {
        // 0 -> 1 -> 2: A² must contain exactly (0, 2).
        let a = BoolMatrix::from_entries(3, &[(0, 1), (1, 2)]);
        let a2 = a.logical_mul(&a);
        assert!(a2.get(0, 2));
        assert!(!a2.get(0, 1));
        assert!(!a2.get(1, 2));
        // A · I = A.
        let id = BoolMatrix::identity(3);
        assert_eq!(a.logical_mul(&id), a);
        assert_eq!(id.logical_mul(&a), a);
    }

    #[test]
    fn logical_mul_wide_matrix() {
        // Exercise multi-word rows (n > 64).
        let n = 70;
        let mut a = BoolMatrix::zero(n);
        for i in 0..n - 1 {
            a.set(i, i + 1, true);
        }
        let a2 = a.logical_mul(&a);
        assert!(a2.get(0, 2));
        assert!(a2.get(67, 69));
        assert!(!a2.get(0, 1));
    }

    #[test]
    fn or_combines() {
        let a = BoolMatrix::from_entries(2, &[(0, 0)]);
        let b = BoolMatrix::from_entries(2, &[(1, 1)]);
        assert_eq!(a.or(&b), BoolMatrix::identity(2));
    }
}
