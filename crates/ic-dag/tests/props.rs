//! Property tests for the dag algebra: composition, quotients, sums,
//! duality, and down-set enumeration.

use proptest::prelude::*;

use ic_dag::builder::from_arcs;
use ic_dag::ideals::IdealEnumerator;
use ic_dag::traversal::{height, is_topological, levels, topological_order};
use ic_dag::{compose, dual, quotient, sum, Dag, NodeId};

fn arb_dag(max_n: usize, density: u32) -> impl Strategy<Value = Dag> {
    (1..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let flags = proptest::collection::vec(0u32..100, pairs.len());
        flags.prop_map(move |fs| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&fs)
                .filter(|(_, &f)| f < density)
                .map(|(&p, _)| p)
                .collect();
            from_arcs(n, &arcs).expect("forward arcs cannot form cycles")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sums preserve both operands' structure exactly.
    #[test]
    fn sum_preserves_structure(a in arb_dag(10, 40), b in arb_dag(10, 40)) {
        let s = sum(&a, &b);
        prop_assert_eq!(s.dag.num_nodes(), a.num_nodes() + b.num_nodes());
        prop_assert_eq!(s.dag.num_arcs(), a.num_arcs() + b.num_arcs());
        for (u, v) in a.arcs() {
            prop_assert!(s.dag.has_arc(s.left_map[u.index()], s.left_map[v.index()]));
        }
        for (u, v) in b.arcs() {
            prop_assert!(s.dag.has_arc(s.right_map[u.index()], s.right_map[v.index()]));
        }
    }

    /// Composition merges exactly the paired nodes, preserves all arcs
    /// under the provenance maps, and never creates cycles.
    #[test]
    fn compose_provenance_is_exact(a in arb_dag(10, 40), b in arb_dag(10, 40), k in 0usize..4) {
        let sinks: Vec<NodeId> = a.sinks().collect();
        let sources: Vec<NodeId> = b.sources().collect();
        let k = k.min(sinks.len()).min(sources.len());
        let pairing: Vec<(NodeId, NodeId)> =
            sinks.into_iter().take(k).zip(sources.into_iter().take(k)).collect();
        let c = compose(&a, &b, &pairing).unwrap();
        prop_assert_eq!(c.dag.num_nodes(), a.num_nodes() + b.num_nodes() - k);
        for (u, v) in a.arcs() {
            prop_assert!(c.dag.has_arc(c.left_map[u.index()], c.left_map[v.index()]));
        }
        for (u, v) in b.arcs() {
            prop_assert!(c.dag.has_arc(c.right_map[u.index()], c.right_map[v.index()]));
        }
        for &(s, t) in &pairing {
            prop_assert_eq!(c.left_map[s.index()], c.right_map[t.index()]);
        }
    }

    /// The dual reverses every arc, swaps degree roles, and preserves
    /// heights.
    #[test]
    fn dual_reverses_arcs(g in arb_dag(12, 40)) {
        let d = dual(&g);
        for (u, v) in g.arcs() {
            prop_assert!(d.has_arc(v, u));
            prop_assert!(!d.has_arc(u, v) || g.has_arc(v, u));
        }
        prop_assert_eq!(height(&d), height(&g));
    }

    /// Kahn's order is a topological order, and levels are consistent
    /// with it (parents at strictly smaller levels).
    #[test]
    fn traversal_invariants(g in arb_dag(14, 40)) {
        let order = topological_order(&g);
        prop_assert!(is_topological(&g, &order));
        let lvl = levels(&g);
        for (u, v) in g.arcs() {
            prop_assert!(lvl[u.index()] < lvl[v.index()]);
        }
        let h = height(&g);
        prop_assert!(lvl.iter().all(|&l| l < h.max(1)));
    }

    /// Down-set counts are bracketed by `n + 1` (a chain) and `2^n`
    /// (an antichain), and every reported state is predecessor-closed.
    #[test]
    fn ideal_enumeration_is_sound(g in arb_dag(10, 40)) {
        let n = g.num_nodes();
        let en = IdealEnumerator::new(&g).unwrap();
        let mut count = 0u64;
        let mut sound = true;
        en.for_each(|state, size, elig| {
            count += 1;
            sound &= state.count_ones() == size;
            // Predecessor-closed: every member's parents are members;
            // eligible nodes are unexecuted.
            for i in 0..n {
                if state >> i & 1 == 1 {
                    for p in g.parents(NodeId::new(i)) {
                        sound &= state >> p.index() & 1 == 1;
                    }
                }
                if elig >> i & 1 == 1 {
                    sound &= state >> i & 1 == 0;
                }
            }
        });
        prop_assert!(sound, "an enumerated state was not a valid down-set");
        prop_assert!(count > n as u64);
        prop_assert!(count <= 1u64 << n);
    }

    /// Quotients by any contiguous monotone (level-based) clustering
    /// partition the nodes and preserve inter-cluster reachability.
    #[test]
    fn quotient_partitions(g in arb_dag(12, 40), k in 1usize..5) {
        let lvl = levels(&g);
        let assignment_raw: Vec<u32> = lvl.iter().map(|&l| (l / k) as u32).collect();
        let mut seen: Vec<u32> = assignment_raw.clone();
        seen.sort_unstable();
        seen.dedup();
        let assignment: Vec<u32> = assignment_raw
            .iter()
            .map(|a| seen.binary_search(a).unwrap() as u32)
            .collect();
        let q = quotient(&g, &assignment).unwrap();
        let total: usize = q.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());
        // Every fine arc either stays inside a cluster or appears in the
        // quotient.
        for (u, v) in g.arcs() {
            let (cu, cv) = (q.assignment[u.index()], q.assignment[v.index()]);
            if cu != cv {
                prop_assert!(q.dag.has_arc(NodeId(cu), NodeId(cv)));
            }
        }
    }
}
