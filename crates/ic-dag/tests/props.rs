//! Property tests for the dag algebra: composition, quotients, sums,
//! duality, and down-set enumeration — driven by the deterministic
//! generators in `ic_dag::testgen` (see that module for why proptest is
//! not used).

use ic_dag::builder::from_arcs;
use ic_dag::ideals::IdealEnumerator;
use ic_dag::rng::XorShift64;
use ic_dag::testgen::{random_dag, random_dags};
use ic_dag::traversal::{height, is_topological, levels, topological_order};
use ic_dag::{compose, dual, quotient, sum, NodeId};

/// Sums preserve both operands' structure exactly.
#[test]
fn sum_preserves_structure() {
    let lefts = random_dags(0xA1, 48, 10, 40);
    let rights = random_dags(0xB2, 48, 10, 40);
    for (a, b) in lefts.iter().zip(&rights) {
        let s = sum(a, b);
        assert_eq!(s.dag.num_nodes(), a.num_nodes() + b.num_nodes());
        assert_eq!(s.dag.num_arcs(), a.num_arcs() + b.num_arcs());
        for (u, v) in a.arcs() {
            assert!(s.dag.has_arc(s.left_map[u.index()], s.left_map[v.index()]));
        }
        for (u, v) in b.arcs() {
            assert!(s
                .dag
                .has_arc(s.right_map[u.index()], s.right_map[v.index()]));
        }
    }
}

/// Composition merges exactly the paired nodes, preserves all arcs
/// under the provenance maps, and never creates cycles.
#[test]
fn compose_provenance_is_exact() {
    let lefts = random_dags(0xC3, 48, 10, 40);
    let rights = random_dags(0xD4, 48, 10, 40);
    let mut rng = XorShift64::new(0xE5);
    for (a, b) in lefts.iter().zip(&rights) {
        let sinks: Vec<NodeId> = a.sinks().collect();
        let sources: Vec<NodeId> = b.sources().collect();
        let k = rng.gen_range(4).min(sinks.len()).min(sources.len());
        let pairing: Vec<(NodeId, NodeId)> = sinks
            .into_iter()
            .take(k)
            .zip(sources.into_iter().take(k))
            .collect();
        let c = compose(a, b, &pairing).unwrap();
        assert_eq!(c.dag.num_nodes(), a.num_nodes() + b.num_nodes() - k);
        for (u, v) in a.arcs() {
            assert!(c.dag.has_arc(c.left_map[u.index()], c.left_map[v.index()]));
        }
        for (u, v) in b.arcs() {
            assert!(c
                .dag
                .has_arc(c.right_map[u.index()], c.right_map[v.index()]));
        }
        for &(s, t) in &pairing {
            assert_eq!(c.left_map[s.index()], c.right_map[t.index()]);
        }
    }
}

/// The dual reverses every arc, swaps degree roles, and preserves
/// heights.
#[test]
fn dual_reverses_arcs() {
    for g in random_dags(0xF6, 96, 12, 40) {
        let d = dual(&g);
        for (u, v) in g.arcs() {
            assert!(d.has_arc(v, u));
            assert!(!d.has_arc(u, v) || g.has_arc(v, u));
        }
        assert_eq!(height(&d), height(&g));
    }
}

/// Kahn's order is a topological order, and levels are consistent
/// with it (parents at strictly smaller levels).
#[test]
fn traversal_invariants() {
    for g in random_dags(0x17, 96, 14, 40) {
        let order = topological_order(&g);
        assert!(is_topological(&g, &order));
        let lvl = levels(&g);
        for (u, v) in g.arcs() {
            assert!(lvl[u.index()] < lvl[v.index()]);
        }
        let h = height(&g);
        assert!(lvl.iter().all(|&l| l < h.max(1)));
    }
}

/// Down-set counts are bracketed by `n + 1` (a chain) and `2^n`
/// (an antichain), and every reported state is predecessor-closed.
#[test]
fn ideal_enumeration_is_sound() {
    for g in random_dags(0x28, 64, 10, 40) {
        let n = g.num_nodes();
        let en = IdealEnumerator::new(&g).unwrap();
        let mut count = 0u64;
        let mut sound = true;
        en.for_each(|state, size, elig| {
            count += 1;
            sound &= state.count_ones() == size;
            // Predecessor-closed: every member's parents are members;
            // eligible nodes are unexecuted.
            for i in 0..n {
                if state >> i & 1 == 1 {
                    for p in g.parents(NodeId::new(i)) {
                        sound &= state >> p.index() & 1 == 1;
                    }
                }
                if elig >> i & 1 == 1 {
                    sound &= state >> i & 1 == 0;
                }
            }
        });
        assert!(sound, "an enumerated state was not a valid down-set");
        assert!(count > n as u64);
        assert!(count <= 1u64 << n);
    }
}

/// Differential test for the eligibility-engine overhaul: on random
/// dags, the incremental + layer-parallel sweep visits exactly the
/// `(state, size, eligible)` triples of the retained naive reference,
/// `count()` agrees, and results are identical for every thread count.
#[test]
fn incremental_sweep_matches_the_reference() {
    for (case, g) in random_dags(0x5B, 48, 16, 35).into_iter().enumerate() {
        let en = IdealEnumerator::new(&g).unwrap();
        let mut fast = Vec::new();
        en.for_each(|s, z, el| fast.push((z, s, el)));
        let mut naive = Vec::new();
        en.for_each_reference(|s, z, el| naive.push((z, s, el)));
        naive.sort_unstable();
        // `for_each` yields (size asc, state asc) already.
        assert_eq!(fast, naive, "case {case}: visitation diverged");
        assert_eq!(en.count(), fast.len() as u64, "case {case}: count diverged");

        for threads in [1usize, 3, 8] {
            let et = IdealEnumerator::new(&g).unwrap().with_threads(threads);
            let mut got = Vec::new();
            et.for_each(|s, z, el| got.push((z, s, el)));
            assert_eq!(got, fast, "case {case}: {threads} thread(s) diverged");
        }
    }
}

/// The restricted sweep (`for_each_within`) enumerates exactly the
/// down-sets inside `allowed`, with eligible masks matching the
/// from-scratch computation.
#[test]
fn restricted_sweep_matches_a_filtered_reference() {
    for (case, g) in random_dags(0x6C, 24, 12, 35).into_iter().enumerate() {
        let en = IdealEnumerator::new(&g).unwrap();
        // Restrict to the nonsinks (an arbitrary but meaningful mask).
        let allowed = g
            .node_ids()
            .filter(|&v| !g.children(v).is_empty())
            .fold(0u64, |m, v| m | (1u64 << v.index()));
        let mut restricted = Vec::new();
        en.for_each_within(allowed, |s, z, el| restricted.push((z, s, el)));
        let mut expected: Vec<(u32, u64, u64)> = Vec::new();
        en.for_each_reference(|s, z, el| {
            if s & !allowed == 0 {
                expected.push((z, s, el));
            }
        });
        expected.sort_unstable();
        assert_eq!(restricted, expected, "case {case}");
    }
}

/// Quotients by any contiguous monotone (level-based) clustering
/// partition the nodes and preserve inter-cluster reachability.
#[test]
fn quotient_partitions() {
    let mut rng = XorShift64::new(0x39);
    for case in 0..96 {
        let n = 1 + rng.gen_range(12);
        let g = random_dag(&mut rng, n, 40);
        let k = 1 + rng.gen_range(4);
        let lvl = levels(&g);
        let assignment_raw: Vec<u32> = lvl.iter().map(|&l| (l / k) as u32).collect();
        let mut seen: Vec<u32> = assignment_raw.clone();
        seen.sort_unstable();
        seen.dedup();
        let assignment: Vec<u32> = assignment_raw
            .iter()
            .map(|a| seen.binary_search(a).unwrap() as u32)
            .collect();
        let q = quotient(&g, &assignment).unwrap();
        let total: usize = q.members.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes(), "case {case}");
        // Every fine arc either stays inside a cluster or appears in the
        // quotient.
        for (u, v) in g.arcs() {
            let (cu, cv) = (q.assignment[u.index()], q.assignment[v.index()]);
            if cu != cv {
                assert!(q.dag.has_arc(NodeId(cu), NodeId(cv)));
            }
        }
    }
}

/// Sanity: the generators themselves agree with `from_arcs` on the
/// forward-arc invariant (ids are topological).
#[test]
fn generated_ids_are_topological() {
    for g in random_dags(0x4A, 32, 16, 50) {
        let ids: Vec<NodeId> = g.node_ids().collect();
        assert!(is_topological(&g, &ids));
        // Round-trip through the raw arc list.
        let arcs: Vec<(u32, u32)> = g.arcs().map(|(u, v)| (u.0, v.0)).collect();
        let h = from_arcs(g.num_nodes(), &arcs).unwrap();
        assert_eq!(h, g);
    }
}
