//! Traversal utilities: topological orders, levels, reachability,
//! connectivity.

use std::collections::VecDeque;

use crate::dag::{Dag, NodeId};

/// A topological order of the dag: every arc `(u -> v)` has `u` before
/// `v`. Deterministic: among simultaneously-available nodes, smaller ids
/// come first (Kahn's algorithm over a sorted frontier).
pub fn topological_order(dag: &Dag) -> Vec<NodeId> {
    let n = dag.num_nodes();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId::new(i)) as u32)
        .collect();
    // Min-ordered frontier: a binary heap of Reverse, or since ids only
    // grow, a sorted insertion into a VecDeque works; use a BinaryHeap.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> =
        dag.sources().map(std::cmp::Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(u)) = heap.pop() {
        order.push(u);
        for &v in dag.children(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                heap.push(std::cmp::Reverse(v));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dag invariant violated: cycle");
    order
}

/// `levels[v]` = length of the longest path from any source to `v`
/// (sources are level 0). In a computation-dag this is the earliest
/// "parallel step" at which `v` could execute.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let mut lvl = vec![0usize; dag.num_nodes()];
    for &u in &topological_order(dag) {
        for &v in dag.children(u) {
            lvl[v.index()] = lvl[v.index()].max(lvl[u.index()] + 1);
        }
    }
    lvl
}

/// The height of the dag: number of nodes on a longest directed path
/// (0 for the empty dag, 1 for an arcless dag).
pub fn height(dag: &Dag) -> usize {
    if dag.num_nodes() == 0 {
        return 0;
    }
    levels(dag).into_iter().max().unwrap_or(0) + 1
}

/// Nodes reachable from `start` by directed paths (including `start`),
/// as a boolean membership vector.
pub fn reachable_from(dag: &Dag, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; dag.num_nodes()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(u) = stack.pop() {
        for &v in dag.children(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Nodes that reach `end` by directed paths (including `end`): the
/// ancestors of `end`, as a boolean membership vector.
pub fn ancestors_of(dag: &Dag, end: NodeId) -> Vec<bool> {
    let mut seen = vec![false; dag.num_nodes()];
    let mut stack = vec![end];
    seen[end.index()] = true;
    while let Some(u) = stack.pop() {
        for &v in dag.parents(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Is there a directed path from `u` to `v`? (`true` when `u == v`.)
pub fn has_path(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    reachable_from(dag, u)[v.index()]
}

/// Is the dag weakly connected — i.e., connected when arc orientations
/// are ignored (the paper's notion of a *connected* dag, §2.1)?
/// The empty dag is considered connected.
pub fn is_weakly_connected(dag: &Dag) -> bool {
    let n = dag.num_nodes();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    queue.push_back(NodeId(0));
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in dag.children(u).iter().chain(dag.parents(u)) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == n
}

/// Verify that `order` is a permutation of the dag's nodes that respects
/// every dependency (each node appears after all of its parents).
pub fn is_topological(dag: &Dag, order: &[NodeId]) -> bool {
    let n = dag.num_nodes();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= n || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    dag.arcs().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    fn diamond() -> Dag {
        from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_respects_arcs() {
        let g = diamond();
        let order = topological_order(&g);
        assert!(is_topological(&g, &order));
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[3], NodeId(3));
    }

    #[test]
    fn topo_order_is_deterministic_smallest_first() {
        let g = diamond();
        assert_eq!(
            topological_order(&g),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn levels_longest_path() {
        // 0 -> 1 -> 3, 0 -> 3: level of 3 must be 2 (longest path).
        let g = from_arcs(4, &[(0, 1), (1, 3), (0, 3), (0, 2)]).unwrap();
        let lvl = levels(&g);
        assert_eq!(lvl, vec![0, 1, 1, 2]);
        assert_eq!(height(&g), 3);
    }

    #[test]
    fn height_edge_cases() {
        assert_eq!(height(&from_arcs(0, &[]).unwrap()), 0);
        assert_eq!(height(&from_arcs(3, &[]).unwrap()), 1);
    }

    #[test]
    fn reachability() {
        let g = from_arcs(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let r = reachable_from(&g, NodeId(0));
        assert_eq!(r, vec![true, true, true, false, false]);
        assert!(has_path(&g, NodeId(0), NodeId(2)));
        assert!(!has_path(&g, NodeId(0), NodeId(4)));
        assert!(has_path(&g, NodeId(3), NodeId(3)));
    }

    #[test]
    fn ancestors() {
        let g = diamond();
        let a = ancestors_of(&g, NodeId(3));
        assert_eq!(a, vec![true, true, true, true]);
        let a1 = ancestors_of(&g, NodeId(1));
        assert_eq!(a1, vec![true, true, false, false]);
    }

    #[test]
    fn weak_connectivity() {
        assert!(is_weakly_connected(&diamond()));
        assert!(!is_weakly_connected(&from_arcs(3, &[(0, 1)]).unwrap()));
        assert!(is_weakly_connected(&from_arcs(0, &[]).unwrap()));
    }

    #[test]
    fn is_topological_rejects_bad_orders() {
        let g = diamond();
        // Wrong length.
        assert!(!is_topological(&g, &[NodeId(0)]));
        // Repeated node.
        assert!(!is_topological(
            &g,
            &[NodeId(0), NodeId(0), NodeId(1), NodeId(2)]
        ));
        // Violates arc 2 -> 3.
        assert!(!is_topological(
            &g,
            &[NodeId(0), NodeId(1), NodeId(3), NodeId(2)]
        ));
    }
}
