//! Dag isomorphism for modest sizes.
//!
//! The decomposition results of the paper (out-mesh = W-dag chain,
//! `B_d` = block chain, `P_n` = N-dag chain) claim that the composed
//! dag *is* the directly-constructed one. Count- and degree-checks are
//! necessary but not sufficient; this module provides an actual
//! isomorphism test: iterated neighborhood-refinement coloring to prune,
//! then backtracking search. Exponential in the worst case; intended
//! for the hundreds-of-nodes dags the decompositions produce.

use std::collections::HashMap;

use crate::dag::{Dag, NodeId};

/// Stable colors from iterated refinement: initial color = (in-degree,
/// out-degree); each round, a node's color is rehashed with the sorted
/// multisets of its parents' and children's colors.
fn refine_colors(dag: &Dag) -> Vec<u64> {
    let n = dag.num_nodes();
    let mut color: Vec<u64> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            (dag.in_degree(v) as u64) << 32 | dag.out_degree(v) as u64
        })
        .collect();
    // log2(n)+2 rounds suffice to stabilize in practice for these dags.
    let rounds = (usize::BITS - n.leading_zeros()) as usize + 2;
    for _ in 0..rounds {
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let v = NodeId::new(i);
            let mut parents: Vec<u64> = dag.parents(v).iter().map(|p| color[p.index()]).collect();
            let mut children: Vec<u64> = dag.children(v).iter().map(|c| color[c.index()]).collect();
            parents.sort_unstable();
            children.sort_unstable();
            let mut h = color[i] ^ 0x9E37_79B9_7F4A_7C15;
            let mut mix = |x: u64| {
                h ^= x.wrapping_mul(0xFF51_AFD7_ED55_8CCD).rotate_left(31);
                h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            };
            mix(parents.len() as u64);
            for p in parents {
                mix(p);
            }
            mix(0xABCD);
            for c in children {
                mix(c);
            }
            next.push(h);
        }
        color = next;
    }
    color
}

/// Are `a` and `b` isomorphic as directed graphs?
///
/// ```
/// use ic_dag::{builder::from_arcs, iso::are_isomorphic};
/// let a = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let b = from_arcs(3, &[(2, 0), (2, 1)]).unwrap(); // relabeled Vee
/// let c = from_arcs(3, &[(0, 2), (1, 2)]).unwrap(); // Lambda
/// assert!(are_isomorphic(&a, &b));
/// assert!(!are_isomorphic(&a, &c));
/// ```
pub fn are_isomorphic(a: &Dag, b: &Dag) -> bool {
    if a.num_nodes() != b.num_nodes() || a.num_arcs() != b.num_arcs() {
        return false;
    }
    let n = a.num_nodes();
    if n == 0 {
        return true;
    }
    let ca = refine_colors(a);
    let cb = refine_colors(b);
    // Color multisets must match.
    let hist = |c: &[u64]| {
        let mut h: HashMap<u64, usize> = HashMap::new();
        for &x in c {
            *h.entry(x).or_default() += 1;
        }
        h
    };
    let hb = hist(&cb);
    if hist(&ca) != hb {
        return false;
    }
    // Backtracking: map a's nodes to b's nodes of the same color,
    // consistency-checked on adjacency to already-mapped nodes. The
    // node order matters enormously on symmetric graphs: always extend
    // along adjacency (most already-ordered neighbors first, then
    // rarest color), so each new node is maximally constrained.
    let rarity: HashMap<u64, usize> = hb.iter().map(|(&k, &v)| (k, v)).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut adj_count = vec![0usize; n];
    for _ in 0..n {
        let pick = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| (std::cmp::Reverse(adj_count[i]), rarity[&ca[i]], ca[i], i))
            .expect("unplaced node exists");
        placed[pick] = true;
        order.push(pick);
        let v = NodeId::new(pick);
        for &w in a.parents(v).iter().chain(a.children(v)) {
            adj_count[w.index()] += 1;
        }
    }
    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut used = vec![false; n];

    fn consistent(a: &Dag, b: &Dag, mapping: &[Option<NodeId>], u: usize, img: NodeId) -> bool {
        let un = NodeId::new(u);
        for &p in a.parents(un) {
            if let Some(pi) = mapping[p.index()] {
                if !b.has_arc(pi, img) {
                    return false;
                }
            }
        }
        for &c in a.children(un) {
            if let Some(ci) = mapping[c.index()] {
                if !b.has_arc(img, ci) {
                    return false;
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)] // recursive search state, local to this fn
    fn dfs(
        a: &Dag,
        b: &Dag,
        ca: &[u64],
        cb: &[u64],
        order: &[usize],
        k: usize,
        mapping: &mut Vec<Option<NodeId>>,
        used: &mut Vec<bool>,
    ) -> bool {
        if k == order.len() {
            return true;
        }
        let u = order[k];
        for cand in 0..b.num_nodes() {
            if used[cand] || cb[cand] != ca[u] {
                continue;
            }
            let img = NodeId::new(cand);
            if consistent(a, b, mapping, u, img) {
                mapping[u] = Some(img);
                used[cand] = true;
                if dfs(a, b, ca, cb, order, k + 1, mapping, used) {
                    return true;
                }
                mapping[u] = None;
                used[cand] = false;
            }
        }
        false
    }

    dfs(a, b, &ca, &cb, &order, 0, &mut mapping, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn identical_dags_are_isomorphic() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(are_isomorphic(&g, &g));
    }

    #[test]
    fn relabeled_dags_are_isomorphic() {
        let a = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        // Same diamond with middles renamed.
        let b = from_arcs(4, &[(0, 2), (0, 1), (2, 3), (1, 3)]).unwrap();
        assert!(are_isomorphic(&a, &b));
        // Fully scrambled ids: 3 is the source, 0 the sink.
        let c = from_arcs(4, &[(3, 1), (3, 2), (1, 0), (2, 0)]).unwrap();
        assert!(are_isomorphic(&a, &c));
    }

    #[test]
    fn different_shapes_are_not() {
        let path = from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let star = from_arcs(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(!are_isomorphic(&path, &star));
        // Same counts, different structure: diamond vs. 2-path + 2 arcs
        // rearranged.
        let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let zigzag = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (1, 2)]).unwrap();
        assert_eq!(diamond.num_arcs(), zigzag.num_arcs());
        assert!(!are_isomorphic(&diamond, &zigzag));
    }

    #[test]
    fn orientation_matters() {
        let v = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let l = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
        assert!(!are_isomorphic(&v, &l));
    }

    #[test]
    fn empty_and_singleton() {
        let e = from_arcs(0, &[]).unwrap();
        assert!(are_isomorphic(&e, &e));
        let s1 = from_arcs(1, &[]).unwrap();
        assert!(are_isomorphic(&s1, &s1));
        assert!(!are_isomorphic(&e, &s1));
    }

    #[test]
    fn regular_dags_with_symmetry() {
        // The butterfly block has a 2-fold symmetry: scrambles map back.
        let b1 = from_arcs(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let b2 = from_arcs(4, &[(2, 0), (2, 1), (3, 0), (3, 1)]).unwrap();
        assert!(are_isomorphic(&b1, &b2));
    }
}
