//! Error type for dag construction and dag algebra.

use std::fmt;

use crate::dag::NodeId;

/// Errors raised while building or combining dags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An arc would create a cycle (reported when the builder seals).
    Cycle,
    /// An arc from a node to itself.
    SelfLoop(NodeId),
    /// A node id that does not belong to the dag in question.
    InvalidNode(NodeId),
    /// A composition pairing referenced a node that is not a sink of the
    /// left dag.
    NotASink(NodeId),
    /// A composition pairing referenced a node that is not a source of the
    /// right dag.
    NotASource(NodeId),
    /// A composition pairing mentioned the same node twice.
    DuplicateInPairing(NodeId),
    /// `compose_full` requires `#sinks(G1) == #sources(G2)`.
    SizeMismatch {
        /// Number of sinks offered by the left dag.
        left_sinks: usize,
        /// Number of sources required by the right dag.
        right_sources: usize,
    },
    /// A quotient (clustering) map produced a cyclic cluster graph.
    CyclicQuotient,
    /// A cluster assignment did not cover every node, or used
    /// non-contiguous cluster ids.
    BadClusterAssignment,
    /// The dag is too large for a bitmask-based operation (max 64 nodes).
    TooLarge(usize),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle => write!(f, "arc set contains a cycle"),
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DagError::InvalidNode(v) => write!(f, "node {v} does not belong to this dag"),
            DagError::NotASink(v) => write!(f, "node {v} is not a sink of the left dag"),
            DagError::NotASource(v) => write!(f, "node {v} is not a source of the right dag"),
            DagError::DuplicateInPairing(v) => {
                write!(
                    f,
                    "node {v} appears more than once in a composition pairing"
                )
            }
            DagError::SizeMismatch {
                left_sinks,
                right_sources,
            } => write!(
                f,
                "full composition requires equal counts; left has {left_sinks} sinks, \
                 right has {right_sources} sources"
            ),
            DagError::CyclicQuotient => write!(f, "cluster assignment induces a cyclic quotient"),
            DagError::BadClusterAssignment => {
                write!(
                    f,
                    "cluster assignment must cover all nodes with contiguous ids"
                )
            }
            DagError::TooLarge(n) => {
                write!(
                    f,
                    "dag has {n} nodes; bitmask operations support at most 64"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}
