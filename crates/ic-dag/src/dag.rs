//! The immutable computation-dag representation.
//!
//! A [`Dag`] is built once (via [`crate::DagBuilder`]) and never mutated;
//! all dag algebra (dual, sum, composition, quotient) produces new dags.
//! Adjacency is stored CSR-style: two flat arrays of neighbor ids indexed
//! by per-node offset ranges, giving `O(1)` slice access to the parents
//! and children of a node and cache-friendly traversal.

use std::fmt;

/// Identifier of a node (task) within one [`Dag`].
///
/// Ids are dense: a dag with `n` nodes uses ids `0..n`. Ids are only
/// meaningful relative to the dag that issued them; the dag-algebra
/// operations return explicit maps between old and new ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn new(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable directed acyclic graph modelling a computation.
///
/// * each node represents a task;
/// * an arc `(u -> v)` represents the dependence of task `v` on task `u`.
///
/// Invariants guaranteed by construction:
/// * acyclic (verified when the builder seals);
/// * no self-loops, no parallel arcs;
/// * adjacency slices are sorted by node id.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    /// `children_off[v]..children_off[v+1]` indexes `children_flat`.
    pub(crate) children_off: Vec<u32>,
    pub(crate) children_flat: Vec<NodeId>,
    pub(crate) parents_off: Vec<u32>,
    pub(crate) parents_flat: Vec<NodeId>,
    /// Human-readable labels; empty string when unnamed.
    pub(crate) labels: Vec<String>,
    /// Node-role summary (source/sink counts and bitmasks), computed once
    /// at construction. A pure function of the CSR arrays, so the derived
    /// `PartialEq` stays structural.
    pub(crate) roles: RoleCache,
}

/// Cached node-role summary of a [`Dag`].
///
/// The bitmask fields are meaningful only when the dag has at most 64
/// nodes (the same cap as the down-set lattice machinery); for larger
/// dags they are zero and the `Option` accessors on [`Dag`] return
/// `None`.
#[derive(Clone, Default, PartialEq, Eq)]
pub(crate) struct RoleCache {
    pub(crate) num_sources: u32,
    pub(crate) num_sinks: u32,
    pub(crate) sources_mask: u64,
    pub(crate) sinks_mask: u64,
}

impl RoleCache {
    fn compute(
        dag_nodes: usize,
        in_deg: impl Fn(usize) -> usize,
        out_deg: impl Fn(usize) -> usize,
    ) -> RoleCache {
        let mut roles = RoleCache::default();
        for i in 0..dag_nodes {
            if in_deg(i) == 0 {
                roles.num_sources += 1;
                if dag_nodes <= 64 {
                    roles.sources_mask |= 1u64 << i;
                }
            }
            if out_deg(i) == 0 {
                roles.num_sinks += 1;
                if dag_nodes <= 64 {
                    roles.sinks_mask |= 1u64 << i;
                }
            }
        }
        roles
    }
}

impl Dag {
    /// Seal CSR arrays into a `Dag`, computing the role cache.
    ///
    /// All construction sites (builder, dual, sum) funnel through here so
    /// the cached counts and masks can never go stale.
    pub(crate) fn from_csr(
        children_off: Vec<u32>,
        children_flat: Vec<NodeId>,
        parents_off: Vec<u32>,
        parents_flat: Vec<NodeId>,
        labels: Vec<String>,
    ) -> Dag {
        let n = labels.len();
        let roles = RoleCache::compute(
            n,
            |i| (parents_off[i + 1] - parents_off[i]) as usize,
            |i| (children_off[i + 1] - children_off[i]) as usize,
        );
        Dag {
            children_off,
            children_flat,
            parents_off,
            parents_flat,
            labels,
            roles,
        }
    }

    /// Number of nodes (tasks).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of arcs (dependencies).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.children_flat.len()
    }

    /// Iterator over all node ids, in increasing order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// The children of `v` (tasks that depend on `v`), sorted by id.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let lo = self.children_off[v.index()] as usize;
        let hi = self.children_off[v.index() + 1] as usize;
        &self.children_flat[lo..hi]
    }

    /// The parents of `v` (tasks `v` depends on), sorted by id.
    #[inline]
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        let lo = self.parents_off[v.index()] as usize;
        let hi = self.parents_off[v.index() + 1] as usize;
        &self.parents_flat[lo..hi]
    }

    /// Out-degree of `v` — its number of children.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.children(v).len()
    }

    /// In-degree of `v` — its number of parents.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.parents(v).len()
    }

    /// Is `v` a source (parentless node)?
    #[inline]
    pub fn is_source(&self, v: NodeId) -> bool {
        self.in_degree(v) == 0
    }

    /// Is `v` a sink (childless node)?
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        self.out_degree(v) == 0
    }

    /// Iterator over the sources, in increasing id order.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| self.is_source(v))
    }

    /// Iterator over the sinks, in increasing id order.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| self.is_sink(v))
    }

    /// Iterator over the nonsinks (nodes with at least one child).
    pub fn nonsinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| !self.is_sink(v))
    }

    /// Iterator over the nonsources (nodes with at least one parent).
    pub fn nonsources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| !self.is_source(v))
    }

    /// Number of sources. Cached at construction, `O(1)`.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.roles.num_sources as usize
    }

    /// Number of sinks. Cached at construction, `O(1)`.
    #[inline]
    pub fn num_sinks(&self) -> usize {
        self.roles.num_sinks as usize
    }

    /// Bitmask over all node ids: `Some` iff the dag fits the 64-node
    /// down-set lattice cap (`1` in every position `0..n`).
    #[inline]
    pub fn full_mask(&self) -> Option<u64> {
        let n = self.num_nodes();
        match n {
            0..=63 => Some((1u64 << n) - 1),
            64 => Some(u64::MAX),
            _ => None,
        }
    }

    /// Bitmask of the sources, cached at construction. `None` when the
    /// dag exceeds 64 nodes.
    #[inline]
    pub fn sources_mask(&self) -> Option<u64> {
        self.full_mask().map(|_| self.roles.sources_mask)
    }

    /// Bitmask of the sinks, cached at construction. `None` when the
    /// dag exceeds 64 nodes.
    #[inline]
    pub fn sinks_mask(&self) -> Option<u64> {
        self.full_mask().map(|_| self.roles.sinks_mask)
    }

    /// Bitmask of the nonsinks (derived from the cached sink mask).
    /// `None` when the dag exceeds 64 nodes.
    #[inline]
    pub fn nonsinks_mask(&self) -> Option<u64> {
        self.full_mask().map(|full| full & !self.roles.sinks_mask)
    }

    /// Bitmask of the nonsources (derived from the cached source mask).
    /// `None` when the dag exceeds 64 nodes.
    #[inline]
    pub fn nonsources_mask(&self) -> Option<u64> {
        self.full_mask().map(|full| full & !self.roles.sources_mask)
    }

    /// Number of nonsinks. In IC-Scheduling Theory this is the length of
    /// the "interesting" portion of a schedule: sinks render nothing
    /// eligible, so only the order of nonsink executions matters.
    pub fn num_nonsinks(&self) -> usize {
        self.num_nodes() - self.num_sinks()
    }

    /// Number of nonsources.
    pub fn num_nonsources(&self) -> usize {
        self.num_nodes() - self.num_sources()
    }

    /// Does the dag contain the arc `(u -> v)`?
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.children(u).binary_search(&v).is_ok()
    }

    /// Iterator over all arcs `(u, v)`, grouped by tail `u`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |u| self.children(u).iter().map(move |&v| (u, v)))
    }

    /// The label of `v` (empty string when unnamed).
    #[inline]
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// All labels, indexed by node id.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dag {{ nodes: {}, arcs: {}, sources: {}, sinks: {} }}",
            self.num_nodes(),
            self.num_arcs(),
            self.num_sources(),
            self.num_sinks()
        )?;
        for u in self.node_ids() {
            if !self.is_sink(u) {
                write!(f, "  {u}")?;
                if !self.label(u).is_empty() {
                    write!(f, "({})", self.label(u))?;
                }
                write!(f, " ->")?;
                for v in self.children(u) {
                    write!(f, " {v}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::DagBuilder;

    use super::*;

    fn path3() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        b.add_arc(a, c).unwrap();
        b.add_arc(c, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn node_id_round_trip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v}"), "42");
        assert_eq!(format!("{v:?}"), "n42");
    }

    #[test]
    fn path_degrees_and_roles() {
        let g = path3();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 2);
        assert!(g.is_source(a) && !g.is_sink(a));
        assert!(!g.is_source(b) && !g.is_sink(b));
        assert!(!g.is_source(c) && g.is_sink(c));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(c), 1);
        assert_eq!(g.children(a), &[b]);
        assert_eq!(g.parents(c), &[b]);
        assert_eq!(g.num_nonsinks(), 2);
        assert_eq!(g.num_nonsources(), 2);
    }

    #[test]
    fn arc_queries() {
        let g = path3();
        assert!(g.has_arc(NodeId(0), NodeId(1)));
        assert!(!g.has_arc(NodeId(1), NodeId(0)));
        assert!(!g.has_arc(NodeId(0), NodeId(2)));
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn labels_are_preserved() {
        let g = path3();
        assert_eq!(g.label(NodeId(0)), "a");
        assert_eq!(g.label(NodeId(2)), "c");
        assert_eq!(g.labels().len(), 3);
    }

    #[test]
    fn empty_dag() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.sources().count(), 0);
    }

    #[test]
    fn cached_role_masks_match_iterators() {
        // Diamond plus an isolated node: exercises source, sink, both, neither.
        let g = crate::builder::from_arcs(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let fold =
            |it: &mut dyn Iterator<Item = NodeId>| it.fold(0u64, |m, v| m | (1u64 << v.index()));
        assert_eq!(g.full_mask(), Some(0b11111));
        assert_eq!(g.sources_mask(), Some(fold(&mut g.sources())));
        assert_eq!(g.sinks_mask(), Some(fold(&mut g.sinks())));
        assert_eq!(g.nonsinks_mask(), Some(fold(&mut g.nonsinks())));
        assert_eq!(g.nonsources_mask(), Some(fold(&mut g.nonsources())));
        assert_eq!(g.num_sources(), 2); // node 0 and the isolated node 4
        assert_eq!(g.num_sinks(), 2); // node 3 and the isolated node 4
    }

    #[test]
    fn role_masks_unavailable_past_the_lattice_cap() {
        let mut b = DagBuilder::new();
        b.add_nodes(65);
        let g = b.build().unwrap();
        assert_eq!(g.full_mask(), None);
        assert_eq!(g.sources_mask(), None);
        assert_eq!(g.nonsinks_mask(), None);
        assert_eq!(g.num_sources(), 65);
    }

    #[test]
    fn isolated_node_is_both_source_and_sink() {
        let mut b = DagBuilder::new();
        let v = b.add_node("lone");
        let g = b.build().unwrap();
        assert!(g.is_source(v));
        assert!(g.is_sink(v));
        assert_eq!(g.num_nonsinks(), 0);
    }
}
