//! # `ic-dag` — the computation-dag substrate for IC-Scheduling Theory
//!
//! IC-Scheduling Theory (Cordasco–Malewicz–Rosenberg) models a computation
//! as a *directed acyclic graph*: nodes are tasks; an arc `(u -> v)` means
//! task `v` cannot be executed until `u` has been. This crate provides the
//! dag representation and the algebra the theory is built on:
//!
//! * a compact, immutable [`Dag`] with O(1) parent/child slice access
//!   ([`dag`], [`builder`]);
//! * traversal utilities: topological orders, levels, reachability
//!   ([`traversal`]);
//! * the **dual** of a dag — all arcs reversed, interchanging sources and
//!   sinks ([`ops::dual`]);
//! * disjoint **sums** of dags ([`ops::sum`]);
//! * the **composition** operation `G1 ⇑ G2` that merges selected sinks of
//!   `G1` with sources of `G2`, the engine behind every dag family in the
//!   paper ([`ops::compose`]);
//! * **quotient** (clustering) dags used to render computations
//!   multi-granular ([`ops::quotient`]);
//! * enumeration of **down-sets** (the reachable execution states), the
//!   basis for exhaustive IC-optimality checking ([`ideals`]);
//! * Graphviz **DOT** rendering to regenerate the paper's figures
//!   ([`dot`]).
//!
//! The scheduling semantics themselves (eligibility, IC-optimality, the
//! priority relation) live one crate up, in `ic-sched`.
//!
//! ## Quick example
//!
//! ```
//! use ic_dag::DagBuilder;
//!
//! // The Vee dag: one source with two children (Fig. 1 of the paper).
//! let mut b = DagBuilder::new();
//! let w = b.add_node("w");
//! let x0 = b.add_node("x0");
//! let x1 = b.add_node("x1");
//! b.add_arc(w, x0).unwrap();
//! b.add_arc(w, x1).unwrap();
//! let vee = b.build().unwrap();
//!
//! assert_eq!(vee.sources().collect::<Vec<_>>(), vec![w]);
//! assert_eq!(vee.sinks().count(), 2);
//! assert_eq!(vee.children(w), &[x0, x1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dag;
pub mod dot;
pub mod error;
pub mod ideals;
pub mod iso;
pub mod ops;
pub mod rng;
pub mod serialize;
pub mod stats;
pub mod testgen;
pub mod traversal;

pub use builder::DagBuilder;
pub use dag::{Dag, NodeId};
pub use error::DagError;
pub use ops::compose::{compose, compose_full, ChainBuilder, Composition};
pub use ops::dual::dual;
pub use ops::quotient::{quotient, Quotient};
pub use ops::sum::{sum, Sum};
