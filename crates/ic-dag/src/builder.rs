//! Incremental dag construction with validation.

use std::collections::BTreeSet;

use crate::dag::{Dag, NodeId};
use crate::error::DagError;

/// Builds a [`Dag`] incrementally; [`DagBuilder::build`] validates
/// acyclicity and freezes the structure.
///
/// Parallel arcs are silently deduplicated (the theory works with arc
/// *sets*); self-loops are rejected immediately.
///
/// ```
/// use ic_dag::DagBuilder;
/// let mut b = DagBuilder::new();
/// let u = b.add_node("u");
/// let v = b.add_node("v");
/// b.add_arc(u, v).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.num_arcs(), 1);
/// ```
#[derive(Default, Clone)]
pub struct DagBuilder {
    labels: Vec<String>,
    arcs: BTreeSet<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder pre-sized for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        DagBuilder {
            labels: Vec::with_capacity(n),
            arcs: BTreeSet::new(),
        }
    }

    /// Add a node with a human-readable label; returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId::new(self.labels.len());
        self.labels.push(label.into());
        id
    }

    /// Add `n` unlabeled nodes; returns their ids in order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node(String::new())).collect()
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Add the arc `(u -> v)`. Duplicate arcs are ignored.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) -> Result<(), DagError> {
        if u.index() >= self.labels.len() {
            return Err(DagError::InvalidNode(u));
        }
        if v.index() >= self.labels.len() {
            return Err(DagError::InvalidNode(v));
        }
        if u == v {
            return Err(DagError::SelfLoop(u));
        }
        self.arcs.insert((u, v));
        Ok(())
    }

    /// Overwrite the label of an existing node.
    pub fn set_label(&mut self, v: NodeId, label: impl Into<String>) -> Result<(), DagError> {
        let slot = self
            .labels
            .get_mut(v.index())
            .ok_or(DagError::InvalidNode(v))?;
        *slot = label.into();
        Ok(())
    }

    /// Validate acyclicity and freeze into an immutable [`Dag`].
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.labels.len();

        // CSR for children: arcs are already sorted by (u, v) in the BTreeSet.
        let mut children_off = vec![0u32; n + 1];
        let mut parents_count = vec![0u32; n];
        for &(u, v) in &self.arcs {
            children_off[u.index() + 1] += 1;
            parents_count[v.index()] += 1;
        }
        for i in 0..n {
            children_off[i + 1] += children_off[i];
        }
        let mut children_flat = Vec::with_capacity(self.arcs.len());
        for &(_, v) in &self.arcs {
            children_flat.push(v);
        }

        // CSR for parents, filled per-target then each slice sorted by
        // construction (we fill in (u, v) order, so parents arrive sorted).
        let mut parents_off = vec![0u32; n + 1];
        for i in 0..n {
            parents_off[i + 1] = parents_off[i] + parents_count[i];
        }
        let mut cursor: Vec<u32> = parents_off[..n].to_vec();
        let mut parents_flat = vec![NodeId(0); self.arcs.len()];
        for &(u, v) in &self.arcs {
            parents_flat[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }

        let dag = Dag::from_csr(
            children_off,
            children_flat,
            parents_off,
            parents_flat,
            self.labels,
        );

        // Kahn's algorithm to detect cycles.
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| dag.in_degree(NodeId::new(i)) as u32)
            .collect();
        let mut queue: Vec<NodeId> = dag.sources().collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in dag.children(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n {
            return Err(DagError::Cycle);
        }
        Ok(dag)
    }
}

/// Convenience: build a dag from an explicit arc list over `n` nodes.
///
/// ```
/// let diamond = ic_dag::builder::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// assert_eq!(diamond.num_sources(), 1);
/// assert_eq!(diamond.num_sinks(), 1);
/// ```
pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Result<Dag, DagError> {
    let mut b = DagBuilder::new();
    b.add_nodes(n);
    for &(u, v) in arcs {
        b.add_arc(NodeId(u), NodeId(v))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let v = b.add_node("v");
        assert_eq!(b.add_arc(v, v), Err(DagError::SelfLoop(v)));
    }

    #[test]
    fn rejects_invalid_node() {
        let mut b = DagBuilder::new();
        let v = b.add_node("v");
        assert_eq!(
            b.add_arc(v, NodeId(7)),
            Err(DagError::InvalidNode(NodeId(7)))
        );
    }

    #[test]
    fn detects_two_cycle() {
        assert_eq!(
            from_arcs(2, &[(0, 1), (1, 0)]).unwrap_err(),
            DagError::Cycle
        );
    }

    #[test]
    fn detects_long_cycle() {
        assert_eq!(
            from_arcs(4, &[(0, 1), (1, 2), (2, 3), (3, 1)]).unwrap_err(),
            DagError::Cycle
        );
    }

    #[test]
    fn dedupes_parallel_arcs() {
        let mut b = DagBuilder::new();
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_arc(u, v).unwrap();
        b.add_arc(u, v).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn adjacency_slices_are_sorted() {
        // Insert arcs out of order; slices must come out sorted by id.
        let g = from_arcs(4, &[(0, 3), (0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.children(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.parents(NodeId(3)), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn set_label_works() {
        let mut b = DagBuilder::new();
        let v = b.add_node("old");
        b.set_label(v, "new").unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.label(v), "new");
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = DagBuilder::new();
        let ids = b.add_nodes(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4], NodeId(4));
    }
}
