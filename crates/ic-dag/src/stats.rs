//! Structural statistics of dags, used by the experiment reports.

use crate::dag::Dag;
use crate::traversal::levels;

/// A structural summary of a dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagStats {
    /// Node count.
    pub nodes: usize,
    /// Arc count.
    pub arcs: usize,
    /// Source count.
    pub sources: usize,
    /// Sink count.
    pub sinks: usize,
    /// Number of nodes on a longest directed path.
    pub height: usize,
    /// The largest level population (a lower bound on the maximum
    /// antichain, i.e. on the dag's parallelism).
    pub max_level_width: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
}

/// Compute [`DagStats`] for `dag`.
///
/// ```
/// use ic_dag::{builder::from_arcs, stats::stats};
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let s = stats(&diamond);
/// assert_eq!((s.height, s.max_level_width), (3, 2));
/// ```
pub fn stats(dag: &Dag) -> DagStats {
    let lvl = levels(dag);
    let height = lvl.iter().copied().max().map_or(0, |m| m + 1);
    let mut width = vec![0usize; height.max(1)];
    for &l in &lvl {
        width[l] += 1;
    }
    DagStats {
        nodes: dag.num_nodes(),
        arcs: dag.num_arcs(),
        sources: dag.num_sources(),
        sinks: dag.num_sinks(),
        height: if dag.num_nodes() == 0 { 0 } else { height },
        max_level_width: width.iter().copied().max().unwrap_or(0)
            * usize::from(dag.num_nodes() > 0),
        max_in_degree: dag.node_ids().map(|v| dag.in_degree(v)).max().unwrap_or(0),
        max_out_degree: dag.node_ids().map(|v| dag.out_degree(v)).max().unwrap_or(0),
    }
}

impl std::fmt::Display for DagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} arcs; {} sources, {} sinks; height {}, max width {}, degrees in<={} out<={}",
            self.nodes,
            self.arcs,
            self.sources,
            self.sinks,
            self.height,
            self.max_level_width,
            self.max_in_degree,
            self.max_out_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn diamond_stats() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = stats(&g);
        assert_eq!(
            s,
            DagStats {
                nodes: 4,
                arcs: 4,
                sources: 1,
                sinks: 1,
                height: 3,
                max_level_width: 2,
                max_in_degree: 2,
                max_out_degree: 2,
            }
        );
        assert!(s.to_string().contains("4 nodes"));
    }

    #[test]
    fn empty_dag_stats() {
        let s = stats(&from_arcs(0, &[]).unwrap());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.height, 0);
        assert_eq!(s.max_level_width, 0);
    }

    #[test]
    fn antichain_stats() {
        let s = stats(&from_arcs(5, &[]).unwrap());
        assert_eq!(s.height, 1);
        assert_eq!(s.max_level_width, 5);
        assert_eq!(s.max_in_degree, 0);
    }
}
