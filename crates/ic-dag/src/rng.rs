//! A tiny deterministic pseudo-random number generator.
//!
//! The build environment is fully offline, so the workspace carries no
//! external RNG crate. Everything that needs randomness — the RANDOM
//! scheduling heuristic, random tree constructors, the discrete-event
//! simulator, and the deterministic property-test generators in
//! [`crate::testgen`] — uses this xorshift64\* generator instead. It is
//! *not* cryptographically secure and is not meant to be; it is fast,
//! dependency-free, and fully reproducible from its seed, which is all
//! the reproduction needs.

/// A seeded xorshift64\* generator (Vigna, "An experimental exploration
/// of Marsaglia's xorshift generators, scrambled").
///
/// Deterministic: the same seed always yields the same stream, on every
/// platform.
///
/// ```
/// use ic_dag::rng::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from `seed`. Any seed is valid (the seed is
    /// first diffused through a splitmix64 round, so `0`, `1`, `2`, ...
    /// produce unrelated streams).
    pub fn new(seed: u64) -> Self {
        // One splitmix64 step decorrelates small consecutive seeds and
        // guarantees a nonzero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires a nonempty range");
        // Multiply-shift range reduction; the modulo bias is < 2^-64 * n,
        // irrelevant for test-sized ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform value in `[lo, hi)` as `i64`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_i64 requires lo < hi");
        let span = hi.wrapping_sub(lo) as u64 as usize;
        lo.wrapping_add(self.gen_range(span) as i64)
    }

    /// A uniform `f64` in `[0, 1)`, with 53 random bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(1);
        // Astronomically unlikely to collide on the first draw.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_is_in_range() {
        let mut r = XorShift64::new(3);
        for n in [1usize, 2, 7, 100] {
            for _ in 0..200 {
                assert!(r.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = XorShift64::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_i64_respects_bounds() {
        let mut r = XorShift64::new(5);
        for _ in 0..500 {
            let x = r.gen_i64(-100, 100);
            assert!((-100..100).contains(&x));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = XorShift64::new(9);
        for _ in 0..500 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = XorShift64::new(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = XorShift64::new(17);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
