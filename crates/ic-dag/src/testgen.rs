//! Deterministic random-dag generators for property-style tests.
//!
//! The seed repository used `proptest` for randomized coverage; that
//! crate cannot be resolved in the offline build environment, so the
//! property tests are driven by this small deterministic generator
//! instead. Each helper is a pure function of its seed, so failures
//! reproduce exactly, and the test suites simply loop over a seed range
//! where proptest would have sampled cases.
//!
//! Generated dags use only *forward* arcs (`u < v`), so node ids are a
//! topological order by construction and the arc set can never contain
//! a cycle — the same shape the proptest strategies produced.

use crate::builder::from_arcs;
use crate::rng::XorShift64;
use crate::Dag;

/// A random dag with exactly `n` nodes: each forward pair `(u, v)`,
/// `u < v`, becomes an arc with probability `density_pct / 100`.
///
/// # Panics
/// Panics if `density_pct > 100`.
pub fn random_dag(rng: &mut XorShift64, n: usize, density_pct: u32) -> Dag {
    assert!(density_pct <= 100, "density is a percentage");
    let mut arcs = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_range(100) < density_pct as usize {
                arcs.push((u, v));
            }
        }
    }
    from_arcs(n, &arcs).expect("forward arcs cannot form cycles")
}

/// A batch of `cases` random dags with between 1 and `max_n` nodes at
/// the given arc density, deterministically derived from `seed`. This is
/// the drop-in replacement for a proptest `arb_dag` strategy: tests
/// iterate the returned vector where they previously sampled.
pub fn random_dags(seed: u64, cases: usize, max_n: usize, density_pct: u32) -> Vec<Dag> {
    let mut rng = XorShift64::new(seed);
    (0..cases)
        .map(|_| {
            let n = 1 + rng.gen_range(max_n);
            random_dag(&mut rng, n, density_pct)
        })
        .collect()
}

/// A deterministic pseudo-random permutation of `0..n` derived from
/// `seed` — used by relabeling/isomorphism tests.
pub fn random_permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = XorShift64::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    perm
}

/// A vector of `len` integers uniform in `[lo, hi)`, derived from
/// `seed` — the replacement for proptest's integer-vector strategies.
pub fn random_i64s(seed: u64, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.gen_i64(lo, hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_topological;
    use crate::traversal::topological_order;

    #[test]
    fn generated_dags_are_valid_and_reproducible() {
        let a = random_dags(42, 20, 12, 40);
        let b = random_dags(42, 20, 12, 40);
        assert_eq!(a, b);
        for g in &a {
            assert!(g.num_nodes() >= 1 && g.num_nodes() <= 12);
            let order = topological_order(g);
            assert!(is_topological(g, &order));
        }
    }

    #[test]
    fn density_zero_yields_no_arcs() {
        let mut rng = XorShift64::new(1);
        let g = random_dag(&mut rng, 10, 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn density_hundred_yields_complete_order() {
        let mut rng = XorShift64::new(1);
        let g = random_dag(&mut rng, 8, 100);
        assert_eq!(g.num_arcs(), 8 * 7 / 2);
    }

    #[test]
    fn permutations_are_permutations() {
        for seed in 0..5 {
            let p = random_permutation(seed, 30);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..30).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_i64s_in_bounds() {
        let xs = random_i64s(3, 100, -50, 50);
        assert_eq!(xs.len(), 100);
        assert!(xs.iter().all(|x| (-50..50).contains(x)));
    }
}
