//! Enumeration of *down-sets* — the reachable execution states of a dag.
//!
//! When a dag is executed task by task, the set of already-executed nodes
//! is always predecessor-closed (a *down-set*, or order ideal, of the
//! precedence order). Conversely, every down-set is reachable by some
//! valid execution prefix. The exhaustive IC-optimality checker in
//! `ic-sched` needs, for every execution length `t`, the maximum number
//! of ELIGIBLE nodes over all down-sets of size `t`; this module supplies
//! the state enumeration, bitmask-encoded for dags of up to 64 nodes.
//!
//! # Performance model
//!
//! The sweep is *incremental* and *layer-parallel*:
//!
//! * each visited state carries its eligible mask, and extending a
//!   down-set by node `b` updates that mask in `O(out-degree(b))` via
//!   [`IdealEnumerator::eligible_after`] instead of re-testing all `n`
//!   parent masks;
//! * each BFS layer (all down-sets of one size) is sharded across scoped
//!   worker threads; per-worker outputs are deduplicated locally, sorted,
//!   and merged at the layer barrier, so every layer is visited in
//!   ascending state order **regardless of thread count** — the eligible
//!   mask is a pure function of the state, so duplicate discoveries across
//!   workers carry identical payloads and dedup cannot lose information.
//!
//! The pre-overhaul from-scratch algorithm is retained as
//! [`IdealEnumerator::for_each_reference`] so differential tests and
//! benches can compare against it in the same binary.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::dag::{Dag, NodeId};
use crate::error::DagError;

/// SplitMix64-finalizer hasher for `u64` state keys. The sweep's dedup
/// sets are the hot path of the whole enumeration; SipHash's keyed
/// strengths are wasted on bitmask keys we generate ourselves, and its
/// per-insert cost dominates the incremental eligible update.
#[derive(Default)]
struct StateHasher(u64);

impl Hasher for StateHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the sweep).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type StateSet = HashSet<u64, BuildHasherDefault<StateHasher>>;

/// Visitor passed to [`IdealEnumerator::sweep`]: receives each sorted
/// BFS layer of `(state, eligible)` pairs and the layer's down-set
/// size; returns `false` to stop the sweep early.
type LayerVisitor<'a> = dyn FnMut(&[(u64, u64)], u32) -> bool + 'a;

/// Layers below this many states are expanded on the calling thread; the
/// fixed cost of spawning scoped workers dominates under it.
const PAR_MIN_LAYER: usize = 2048;

/// Smallest per-worker chunk worth a thread of its own.
const PAR_MIN_CHUNK: usize = 512;

/// Bitmask-based down-set enumerator for dags with at most 64 nodes.
pub struct IdealEnumerator {
    parent_masks: Vec<u64>,
    child_masks: Vec<u64>,
    n: usize,
    threads: usize,
}

impl IdealEnumerator {
    /// Precompute parent and child masks. Errors with
    /// [`DagError::TooLarge`] for dags of more than 64 nodes.
    pub fn new(dag: &Dag) -> Result<Self, DagError> {
        let n = dag.num_nodes();
        if n > 64 {
            return Err(DagError::TooLarge(n));
        }
        let parent_masks = (0..n)
            .map(|i| {
                dag.parents(NodeId::new(i))
                    .iter()
                    .fold(0u64, |m, p| m | (1u64 << p.index()))
            })
            .collect();
        let child_masks = (0..n)
            .map(|i| {
                dag.children(NodeId::new(i))
                    .iter()
                    .fold(0u64, |m, c| m | (1u64 << c.index()))
            })
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(8);
        Ok(IdealEnumerator {
            parent_masks,
            child_masks,
            n,
            threads,
        })
    }

    /// Override the number of worker threads used for layer expansion
    /// (defaults to `available_parallelism()`, capped at 8). Results are
    /// identical for every thread count; this exists for benchmarks and
    /// determinism tests. Values below 1 are clamped to 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of nodes in the underlying dag.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The ELIGIBLE nodes for the execution state `executed`: unexecuted
    /// nodes all of whose parents are executed. `O(n)` from scratch —
    /// the sweep itself uses [`IdealEnumerator::eligible_after`]; this
    /// entry point serves callers that land on an arbitrary state.
    #[inline]
    pub fn eligible_mask(&self, executed: u64) -> u64 {
        let mut e = 0u64;
        for (i, &pm) in self.parent_masks.iter().enumerate() {
            let bit = 1u64 << i;
            if executed & bit == 0 && pm & !executed == 0 {
                e |= bit;
            }
        }
        e
    }

    /// The eligible mask after extending the down-set `state` (whose
    /// eligible mask is `eligible`) by node index `b`. Only `b`'s
    /// children can become eligible, so this is `O(out-degree(b))`.
    ///
    /// `b` must be eligible in `state` (i.e. `eligible & (1 << b) != 0`);
    /// otherwise the result is meaningless.
    #[inline]
    pub fn eligible_after(&self, state: u64, eligible: u64, b: u32) -> u64 {
        let bit = 1u64 << b;
        let next = state | bit;
        let mut e = eligible & !bit;
        let mut kids = self.child_masks[b as usize];
        while kids != 0 {
            let cb = kids & kids.wrapping_neg();
            kids ^= cb;
            if self.parent_masks[cb.trailing_zeros() as usize] & !next == 0 {
                e |= cb;
            }
        }
        e
    }

    /// Visit every down-set exactly once, in nondecreasing size order and
    /// in ascending state order within each size (deterministic regardless
    /// of thread count). `f(executed_mask, size, eligible_mask)` is called
    /// per state, including the empty state.
    pub fn for_each(&self, mut f: impl FnMut(u64, u32, u64)) {
        self.sweep(u64::MAX, &mut |layer, size| {
            for &(state, elig) in layer {
                f(state, size, elig);
            }
            true
        });
    }

    /// Like [`IdealEnumerator::for_each`], but only grows states by
    /// eligible nodes inside `allowed` (a bitmask). Enumerates exactly
    /// the down-sets that are subsets of `allowed` — e.g. pass the
    /// nonsink mask to walk the execution states of "nonsinks-first"
    /// schedules.
    pub fn for_each_within(&self, allowed: u64, mut f: impl FnMut(u64, u32, u64)) {
        self.sweep(allowed, &mut |layer, size| {
            for &(state, elig) in layer {
                f(state, size, elig);
            }
            true
        });
    }

    /// Visit the down-sets one whole layer at a time: `f(size, layer)`
    /// where `layer` is the sorted slice of `(state, eligible)` pairs of
    /// that size. This is the zero-copy interface for exhaustive dynamic
    /// programs (`optimal_batches`, `min_regret_schedule`) that previously
    /// materialized all states and re-derived eligibility per state.
    pub fn for_each_layer(&self, mut f: impl FnMut(u32, &[(u64, u64)])) {
        self.sweep(u64::MAX, &mut |layer, size| {
            f(size, layer);
            true
        });
    }

    /// [`IdealEnumerator::for_each_layer`] restricted to growth inside
    /// `allowed`, like [`IdealEnumerator::for_each_within`].
    pub fn for_each_layer_within(&self, allowed: u64, mut f: impl FnMut(u32, &[(u64, u64)])) {
        self.sweep(allowed, &mut |layer, size| {
            f(size, layer);
            true
        });
    }

    /// Total number of down-sets (execution states), including the empty
    /// and the full state. Counts layer lengths directly — no per-state
    /// callback.
    pub fn count(&self) -> u64 {
        let mut c = 0u64;
        self.sweep(u64::MAX, &mut |layer, _| {
            c += layer.len() as u64;
            true
        });
        c
    }

    /// Count down-sets, giving up once the running total exceeds `cap`:
    /// returns `Some(count)` when the lattice has at most `cap` states and
    /// `None` otherwise. A 64-node antichain has 2^64 down-sets, so
    /// callers that merely *report* the count (e.g. `ic-prio audit --dag`)
    /// must bound the enumeration.
    pub fn count_up_to(&self, cap: u64) -> Option<u64> {
        let mut c = 0u64;
        let mut overflow = false;
        self.sweep(u64::MAX, &mut |layer, _| {
            c = c.saturating_add(layer.len() as u64);
            if c > cap {
                overflow = true;
                return false;
            }
            true
        });
        if overflow {
            None
        } else {
            Some(c)
        }
    }

    /// The pre-overhaul reference enumeration: single-threaded hash-set
    /// BFS recomputing [`IdealEnumerator::eligible_mask`] from scratch per
    /// state. Visits every down-set exactly once in nondecreasing size
    /// order, with **unspecified** order within a size. Retained verbatim
    /// so differential tests and the `envelope-naive` bench group can
    /// measure the incremental/parallel sweep against it in one binary.
    pub fn for_each_reference(&self, mut f: impl FnMut(u64, u32, u64)) {
        let mut layer: HashSet<u64> = HashSet::new();
        layer.insert(0);
        for size in 0..=self.n as u32 {
            if layer.is_empty() {
                break;
            }
            let mut next: HashSet<u64> = HashSet::with_capacity(layer.len() * 2);
            for &state in &layer {
                let elig = self.eligible_mask(state);
                f(state, size, elig);
                let mut rest = elig;
                while rest != 0 {
                    let bit = rest & rest.wrapping_neg();
                    rest ^= bit;
                    next.insert(state | bit);
                }
            }
            layer = next;
        }
    }

    /// Layered sweep driver. Calls `visit(layer, size)` per BFS layer
    /// (sorted by state); `visit` returns `false` to stop early.
    fn sweep(&self, allowed: u64, visit: &mut LayerVisitor) {
        let mut layer = vec![(0u64, self.eligible_mask(0))];
        let mut size = 0u32;
        loop {
            if !visit(&layer, size) {
                return;
            }
            let next = self.expand_layer(&layer, allowed);
            if next.is_empty() {
                return;
            }
            layer = next;
            size += 1;
        }
    }

    /// Expand one layer into the next: every state grows by each of its
    /// eligible nodes inside `allowed`. Sharded across scoped threads when
    /// the layer is large enough; the merged result is sorted by state and
    /// duplicate-free, so downstream order never depends on thread count.
    fn expand_layer(&self, layer: &[(u64, u64)], allowed: u64) -> Vec<(u64, u64)> {
        let workers = self
            .threads
            .min(layer.len() / PAR_MIN_CHUNK)
            .clamp(1, layer.len().max(1));
        if workers <= 1 || layer.len() < PAR_MIN_LAYER {
            return self.expand_chunk(layer, allowed);
        }
        let chunk = layer.len().div_ceil(workers);
        let mut parts: Vec<Vec<(u64, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = layer
                .chunks(chunk)
                .map(|ch| s.spawn(move || self.expand_chunk(ch, allowed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lattice sweep worker panicked"))
                .collect()
        });
        // Pairwise merge keeps each element on O(log workers) passes.
        while parts.len() > 1 {
            let mut merged = Vec::with_capacity(parts.len().div_ceil(2));
            let mut it = parts.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => merged.push(merge_dedup(a, b)),
                    None => merged.push(a),
                }
            }
            parts = merged;
        }
        parts.pop().unwrap_or_default()
    }

    /// Sequential expansion of a slice of states: locally deduplicated
    /// (the eligible mask is computed once per distinct successor) and
    /// sorted by state.
    fn expand_chunk(&self, states: &[(u64, u64)], allowed: u64) -> Vec<(u64, u64)> {
        let mut seen = StateSet::with_capacity_and_hasher(states.len() * 2, Default::default());
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(states.len() * 2);
        for &(state, elig) in states {
            let mut rest = elig & allowed;
            while rest != 0 {
                let bit = rest & rest.wrapping_neg();
                rest ^= bit;
                let nstate = state | bit;
                if seen.insert(nstate) {
                    out.push((
                        nstate,
                        self.eligible_after(state, elig, bit.trailing_zeros()),
                    ));
                }
            }
        }
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }
}

/// Merge two sorted, duplicate-free `(state, eligible)` runs into one,
/// dropping cross-run duplicates. Equal states always carry equal eligible
/// masks (the mask is a function of the state), so either copy may win.
fn merge_dedup(a: Vec<(u64, u64)>, b: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn chain_has_linear_ideals() {
        // A path of n nodes has exactly n + 1 down-sets (the prefixes).
        let g = from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 6);
    }

    #[test]
    fn antichain_has_all_subsets() {
        // n isolated nodes: every subset is a down-set.
        let g = from_arcs(4, &[]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 16);
    }

    #[test]
    fn vee_ideals() {
        // Vee: {}, {r}, {r,a}, {r,b}, {r,a,b} => 5 down-sets.
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn eligible_masks_are_correct() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        // Nothing executed: only the source eligible.
        assert_eq!(e.eligible_mask(0), 0b0001);
        // Source executed: both middles eligible.
        assert_eq!(e.eligible_mask(0b0001), 0b0110);
        // Source + one middle: the other middle only.
        assert_eq!(e.eligible_mask(0b0011), 0b0100);
        // All but sink: sink eligible.
        assert_eq!(e.eligible_mask(0b0111), 0b1000);
        // Everything executed: nothing.
        assert_eq!(e.eligible_mask(0b1111), 0);
    }

    #[test]
    fn eligible_after_matches_from_scratch() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        e.for_each(|state, _, elig| {
            let mut rest = elig;
            while rest != 0 {
                let bit = rest & rest.wrapping_neg();
                rest ^= bit;
                let b = bit.trailing_zeros();
                assert_eq!(
                    e.eligible_after(state, elig, b),
                    e.eligible_mask(state | bit),
                    "incremental update diverged at state {state:#b} + node {b}"
                );
            }
        });
    }

    #[test]
    fn states_visited_once_in_size_order() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut last_size = 0;
        e.for_each(|state, size, _| {
            assert!(seen.insert(state), "state visited twice");
            assert!(size >= last_size);
            last_size = size;
            assert_eq!(state.count_ones(), size);
        });
        // Diamond: {}, {0}, {0,1}, {0,2}, {0,1,2}, {0,1,2,3} => 6.
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn visitation_matches_reference_set() {
        // Same states, same eligible masks as the retained naive sweep.
        let g = from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (3, 5)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        let mut fast = Vec::new();
        let mut naive = Vec::new();
        e.for_each(|s, z, el| fast.push((z, s, el)));
        e.for_each_reference(|s, z, el| naive.push((z, s, el)));
        naive.sort_unstable();
        // `for_each` already yields (size asc, state asc).
        assert_eq!(fast, naive);
    }

    #[test]
    fn layer_interface_agrees_with_per_state() {
        let g = from_arcs(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        let mut flat = Vec::new();
        e.for_each_layer(|size, layer| {
            for &(s, el) in layer {
                flat.push((s, size, el));
            }
        });
        let mut per_state = Vec::new();
        e.for_each(|s, z, el| per_state.push((s, z, el)));
        assert_eq!(flat, per_state);
    }

    #[test]
    fn count_up_to_bounds_the_walk() {
        let g = from_arcs(4, &[]).unwrap(); // 16 down-sets
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count_up_to(16), Some(16));
        assert_eq!(e.count_up_to(1 << 20), Some(16));
        assert_eq!(e.count_up_to(15), None);
        assert_eq!(e.count_up_to(0), None);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Wide antichain plus a few arcs: enough states (2^k-ish) to cross
        // the parallel threshold is not required — determinism must hold
        // below it too, where the sequential path runs.
        let g = from_arcs(12, &[(0, 10), (1, 10), (2, 11)]).unwrap();
        let collect = |threads: usize| {
            let e = IdealEnumerator::new(&g).unwrap().with_threads(threads);
            let mut v = Vec::new();
            e.for_each(|s, z, el| v.push((s, z, el)));
            v
        };
        let one = collect(1);
        assert_eq!(one, collect(2));
        assert_eq!(one, collect(7));
    }

    #[test]
    fn too_large_is_rejected() {
        let g = from_arcs(65, &[]).unwrap();
        assert!(matches!(
            IdealEnumerator::new(&g),
            Err(DagError::TooLarge(65))
        ));
    }
}
