//! Enumeration of *down-sets* — the reachable execution states of a dag.
//!
//! When a dag is executed task by task, the set of already-executed nodes
//! is always predecessor-closed (a *down-set*, or order ideal, of the
//! precedence order). Conversely, every down-set is reachable by some
//! valid execution prefix. The exhaustive IC-optimality checker in
//! `ic-sched` needs, for every execution length `t`, the maximum number
//! of ELIGIBLE nodes over all down-sets of size `t`; this module supplies
//! the state enumeration, bitmask-encoded for dags of up to 64 nodes.

use std::collections::HashSet;

use crate::dag::{Dag, NodeId};
use crate::error::DagError;

/// Bitmask-based down-set enumerator for dags with at most 64 nodes.
pub struct IdealEnumerator {
    parent_masks: Vec<u64>,
    n: usize,
}

impl IdealEnumerator {
    /// Precompute parent masks. Errors with [`DagError::TooLarge`] for
    /// dags of more than 64 nodes.
    pub fn new(dag: &Dag) -> Result<Self, DagError> {
        let n = dag.num_nodes();
        if n > 64 {
            return Err(DagError::TooLarge(n));
        }
        let parent_masks = (0..n)
            .map(|i| {
                dag.parents(NodeId::new(i))
                    .iter()
                    .fold(0u64, |m, p| m | (1u64 << p.index()))
            })
            .collect();
        Ok(IdealEnumerator { parent_masks, n })
    }

    /// Number of nodes in the underlying dag.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The ELIGIBLE nodes for the execution state `executed`: unexecuted
    /// nodes all of whose parents are executed.
    #[inline]
    pub fn eligible_mask(&self, executed: u64) -> u64 {
        let mut e = 0u64;
        for (i, &pm) in self.parent_masks.iter().enumerate() {
            let bit = 1u64 << i;
            if executed & bit == 0 && pm & !executed == 0 {
                e |= bit;
            }
        }
        e
    }

    /// Visit every down-set exactly once, in nondecreasing size order.
    /// `f(executed_mask, size, eligible_mask)` is called per state,
    /// including the empty state.
    pub fn for_each(&self, mut f: impl FnMut(u64, u32, u64)) {
        let mut layer: HashSet<u64> = HashSet::new();
        layer.insert(0);
        for size in 0..=self.n as u32 {
            if layer.is_empty() {
                break;
            }
            let mut next: HashSet<u64> = HashSet::with_capacity(layer.len() * 2);
            for &state in &layer {
                let elig = self.eligible_mask(state);
                f(state, size, elig);
                let mut rest = elig;
                while rest != 0 {
                    let bit = rest & rest.wrapping_neg();
                    rest ^= bit;
                    next.insert(state | bit);
                }
            }
            layer = next;
        }
    }

    /// Like [`IdealEnumerator::for_each`], but only grows states by
    /// eligible nodes inside `allowed` (a bitmask). Enumerates exactly
    /// the down-sets that are subsets of `allowed` — e.g. pass the
    /// nonsink mask to walk the execution states of "nonsinks-first"
    /// schedules.
    pub fn for_each_within(&self, allowed: u64, mut f: impl FnMut(u64, u32, u64)) {
        let mut layer: HashSet<u64> = HashSet::new();
        layer.insert(0);
        for size in 0..=self.n as u32 {
            if layer.is_empty() {
                break;
            }
            let mut next: HashSet<u64> = HashSet::with_capacity(layer.len() * 2);
            for &state in &layer {
                let elig = self.eligible_mask(state);
                f(state, size, elig);
                let mut rest = elig & allowed;
                while rest != 0 {
                    let bit = rest & rest.wrapping_neg();
                    rest ^= bit;
                    next.insert(state | bit);
                }
            }
            layer = next;
        }
    }

    /// Total number of down-sets (execution states), including the empty
    /// and the full state.
    pub fn count(&self) -> u64 {
        let mut c = 0u64;
        self.for_each(|_, _, _| c += 1);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn chain_has_linear_ideals() {
        // A path of n nodes has exactly n + 1 down-sets (the prefixes).
        let g = from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 6);
    }

    #[test]
    fn antichain_has_all_subsets() {
        // n isolated nodes: every subset is a down-set.
        let g = from_arcs(4, &[]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 16);
    }

    #[test]
    fn vee_ideals() {
        // Vee: {}, {r}, {r,a}, {r,b}, {r,a,b} => 5 down-sets.
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn eligible_masks_are_correct() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        // Nothing executed: only the source eligible.
        assert_eq!(e.eligible_mask(0), 0b0001);
        // Source executed: both middles eligible.
        assert_eq!(e.eligible_mask(0b0001), 0b0110);
        // Source + one middle: the other middle only.
        assert_eq!(e.eligible_mask(0b0011), 0b0100);
        // All but sink: sink eligible.
        assert_eq!(e.eligible_mask(0b0111), 0b1000);
        // Everything executed: nothing.
        assert_eq!(e.eligible_mask(0b1111), 0);
    }

    #[test]
    fn states_visited_once_in_size_order() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let e = IdealEnumerator::new(&g).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut last_size = 0;
        e.for_each(|state, size, _| {
            assert!(seen.insert(state), "state visited twice");
            assert!(size >= last_size);
            last_size = size;
            assert_eq!(state.count_ones(), size);
        });
        // Diamond: {}, {0}, {0,1}, {0,2}, {0,1,2}, {0,1,2,3} => 6.
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn too_large_is_rejected() {
        let g = from_arcs(65, &[]).unwrap();
        assert!(matches!(
            IdealEnumerator::new(&g),
            Err(DagError::TooLarge(65))
        ));
    }
}
