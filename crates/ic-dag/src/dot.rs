//! Graphviz DOT rendering — regenerates the *pictures* of the paper's
//! figures from the constructed dags.

use std::fmt::Write as _;

use crate::dag::{Dag, NodeId};
use crate::traversal::levels;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Draw bottom-up (`rankdir=BT`), matching the paper's figures where
    /// computation flows upward. Default `true`.
    pub bottom_up: bool,
    /// Annotate each node with its position in this execution order
    /// (e.g. a schedule), shown as `label [k]`.
    pub order: Option<Vec<NodeId>>,
    /// Group nodes of equal level on the same rank.
    pub rank_by_level: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "G".to_string(),
            bottom_up: true,
            order: None,
            rank_by_level: true,
        }
    }
}

/// Render `dag` as Graphviz DOT text.
///
/// ```
/// use ic_dag::{builder::from_arcs, dot::{to_dot, DotOptions}};
/// let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let text = to_dot(&g, &DotOptions::default());
/// assert!(text.contains("digraph"));
/// assert!(text.contains("0 -> 1"));
/// ```
pub fn to_dot(dag: &Dag, opts: &DotOptions) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", opts.name);
    if opts.bottom_up {
        let _ = writeln!(s, "  rankdir=BT;");
    }
    let _ = writeln!(s, "  node [shape=circle, fontsize=10];");

    let mut pos = vec![None::<usize>; dag.num_nodes()];
    if let Some(order) = &opts.order {
        for (k, &v) in order.iter().enumerate() {
            pos[v.index()] = Some(k);
        }
    }

    for v in dag.node_ids() {
        let base = if dag.label(v).is_empty() {
            format!("{v}")
        } else {
            dag.label(v).to_string()
        };
        let label = match pos[v.index()] {
            Some(k) => format!("{base} [{k}]"),
            None => base,
        };
        let _ = writeln!(s, "  {} [label=\"{}\"];", v, label);
    }
    for (u, v) in dag.arcs() {
        let _ = writeln!(s, "  {u} -> {v};");
    }

    if opts.rank_by_level && dag.num_nodes() > 0 {
        let lvl = levels(dag);
        let max = lvl.iter().copied().max().unwrap_or(0);
        for l in 0..=max {
            let members: Vec<String> = dag
                .node_ids()
                .filter(|v| lvl[v.index()] == l)
                .map(|v| v.to_string())
                .collect();
            if members.len() > 1 {
                let _ = writeln!(s, "  {{ rank=same; {}; }}", members.join("; "));
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn renders_nodes_arcs_and_ranks() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("rankdir=BT"));
        assert!(dot.contains("1 -> 3"));
        assert!(dot.contains("rank=same; 1; 2;"));
    }

    #[test]
    fn order_annotations_appear() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let dot = to_dot(
            &g,
            &DotOptions {
                order: Some(vec![NodeId(0), NodeId(1)]),
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("[0]"));
        assert!(dot.contains("[1]"));
    }

    #[test]
    fn labels_are_used_when_present() {
        let mut b = crate::DagBuilder::new();
        let u = b.add_node("root");
        let v = b.add_node("leaf");
        b.add_arc(u, v).unwrap();
        let g = b.build().unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("root"));
        assert!(dot.contains("leaf"));
    }
}
