//! Quotient (clustering) dags — the engine behind the paper's
//! *multi-granularity* constructions (Figs. 3, 7, 13-right).
//!
//! Coarsening a computation means assigning each fine-grained task to a
//! cluster; the coarsened computation's dag has one node per cluster and
//! an arc between clusters whenever some fine arc crosses them. The
//! assignment is valid only if the quotient is acyclic — otherwise two
//! coarse tasks would each have to run before the other.

use crate::builder::DagBuilder;
use crate::dag::{Dag, NodeId};
use crate::error::DagError;

/// A validated coarsening of a dag.
#[derive(Debug, Clone)]
pub struct Quotient {
    /// The coarse dag: one node per cluster.
    pub dag: Dag,
    /// `assignment[v]` = cluster id of fine node `v`.
    pub assignment: Vec<u32>,
    /// `members[c]` = the fine nodes of cluster `c`, in id order.
    pub members: Vec<Vec<NodeId>>,
}

impl Quotient {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// The cluster containing fine node `v`.
    pub fn cluster_of(&self, v: NodeId) -> NodeId {
        NodeId(self.assignment[v.index()])
    }

    /// The coarsening factor of cluster `c` — how many fine tasks it
    /// absorbs. The paper's granularity knob.
    pub fn granularity(&self, c: NodeId) -> usize {
        self.members[c.index()].len()
    }
}

/// Build the quotient of `dag` under `assignment` (fine node -> cluster).
///
/// Requirements:
/// * `assignment.len() == dag.num_nodes()`;
/// * cluster ids are contiguous: every id in `0..max+1` is used;
/// * the induced cluster graph is acyclic
///   (else [`DagError::CyclicQuotient`]).
///
/// ```
/// use ic_dag::{builder::from_arcs, quotient};
/// // A 4-node diamond coarsened into {top}, {middle pair}, {bottom}.
/// let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let q = quotient(&g, &[0, 1, 1, 2]).unwrap();
/// assert_eq!(q.dag.num_nodes(), 3);
/// assert_eq!(q.dag.num_arcs(), 2);
/// ```
pub fn quotient(dag: &Dag, assignment: &[u32]) -> Result<Quotient, DagError> {
    if assignment.len() != dag.num_nodes() {
        return Err(DagError::BadClusterAssignment);
    }
    let k = match assignment.iter().max() {
        Some(&m) => m as usize + 1,
        None => 0,
    };
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        members[c as usize].push(NodeId::new(i));
    }
    if members.iter().any(Vec::is_empty) {
        return Err(DagError::BadClusterAssignment);
    }

    let mut b = DagBuilder::with_capacity(k);
    for mem in &members {
        // A compact label: join member labels when few, else a count.
        let named: Vec<&str> = mem
            .iter()
            .map(|&v| dag.label(v))
            .filter(|l| !l.is_empty())
            .collect();
        let label = if named.is_empty() {
            String::new()
        } else if named.len() <= 4 {
            named.join("+")
        } else {
            format!("{}+..({})", named[0], mem.len())
        };
        b.add_node(label);
    }
    for (u, v) in dag.arcs() {
        let (cu, cv) = (assignment[u.index()], assignment[v.index()]);
        if cu != cv {
            b.add_arc(NodeId(cu), NodeId(cv))?;
        }
    }
    let qdag = b.build().map_err(|e| match e {
        DagError::Cycle => DagError::CyclicQuotient,
        other => other,
    })?;
    Ok(Quotient {
        dag: qdag,
        assignment: assignment.to_vec(),
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;

    #[test]
    fn valid_coarsening() {
        // Path 0 -> 1 -> 2 -> 3, clusters {0,1} and {2,3}.
        let g = from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = quotient(&g, &[0, 0, 1, 1]).unwrap();
        assert_eq!(q.num_clusters(), 2);
        assert_eq!(q.dag.num_arcs(), 1);
        assert_eq!(q.granularity(NodeId(0)), 2);
        assert_eq!(q.cluster_of(NodeId(3)), NodeId(1));
    }

    #[test]
    fn rejects_cyclic_quotient() {
        // 0 -> 1 -> 2 with clusters {0,2} and {1}: arcs both ways between
        // the clusters.
        let g = from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            quotient(&g, &[0, 1, 0]).unwrap_err(),
            DagError::CyclicQuotient
        );
    }

    #[test]
    fn rejects_wrong_length() {
        let g = from_arcs(3, &[(0, 1)]).unwrap();
        assert_eq!(
            quotient(&g, &[0, 0]).unwrap_err(),
            DagError::BadClusterAssignment
        );
    }

    #[test]
    fn rejects_gap_in_cluster_ids() {
        let g = from_arcs(3, &[(0, 1)]).unwrap();
        assert_eq!(
            quotient(&g, &[0, 0, 2]).unwrap_err(),
            DagError::BadClusterAssignment
        );
    }

    #[test]
    fn identity_quotient_is_isomorphic() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let q = quotient(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(q.dag.num_nodes(), g.num_nodes());
        assert_eq!(q.dag.num_arcs(), g.num_arcs());
    }

    #[test]
    fn internal_arcs_disappear() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let q = quotient(&g, &[0, 0, 0, 0]).unwrap();
        assert_eq!(q.dag.num_nodes(), 1);
        assert_eq!(q.dag.num_arcs(), 0);
    }

    #[test]
    fn empty_dag_quotient() {
        let g = from_arcs(0, &[]).unwrap();
        let q = quotient(&g, &[]).unwrap();
        assert_eq!(q.num_clusters(), 0);
    }
}
