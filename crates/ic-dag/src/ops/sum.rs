//! Disjoint sums of dags (`G1 + G2`, footnote 4 of the paper).

use crate::dag::{Dag, NodeId};

/// The result of [`sum`]: the combined dag plus the id translations for
/// each operand.
#[derive(Debug, Clone)]
pub struct Sum {
    /// The disjoint union `G1 + G2`.
    pub dag: Dag,
    /// `left_map[v]` = id in `dag` of node `v` of `G1` (identity).
    pub left_map: Vec<NodeId>,
    /// `right_map[v]` = id in `dag` of node `v` of `G2` (shifted).
    pub right_map: Vec<NodeId>,
}

/// Disjoint union: node set is the union of (renamed) node sets, arc set
/// the union of arc sets. `G1`'s ids are preserved; `G2`'s are shifted by
/// `G1.num_nodes()`.
pub fn sum(g1: &Dag, g2: &Dag) -> Sum {
    let n1 = g1.num_nodes();
    let n2 = g2.num_nodes();
    let shift = |v: NodeId| NodeId::new(v.index() + n1);

    let splice = |off1: &[u32], flat1: &[NodeId], off2: &[u32], flat2: &[NodeId]| {
        let base = *off1.last().unwrap_or(&0);
        let mut off: Vec<u32> = off1.to_vec();
        off.extend(off2[1..].iter().map(|&o| o + base));
        let mut flat: Vec<NodeId> = flat1.to_vec();
        flat.extend(flat2.iter().map(|&v| shift(v)));
        (off, flat)
    };

    let (children_off, children_flat) = splice(
        &g1.children_off,
        &g1.children_flat,
        &g2.children_off,
        &g2.children_flat,
    );
    let (parents_off, parents_flat) = splice(
        &g1.parents_off,
        &g1.parents_flat,
        &g2.parents_off,
        &g2.parents_flat,
    );
    let mut labels = g1.labels.clone();
    labels.extend(g2.labels.iter().cloned());

    Sum {
        dag: Dag::from_csr(
            children_off,
            children_flat,
            parents_off,
            parents_flat,
            labels,
        ),
        left_map: (0..n1).map(NodeId::new).collect(),
        right_map: (0..n2).map(|i| NodeId::new(i + n1)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;
    use crate::traversal::is_weakly_connected;

    #[test]
    fn sum_counts() {
        let a = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let b = from_arcs(2, &[(0, 1)]).unwrap();
        let s = sum(&a, &b);
        assert_eq!(s.dag.num_nodes(), 5);
        assert_eq!(s.dag.num_arcs(), 3);
        assert!(!is_weakly_connected(&s.dag));
    }

    #[test]
    fn sum_maps_are_correct() {
        let a = from_arcs(2, &[(0, 1)]).unwrap();
        let b = from_arcs(2, &[(0, 1)]).unwrap();
        let s = sum(&a, &b);
        assert_eq!(s.left_map, vec![NodeId(0), NodeId(1)]);
        assert_eq!(s.right_map, vec![NodeId(2), NodeId(3)]);
        // The shifted arc of b must exist.
        assert!(s.dag.has_arc(NodeId(2), NodeId(3)));
        assert!(s.dag.has_arc(NodeId(0), NodeId(1)));
        assert!(!s.dag.has_arc(NodeId(1), NodeId(2)));
    }

    #[test]
    fn sum_with_empty_is_identity_shaped() {
        let a = from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let e = from_arcs(0, &[]).unwrap();
        let s = sum(&a, &e);
        assert_eq!(s.dag, a);
        let s2 = sum(&e, &a);
        assert_eq!(s2.dag.num_nodes(), 3);
        assert!(s2.dag.has_arc(NodeId(0), NodeId(1)));
    }

    #[test]
    fn sum_preserves_adjacency_of_both_sides() {
        let a = from_arcs(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        let b = from_arcs(3, &[(2, 0), (2, 1)]).unwrap();
        let s = sum(&a, &b);
        for (u, v) in a.arcs() {
            assert!(s.dag.has_arc(s.left_map[u.index()], s.left_map[v.index()]));
        }
        for (u, v) in b.arcs() {
            assert!(s
                .dag
                .has_arc(s.right_map[u.index()], s.right_map[v.index()]));
        }
        assert_eq!(s.dag.num_arcs(), a.num_arcs() + b.num_arcs());
    }
}
