//! The dag algebra of IC-Scheduling Theory: duality, sums, the
//! composition operation `⇑`, and quotient (coarsening) dags.

pub mod compose;
pub mod dual;
pub mod quotient;
pub mod sum;
