//! The composition operation `G1 ⇑ G2` (§2.3.1 of the paper).
//!
//! Composition starts from the disjoint sum `G1 + G2`, selects an
//! equal-size set of *sinks* of `G1` and *sources* of `G2`, and pairwise
//! identifies (merges) them. It is the generator of every complex dag
//! family in the paper: out-trees are iterated compositions of the Vee
//! dag, meshes of W-dags, butterfly networks of butterfly blocks,
//! parallel-prefix dags of N-dags, and so on.
//!
//! Because the merged nodes carry arcs *into* them from `G1` and arcs
//! *out of* them into `G2`, composition can never create a cycle.

use std::collections::HashMap;

use crate::builder::DagBuilder;
use crate::dag::{Dag, NodeId};
use crate::error::DagError;

/// The result of a composition: the composite dag plus provenance maps.
#[derive(Debug, Clone)]
pub struct Composition {
    /// The composite dag `G1 ⇑ G2`.
    pub dag: Dag,
    /// `left_map[v]` = composite id of node `v` of `G1` (always the
    /// identity: left ids are preserved).
    pub left_map: Vec<NodeId>,
    /// `right_map[v]` = composite id of node `v` of `G2`. Paired sources
    /// map onto the sink they were merged with; the rest get fresh ids.
    pub right_map: Vec<NodeId>,
}

fn merged_label(l: &str, r: &str) -> String {
    match (l.is_empty(), r.is_empty()) {
        (true, true) => String::new(),
        (false, true) => l.to_string(),
        (true, false) => r.to_string(),
        (false, false) => {
            if l == r {
                l.to_string()
            } else {
                format!("{l}={r}")
            }
        }
    }
}

/// Compose `g1 ⇑ g2`, merging each `(sink of g1, source of g2)` pair in
/// `pairing`.
///
/// Validation: every left member must be a sink of `g1`, every right
/// member a source of `g2`, and no node may appear twice.
///
/// ```
/// use ic_dag::{builder::from_arcs, compose, NodeId};
/// // Vee (0 -> 1, 0 -> 2) composed with Lambda (0 -> 2, 1 -> 2):
/// // merge Vee's two sinks with Lambda's two sources => diamond.
/// let vee = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let lambda = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
/// let c = compose(&vee, &lambda, &[(NodeId(1), NodeId(0)), (NodeId(2), NodeId(1))]).unwrap();
/// assert_eq!(c.dag.num_nodes(), 4);
/// assert_eq!(c.dag.num_sources(), 1);
/// assert_eq!(c.dag.num_sinks(), 1);
/// ```
pub fn compose(g1: &Dag, g2: &Dag, pairing: &[(NodeId, NodeId)]) -> Result<Composition, DagError> {
    let n1 = g1.num_nodes();
    let n2 = g2.num_nodes();

    // Validate the pairing.
    let mut merged_with: HashMap<NodeId, NodeId> = HashMap::with_capacity(pairing.len());
    let mut left_seen: HashMap<NodeId, ()> = HashMap::with_capacity(pairing.len());
    for &(s, t) in pairing {
        if s.index() >= n1 {
            return Err(DagError::InvalidNode(s));
        }
        if t.index() >= n2 {
            return Err(DagError::InvalidNode(t));
        }
        if !g1.is_sink(s) {
            return Err(DagError::NotASink(s));
        }
        if !g2.is_source(t) {
            return Err(DagError::NotASource(t));
        }
        if left_seen.insert(s, ()).is_some() {
            return Err(DagError::DuplicateInPairing(s));
        }
        if merged_with.insert(t, s).is_some() {
            return Err(DagError::DuplicateInPairing(t));
        }
    }

    let left_map: Vec<NodeId> = (0..n1).map(NodeId::new).collect();
    let mut right_map: Vec<NodeId> = Vec::with_capacity(n2);
    let mut next = n1;
    for i in 0..n2 {
        let v = NodeId::new(i);
        match merged_with.get(&v) {
            Some(&s) => right_map.push(s),
            None => {
                right_map.push(NodeId::new(next));
                next += 1;
            }
        }
    }

    let total = n1 + n2 - pairing.len();
    let mut b = DagBuilder::with_capacity(total);
    b.add_nodes(total);
    // Labels: left labels, then merged labels override, then fresh right labels.
    for v in 0..n1 {
        b.set_label(NodeId::new(v), g1.label(NodeId::new(v)))?;
    }
    for (i, &cid) in right_map.iter().enumerate() {
        let v = NodeId::new(i);
        if cid.index() < n1 {
            let lbl = merged_label(g1.label(cid), g2.label(v));
            b.set_label(cid, lbl)?;
        } else {
            b.set_label(cid, g2.label(v))?;
        }
    }
    for (u, v) in g1.arcs() {
        b.add_arc(left_map[u.index()], left_map[v.index()])?;
    }
    for (u, v) in g2.arcs() {
        b.add_arc(right_map[u.index()], right_map[v.index()])?;
    }
    let dag = b.build()?;
    Ok(Composition {
        dag,
        left_map,
        right_map,
    })
}

/// Compose `g1 ⇑ g2` merging *all* sinks of `g1` with *all* sources of
/// `g2`, paired in increasing-id order (the "diamond" pattern of Fig. 2).
///
/// Errors with [`DagError::SizeMismatch`] unless
/// `g1.num_sinks() == g2.num_sources()`.
pub fn compose_full(g1: &Dag, g2: &Dag) -> Result<Composition, DagError> {
    let sinks: Vec<NodeId> = g1.sinks().collect();
    let sources: Vec<NodeId> = g2.sources().collect();
    if sinks.len() != sources.len() {
        return Err(DagError::SizeMismatch {
            left_sinks: sinks.len(),
            right_sources: sources.len(),
        });
    }
    let pairing: Vec<(NodeId, NodeId)> = sinks.into_iter().zip(sources).collect();
    compose(g1, g2, &pairing)
}

/// Builds an *iterated* composition `G1 ⇑ G2 ⇑ ... ⇑ Gk`, tracking, for
/// every stage, the map from that stage's original node ids to composite
/// ids. These per-stage maps are exactly what Theorem 2.1's composite
/// schedule construction needs.
///
/// Left-node ids are stable across pushes, so previously recorded maps
/// remain valid as the chain grows.
#[derive(Debug, Clone)]
pub struct ChainBuilder {
    dag: Dag,
    maps: Vec<Vec<NodeId>>,
}

impl ChainBuilder {
    /// Start a chain with its first stage.
    pub fn new(g: &Dag) -> Self {
        ChainBuilder {
            dag: g.clone(),
            maps: vec![(0..g.num_nodes()).map(NodeId::new).collect()],
        }
    }

    /// Number of stages pushed so far.
    pub fn num_stages(&self) -> usize {
        self.maps.len()
    }

    /// The composite built so far.
    pub fn current(&self) -> &Dag {
        &self.dag
    }

    /// Map from stage `i`'s original ids to current composite ids.
    pub fn stage_map(&self, i: usize) -> &[NodeId] {
        &self.maps[i]
    }

    /// Compose the current composite with `g`, merging the given
    /// `(composite sink, g source)` pairs.
    pub fn push(&mut self, g: &Dag, pairing: &[(NodeId, NodeId)]) -> Result<(), DagError> {
        let c = compose(&self.dag, g, pairing)?;
        self.dag = c.dag;
        self.maps.push(c.right_map);
        Ok(())
    }

    /// Compose with `g`, merging all current sinks with all of `g`'s
    /// sources in increasing-id order.
    pub fn push_full(&mut self, g: &Dag) -> Result<(), DagError> {
        let sinks: Vec<NodeId> = self.dag.sinks().collect();
        let sources: Vec<NodeId> = g.sources().collect();
        if sinks.len() != sources.len() {
            return Err(DagError::SizeMismatch {
                left_sinks: sinks.len(),
                right_sources: sources.len(),
            });
        }
        let pairing: Vec<(NodeId, NodeId)> = sinks.into_iter().zip(sources).collect();
        self.push(g, &pairing)
    }

    /// Finish, returning the composite dag and all per-stage maps.
    pub fn finish(self) -> (Dag, Vec<Vec<NodeId>>) {
        (self.dag, self.maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;
    use crate::traversal::{height, is_weakly_connected};

    fn vee() -> Dag {
        from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn lambda() -> Dag {
        from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn vee_up_lambda_is_diamond() {
        let c = compose_full(&vee(), &lambda()).unwrap();
        assert_eq!(c.dag.num_nodes(), 4);
        assert_eq!(c.dag.num_arcs(), 4);
        assert_eq!(c.dag.num_sources(), 1);
        assert_eq!(c.dag.num_sinks(), 1);
        assert!(is_weakly_connected(&c.dag));
        assert_eq!(height(&c.dag), 3);
    }

    #[test]
    fn provenance_maps_are_consistent() {
        let c = compose_full(&vee(), &lambda()).unwrap();
        // Vee's sinks 1, 2 merged with Lambda's sources 0, 1.
        assert_eq!(c.right_map[0], c.left_map[1]);
        assert_eq!(c.right_map[1], c.left_map[2]);
        // Lambda's sink 2 is a fresh node.
        assert_eq!(c.right_map[2], NodeId(3));
        // All of g2's arcs exist under the map.
        let l = lambda();
        for (u, v) in l.arcs() {
            assert!(c
                .dag
                .has_arc(c.right_map[u.index()], c.right_map[v.index()]));
        }
    }

    #[test]
    fn partial_pairing_keeps_unmerged_nodes() {
        // Merge only one sink of the Vee with the source of a 2-path.
        let path = from_arcs(2, &[(0, 1)]).unwrap();
        let c = compose(&vee(), &path, &[(NodeId(1), NodeId(0))]).unwrap();
        assert_eq!(c.dag.num_nodes(), 4);
        assert_eq!(c.dag.num_sinks(), 2); // node 2 of the vee, and the path's end
        assert_eq!(c.dag.num_sources(), 1);
    }

    #[test]
    fn rejects_nonsink_left() {
        let p = from_arcs(2, &[(0, 1)]).unwrap();
        let err = compose(&p, &p, &[(NodeId(0), NodeId(0))]).unwrap_err();
        assert_eq!(err, DagError::NotASink(NodeId(0)));
    }

    #[test]
    fn rejects_nonsource_right() {
        let p = from_arcs(2, &[(0, 1)]).unwrap();
        let err = compose(&p, &p, &[(NodeId(1), NodeId(1))]).unwrap_err();
        assert_eq!(err, DagError::NotASource(NodeId(1)));
    }

    #[test]
    fn rejects_duplicate_pairing() {
        let v = vee();
        let l = lambda();
        let err = compose(&v, &l, &[(NodeId(1), NodeId(0)), (NodeId(1), NodeId(1))]).unwrap_err();
        assert_eq!(err, DagError::DuplicateInPairing(NodeId(1)));
    }

    #[test]
    fn full_composition_size_mismatch() {
        let p = from_arcs(2, &[(0, 1)]).unwrap(); // 1 sink
        let l = lambda(); // 2 sources
        assert!(matches!(
            compose_full(&p, &l).unwrap_err(),
            DagError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn chain_builds_out_tree_from_vees() {
        // V ⇑ V ⇑ V: complete binary out-tree with 7 nodes.
        let v = vee();
        let mut chain = ChainBuilder::new(&v);
        // Merge sink 1 with a new Vee's source.
        chain.push(&v, &[(NodeId(1), NodeId(0))]).unwrap();
        // Merge the composite sink corresponding to original node 2.
        chain.push(&v, &[(NodeId(2), NodeId(0))]).unwrap();
        let (dag, maps) = chain.finish();
        assert_eq!(dag.num_nodes(), 7);
        assert_eq!(dag.num_sources(), 1);
        assert_eq!(dag.num_sinks(), 4);
        assert_eq!(maps.len(), 3);
        // Each stage map must point at nodes with the stage's arity.
        for map in &maps {
            assert_eq!(map.len(), 3);
            let root = map[0];
            assert_eq!(dag.out_degree(root), 2);
        }
    }

    #[test]
    fn merged_labels_combine() {
        let mut b1 = DagBuilder::new();
        let r = b1.add_node("root");
        let s = b1.add_node("leaf");
        b1.add_arc(r, s).unwrap();
        let g1 = b1.build().unwrap();

        let mut b2 = DagBuilder::new();
        let src = b2.add_node("start");
        let t = b2.add_node("end");
        b2.add_arc(src, t).unwrap();
        let g2 = b2.build().unwrap();

        let c = compose(&g1, &g2, &[(s, src)]).unwrap();
        assert_eq!(c.dag.label(c.left_map[s.index()]), "leaf=start");
    }
}
