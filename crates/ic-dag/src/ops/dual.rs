//! The dual of a dag (§2.3.2 of the paper).
//!
//! The dual of `G` is obtained by reversing all of `G`'s arcs, thereby
//! interchanging sources and sinks. Node ids are preserved, so no
//! correspondence map is needed: node `v` of `G` *is* node `v` of the
//! dual.

use crate::dag::Dag;

/// Reverse every arc of `dag`. Node ids and labels are preserved.
///
/// Duality is an involution: `dual(&dual(g)) == g`.
///
/// ```
/// use ic_dag::{builder::from_arcs, dual};
/// let vee = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let lambda = dual(&vee);
/// assert_eq!(lambda.num_sources(), 2);
/// assert_eq!(lambda.num_sinks(), 1);
/// assert_eq!(dual(&lambda), vee);
/// ```
pub fn dual(dag: &Dag) -> Dag {
    // Swapping the two CSR halves *is* arc reversal.
    Dag::from_csr(
        dag.parents_off.clone(),
        dag.parents_flat.clone(),
        dag.children_off.clone(),
        dag.children_flat.clone(),
        dag.labels.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;
    use crate::dag::NodeId;

    #[test]
    fn dual_swaps_sources_and_sinks() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let d = dual(&g);
        assert_eq!(d.sources().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(d.sinks().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert!(d.has_arc(NodeId(3), NodeId(1)));
        assert!(!d.has_arc(NodeId(1), NodeId(3)));
    }

    #[test]
    fn dual_is_involution() {
        let g = from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        assert_eq!(dual(&dual(&g)), g);
    }

    #[test]
    fn dual_preserves_counts_and_labels() {
        let mut b = crate::DagBuilder::new();
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_arc(u, v).unwrap();
        let g = b.build().unwrap();
        let d = dual(&g);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_arcs(), 1);
        assert_eq!(d.label(u), "u");
    }

    #[test]
    fn dual_of_empty() {
        let g = from_arcs(0, &[]).unwrap();
        assert_eq!(dual(&g).num_nodes(), 0);
    }
}
