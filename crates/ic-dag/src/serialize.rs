//! Plain-text edge-list serialization — the dual of `ic-cli`'s parser.
//!
//! Format, one item per line: `node NAME` declarations for every task
//! (named by its label when present, else `tN`), then `A -> B` arcs.
//! Deterministic output (nodes and arcs in id order), suitable for
//! diffing and for round-tripping through the `ic-prio` tool.

use std::fmt::Write as _;

use crate::dag::Dag;

/// The display name used for node `v` in the edge-list format: its
/// label with whitespace/`#` replaced by `_`, or `tN` when unlabeled.
/// Names are deduplicated with an `.N` suffix when labels collide.
fn names(dag: &Dag) -> Vec<String> {
    let mut seen = std::collections::HashMap::new();
    dag.node_ids()
        .map(|v| {
            let base = {
                let l = dag.label(v);
                if l.is_empty() {
                    format!("t{}", v.index())
                } else {
                    l.chars()
                        .map(|c| {
                            if c.is_whitespace() || c == '#' {
                                '_'
                            } else {
                                c
                            }
                        })
                        .collect()
                }
            };
            let n = seen.entry(base.clone()).or_insert(0usize);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}.{}", *n - 1)
            }
        })
        .collect()
}

/// Serialize `dag` to the edge-list format.
///
/// ```
/// use ic_dag::{builder::from_arcs, serialize::to_edge_list};
/// let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let text = to_edge_list(&g);
/// assert!(text.contains("t0 -> t1"));
/// ```
pub fn to_edge_list(dag: &Dag) -> String {
    let names = names(dag);
    let mut out = String::new();
    for v in dag.node_ids() {
        let _ = writeln!(out, "node {}", names[v.index()]);
    }
    for (u, v) in dag.arcs() {
        let _ = writeln!(out, "{} -> {}", names[u.index()], names[v.index()]);
    }
    out
}

/// The node names [`to_edge_list`] would use, indexed by id — for
/// callers that need to correlate ids with the serialized text.
pub fn edge_list_names(dag: &Dag) -> Vec<String> {
    names(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_arcs;
    use crate::DagBuilder;

    #[test]
    fn serializes_unlabeled_dags() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let text = to_edge_list(&g);
        assert!(text.contains("node t0"));
        assert!(text.contains("t2 -> t3"));
        assert_eq!(text.lines().count(), 4 + 4);
    }

    #[test]
    fn labels_are_sanitized() {
        let mut b = DagBuilder::new();
        let u = b.add_node("build step #1");
        let v = b.add_node("test");
        b.add_arc(u, v).unwrap();
        let g = b.build().unwrap();
        let text = to_edge_list(&g);
        assert!(text.contains("node build_step__1"));
        assert!(!text.trim_start_matches("node build_step__1").contains(" #"));
    }

    #[test]
    fn duplicate_labels_are_suffixed() {
        let mut b = DagBuilder::new();
        let u = b.add_node("x");
        let v = b.add_node("x");
        b.add_arc(u, v).unwrap();
        let g = b.build().unwrap();
        let n = edge_list_names(&g);
        assert_eq!(n, vec!["x".to_string(), "x.1".to_string()]);
    }

    #[test]
    fn output_is_deterministic() {
        let g = from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(to_edge_list(&g), to_edge_list(&g));
    }
}
