//! Property tests over the dag families: size formulas, decomposition
//! invariants, and schedule validity at randomized parameters — driven
//! by deterministic parameter sweeps and `ic_dag::rng` seeds instead of
//! proptest (see `ic_dag::testgen` for the rationale).

use ic_dag::rng::XorShift64;
use ic_dag::traversal::{height, is_topological};
use ic_families::butterfly::{butterfly, butterfly_schedule, radix_butterfly};
use ic_families::diamond::diamond_from_out_tree;
use ic_families::dlt::{dlt_prefix, dlt_vee3, ternary_out_tree};
use ic_families::mesh::{coarsen_mesh, in_mesh, out_mesh, out_mesh_schedule};
use ic_families::prefix::{n_dag_sizes, parallel_prefix, prefix_rows, prefix_schedule};
use ic_families::primitives::{cycle_dag, ic_schedule, n_dag, w_dag};
use ic_families::sorting::{bitonic_network, comparator_schedule, odd_even_network};
use ic_families::trees::{is_branching_out_tree, random_branching_out_tree};

/// Primitive size formulas hold at every parameter.
#[test]
fn primitive_size_formulas() {
    for s in 1usize..40 {
        let nd = n_dag(s);
        assert_eq!((nd.num_nodes(), nd.num_arcs()), (2 * s, 2 * s - 1));
        let wd = w_dag(s);
        assert_eq!((wd.num_nodes(), wd.num_arcs()), (2 * s + 1, 2 * s));
        if s >= 2 {
            let cd = cycle_dag(s);
            assert_eq!((cd.num_nodes(), cd.num_arcs()), (2 * s, 2 * s));
        }
        // Their canonical schedules are valid execution orders.
        assert!(is_topological(&nd, ic_schedule(&nd).order()));
        assert!(is_topological(&wd, ic_schedule(&wd).order()));
    }
}

/// Mesh size formulas and schedule validity at every level count.
#[test]
fn mesh_formulas() {
    for levels in 1usize..25 {
        let m = out_mesh(levels);
        assert_eq!(m.num_nodes(), levels * (levels + 1) / 2);
        assert_eq!(m.num_arcs(), levels * levels.saturating_sub(1));
        assert_eq!(height(&m), levels);
        assert!(is_topological(&m, out_mesh_schedule(&m).order()));
        let im = in_mesh(levels);
        assert_eq!(im.num_nodes(), m.num_nodes());
        assert_eq!(im.num_sinks(), 1);
    }
}

/// Mesh coarsening partitions the cells for any block size.
#[test]
fn mesh_coarsening_partitions() {
    for levels in 2usize..15 {
        for b in 1usize..6 {
            let q = coarsen_mesh(levels, b);
            let total: usize = q.members.iter().map(Vec::len).sum();
            assert_eq!(total, levels * (levels + 1) / 2);
            // No coarse task exceeds b² cells.
            assert!(q.members.iter().all(|m| m.len() <= b * b));
        }
    }
}

/// Butterfly and radix-butterfly size formulas.
#[test]
fn butterfly_formulas() {
    for d in 1usize..8 {
        let b = butterfly(d);
        assert_eq!(b.num_nodes(), (d + 1) << d);
        assert_eq!(b.num_arcs(), d << (d + 1));
        assert!(is_topological(&b, butterfly_schedule(d).order()));
    }
}

/// Radix-butterfly sizes: (d+1) r^d nodes, d r^{d+1} arcs.
#[test]
fn radix_butterfly_formulas() {
    for r in 2usize..5 {
        for d in 1usize..4 {
            let g = radix_butterfly(r, d);
            assert_eq!(g.num_nodes(), (d + 1) * r.pow(d as u32));
            assert_eq!(g.num_arcs(), d * r.pow(d as u32 + 1));
            assert_eq!(g.num_sources(), r.pow(d as u32));
        }
    }
}

/// Prefix dag structure at arbitrary n: rows formula, N-dag stage
/// sizes sum to the nonsink count per row, schedule validity.
#[test]
fn prefix_structure() {
    for n in 2usize..70 {
        let p = parallel_prefix(n);
        let rows = prefix_rows(n);
        assert_eq!(p.num_nodes(), rows * n);
        assert!(is_topological(&p, prefix_schedule(n).order()));
        // Each row's N-dag source counts sum to n.
        let sizes = n_dag_sizes(n);
        let mut row_totals = vec![0usize; rows - 1];
        let mut idx = 0usize;
        for (j, total) in row_totals.iter_mut().enumerate() {
            let stride = 1usize << j;
            for _ in 0..stride.min(n) {
                *total += sizes[idx];
                idx += 1;
            }
        }
        assert!(row_totals.iter().all(|&t| t == n));
    }
}

/// Uniform-arity random trees are branching out-trees, and their
/// diamonds have the right size: `2 |T| - leaves`.
#[test]
fn diamonds_from_random_trees() {
    let mut rng = XorShift64::new(0x5B);
    for _ in 0..48 {
        let target = 3 + rng.gen_range(37);
        let arity = 2 + rng.gen_range(2);
        let seed = rng.next_u64();
        let t = random_branching_out_tree(target, arity, seed);
        assert!(is_branching_out_tree(&t));
        let d = diamond_from_out_tree(&t).unwrap();
        assert_eq!(d.dag.num_nodes(), 2 * t.num_nodes() - t.num_sinks());
        assert_eq!(d.dag.num_sources(), 1);
        assert_eq!(d.dag.num_sinks(), 1);
        let s = d.ic_schedule().unwrap();
        assert!(is_topological(&d.dag, s.order()));
    }
}

/// DLT dag sizes for power-of-two inputs; both variants schedule.
#[test]
fn dlt_structure() {
    for p in 1usize..6 {
        let n = 1usize << p;
        let l = dlt_prefix(n);
        assert_eq!(l.dag.num_nodes(), prefix_rows(n) * n + (n - 1));
        assert!(is_topological(&l.dag, l.ic_schedule().unwrap().order()));
        let lp = dlt_vee3(n);
        assert_eq!(lp.dag.num_sinks(), 1);
        assert!(is_topological(&lp.dag, lp.ic_schedule().unwrap().order()));
    }
}

/// Ternary trees have the requested (odd) leaf count.
#[test]
fn ternary_tree_leaves() {
    for k in 0usize..30 {
        let leaves = 2 * k + 1;
        let t = ternary_out_tree(leaves);
        assert_eq!(t.num_sinks(), leaves);
        assert_eq!(t.num_nodes(), 1 + 3 * k);
    }
}

/// Both comparator networks are well-formed for every 2^k width,
/// and their paired schedules are valid.
#[test]
fn network_structure() {
    for k in 1usize..6 {
        let n = 1usize << k;
        for (dag, stages) in [bitonic_network(n), odd_even_network(n)] {
            assert_eq!(dag.num_nodes(), (stages.len() + 1) * n);
            assert_eq!(dag.num_sources(), n);
            assert_eq!(dag.num_sinks(), n);
            let s = comparator_schedule(n, &stages);
            assert!(is_topological(&dag, s.order()));
        }
    }
}
